"""Legacy setup shim: lets `pip install -e .` work on environments
without the `wheel` package (no network for build isolation)."""

from setuptools import setup

setup()
