"""Ablation: lookup-protocol resilience to cache failures.

The beacon protocol concentrates lookup knowledge on one hash-chosen
member per document — a single point of failure per hash range — while
multicast degrades gracefully (a down peer just never replies).  This
bench crashes a fraction of the caches mid-run and measures how each
protocol's latency degrades.
"""

import numpy as np
import pytest

from benchmarks.conftest import report, shape_check
from repro.analysis.report import ExperimentResult, SeriesResult
from repro.config import LandmarkConfig
from repro.core.schemes import SLScheme
from repro.experiments.base import build_testbed
from repro.simulator import CacheFailEvent, simulate

MODES = ("beacon", "multicast", "directory")


def run_failure_sweep(num_caches=80, k=8, fail_fraction=0.15, seeds=(131, 132)):
    lm = LandmarkConfig(num_landmarks=15, multiplier=2)
    healthy = {m: 0.0 for m in MODES}
    degraded = {m: 0.0 for m in MODES}
    for seed in seeds:
        testbed = build_testbed(num_caches, seed)
        grouping = SLScheme(landmark_config=lm).form_groups(
            testbed.network, k, seed=seed
        )
        # Crash a fraction of caches one third into the run.
        rng = np.random.default_rng(seed)
        victims = rng.choice(
            testbed.network.cache_nodes,
            size=max(1, int(fail_fraction * num_caches)),
            replace=False,
        )
        fail_at = testbed.workload.horizon_ms / 3.0
        failures = [CacheFailEvent(fail_at, int(v)) for v in victims]
        for mode in MODES:
            healthy[mode] += simulate(
                testbed.network, grouping, testbed.workload,
                group_protocol_mode=mode,
            ).average_latency_ms() / len(seeds)
            degraded[mode] += simulate(
                testbed.network, grouping, testbed.workload,
                group_protocol_mode=mode, failures=failures,
            ).average_latency_ms() / len(seeds)
    return ExperimentResult(
        experiment_id="ablation-failures",
        x_label="protocol",
        x_values=MODES,
        series=(
            SeriesResult("healthy_ms", tuple(healthy[m] for m in MODES)),
            SeriesResult("degraded_ms", tuple(degraded[m] for m in MODES)),
            SeriesResult(
                "degradation_pct",
                tuple(
                    (degraded[m] - healthy[m]) / healthy[m] * 100.0
                    for m in MODES
                ),
            ),
        ),
    )


@pytest.fixture(scope="module")
def failure_result():
    return run_failure_sweep()


def test_failure_sweep_benchmark(benchmark):
    result = benchmark.pedantic(
        run_failure_sweep,
        kwargs=dict(num_caches=30, k=4, seeds=(131,)),
        rounds=1,
        iterations=1,
    )
    assert result.experiment_id == "ablation-failures"


def test_failures_degrade_every_protocol(benchmark, failure_result):
    shape_check(benchmark)
    report(failure_result)
    degradation = failure_result.series_named("degradation_pct").values
    assert all(d > 0 for d in degradation)


def test_degradation_bounded(benchmark, failure_result):
    """Losing 15% of caches must not blow latency up disproportionately
    (graceful degradation: bounded by ~2x the healthy latency)."""
    shape_check(benchmark)
    healthy = failure_result.series_named("healthy_ms").values
    degraded = failure_result.series_named("degraded_ms").values
    for h, d in zip(healthy, degraded):
        assert d < 2.0 * h
