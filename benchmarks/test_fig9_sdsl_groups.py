"""Figure 9 bench: SDSL vs. SL latency across group counts.

Shape requirement: SDSL at or below SL across the K sweep on a fixed
network (paper: "irrespective of the number of cache groups formed").
"""

import numpy as np
import pytest

from benchmarks.conftest import report, shape_check
from repro.experiments import run_fig9

K_VALUES = (5, 10, 15, 25, 40)


@pytest.fixture(scope="module")
def fig9_result():
    return run_fig9(
        num_caches=150, k_values=K_VALUES, repetitions=3, seed=31
    )


def test_fig9_benchmark(benchmark):
    result = benchmark.pedantic(
        run_fig9,
        kwargs=dict(
            num_caches=50, k_values=(5, 10), repetitions=1, seed=31
        ),
        rounds=1,
        iterations=1,
    )
    assert result.experiment_id == "fig9"


def test_fig9_sdsl_wins_overall(benchmark, fig9_result):
    shape_check(benchmark)
    report(fig9_result)
    assert fig9_result.notes["mean_improvement_pct"] > 0


def test_fig9_sdsl_rarely_loses_at_any_k(benchmark, fig9_result):
    shape_check(benchmark)
    sl = fig9_result.series_named("sl_ms").values
    sdsl = fig9_result.series_named("sdsl_ms").values
    losses = sum(1 for s, d in zip(sl, sdsl) if d > s * 1.05)
    assert losses <= 1  # at most one K where SDSL is >5% worse
