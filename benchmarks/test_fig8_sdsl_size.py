"""Figure 8 bench: SDSL vs. SL latency across network sizes.

Shape requirements (paper Section 5.3): SDSL's average cache latency is
at or below SL's at both K settings when averaged across sizes, with a
clear double-digit-percent gain at the K=20% setting for the largest
network.
"""

import numpy as np
import pytest

from benchmarks.conftest import report, shape_check
from repro.experiments import run_fig8

SIZES = (60, 100, 140)


@pytest.fixture(scope="module")
def fig8_result():
    return run_fig8(network_sizes=SIZES, repetitions=3, seed=29)


def test_fig8_benchmark(benchmark):
    result = benchmark.pedantic(
        run_fig8,
        kwargs=dict(network_sizes=(40,), repetitions=1, seed=29),
        rounds=1,
        iterations=1,
    )
    assert result.experiment_id == "fig8"


def test_fig8_sdsl_wins_on_average_k10(benchmark, fig8_result):
    shape_check(benchmark)
    report(fig8_result)
    sl = np.mean(fig8_result.series_named("sl_k10_ms").values)
    sdsl = np.mean(fig8_result.series_named("sdsl_k10_ms").values)
    assert sdsl < sl


def test_fig8_sdsl_wins_on_average_k20(benchmark, fig8_result):
    shape_check(benchmark)
    sl = np.mean(fig8_result.series_named("sl_k20_ms").values)
    sdsl = np.mean(fig8_result.series_named("sdsl_k20_ms").values)
    assert sdsl < sl


def test_fig8_meaningful_gain_at_k20(benchmark, fig8_result):
    """The paper reports >27% at 500 caches; at our scale we require a
    clearly-positive maximum gain (>5%)."""
    shape_check(benchmark)
    assert fig8_result.notes["max_improvement_k20_pct"] > 5.0
