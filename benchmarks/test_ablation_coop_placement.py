"""Ablation: cooperative placement on/off.

Skipping local duplicates of documents a near peer already holds trades
local hits for (cheap) group hits while freeing capacity for documents
nobody nearby has.  This bench quantifies whether the trade pays off
under the default workload.
"""

import numpy as np
import pytest

from benchmarks.conftest import report, shape_check
from repro.analysis.report import ExperimentResult, SeriesResult
from repro.config import CacheConfig, LandmarkConfig, SimulationConfig
from repro.core.schemes import SLScheme
from repro.experiments.base import build_testbed, run_simulation

SETTINGS = ("off", "threshold_5ms", "threshold_15ms", "threshold_40ms")


def _config(setting: str) -> SimulationConfig:
    if setting == "off":
        cache = CacheConfig(cooperative_placement=False)
    else:
        threshold = float(setting.split("_")[1].rstrip("ms"))
        cache = CacheConfig(
            cooperative_placement=True,
            placement_rtt_threshold_ms=threshold,
        )
    return SimulationConfig(cache=cache)


def run_placement_sweep(num_caches=80, k=8, seeds=(121, 122)):
    lm = LandmarkConfig(num_landmarks=15, multiplier=2)
    latency = {s: 0.0 for s in SETTINGS}
    local_share = {s: 0.0 for s in SETTINGS}
    group_share = {s: 0.0 for s in SETTINGS}
    for seed in seeds:
        testbed = build_testbed(num_caches, seed)
        grouping = SLScheme(landmark_config=lm).form_groups(
            testbed.network, k, seed=seed
        )
        for setting in SETTINGS:
            result = run_simulation(
                testbed, grouping, config=_config(setting)
            )
            rates = result.hit_rates()
            latency[setting] += result.average_latency_ms() / len(seeds)
            local_share[setting] += rates["local"] / len(seeds)
            group_share[setting] += rates["group"] / len(seeds)
    return ExperimentResult(
        experiment_id="ablation-coop-placement",
        x_label="setting",
        x_values=SETTINGS,
        series=(
            SeriesResult("latency_ms", tuple(latency[s] for s in SETTINGS)),
            SeriesResult(
                "local_hit_share", tuple(local_share[s] for s in SETTINGS)
            ),
            SeriesResult(
                "group_hit_share", tuple(group_share[s] for s in SETTINGS)
            ),
        ),
    )


@pytest.fixture(scope="module")
def placement_result():
    return run_placement_sweep()


def test_placement_sweep_benchmark(benchmark):
    result = benchmark.pedantic(
        run_placement_sweep,
        kwargs=dict(num_caches=30, k=4, seeds=(121,)),
        rounds=1,
        iterations=1,
    )
    assert result.experiment_id == "ablation-coop-placement"


def test_placement_shifts_local_hits_to_group_hits(
    benchmark, placement_result
):
    shape_check(benchmark)
    report(placement_result)
    local = dict(
        zip(
            placement_result.x_values,
            placement_result.series_named("local_hit_share").values,
        )
    )
    group = dict(
        zip(
            placement_result.x_values,
            placement_result.series_named("group_hit_share").values,
        )
    )
    assert local["threshold_40ms"] < local["off"]
    assert group["threshold_40ms"] > group["off"]


def test_moderate_threshold_latency_neutral(benchmark, placement_result):
    """Skipping only very-near duplicates must not hurt latency much
    (the replaced local hits become ~equally cheap group hits)."""
    shape_check(benchmark)
    latency = dict(
        zip(
            placement_result.x_values,
            placement_result.series_named("latency_ms").values,
        )
    )
    assert latency["threshold_5ms"] <= latency["off"] * 1.10
