"""Ablation: freshness maintenance — invalidation vs TTL vs none.

The paper's cooperative freshness model is server-driven invalidation;
TTL expiry is the classic cheap alternative.  This bench maps the
trade-off: invalidation serves zero stale content at the cost of
invalidation fan-out messages; TTLs trade staleness for silence.
"""

import numpy as np
import pytest

from benchmarks.conftest import report, shape_check
from repro.analysis.report import ExperimentResult, SeriesResult
from repro.config import LandmarkConfig, SimulationConfig
from repro.core.schemes import SLScheme
from repro.experiments.base import build_testbed, run_simulation

SETTINGS = ("invalidate", "ttl_short", "ttl_long", "none")


def _config(setting: str) -> SimulationConfig:
    if setting == "invalidate":
        return SimulationConfig(consistency_mode="invalidate")
    if setting == "ttl_short":
        return SimulationConfig(consistency_mode="ttl", ttl_ms=1_000.0)
    if setting == "ttl_long":
        return SimulationConfig(consistency_mode="ttl", ttl_ms=30_000.0)
    return SimulationConfig(consistency_enabled=False)


def run_consistency_sweep(num_caches=80, k=8, seeds=(101, 102)):
    lm = LandmarkConfig(num_landmarks=15, multiplier=2)
    latency = {s: 0.0 for s in SETTINGS}
    stale = {s: 0.0 for s in SETTINGS}
    invalidations = {s: 0.0 for s in SETTINGS}
    for seed in seeds:
        testbed = build_testbed(num_caches, seed)
        grouping = SLScheme(landmark_config=lm).form_groups(
            testbed.network, k, seed=seed
        )
        for setting in SETTINGS:
            result = run_simulation(testbed, grouping, config=_config(setting))
            latency[setting] += result.average_latency_ms() / len(seeds)
            stale[setting] += result.stale_serve_fraction() / len(seeds)
            invalidations[setting] += (
                result.metrics.invalidation_messages / len(seeds)
            )
    return ExperimentResult(
        experiment_id="ablation-consistency",
        x_label="mode",
        x_values=SETTINGS,
        series=(
            SeriesResult("latency_ms", tuple(latency[s] for s in SETTINGS)),
            SeriesResult(
                "stale_fraction", tuple(stale[s] for s in SETTINGS)
            ),
            SeriesResult(
                "invalidation_msgs",
                tuple(invalidations[s] for s in SETTINGS),
            ),
        ),
    )


@pytest.fixture(scope="module")
def consistency_result():
    return run_consistency_sweep()


def test_consistency_sweep_benchmark(benchmark):
    result = benchmark.pedantic(
        run_consistency_sweep,
        kwargs=dict(num_caches=30, k=4, seeds=(101,)),
        rounds=1,
        iterations=1,
    )
    assert result.experiment_id == "ablation-consistency"


def test_invalidation_serves_zero_stale(benchmark, consistency_result):
    shape_check(benchmark)
    report(consistency_result)
    stale = dict(
        zip(
            consistency_result.x_values,
            consistency_result.series_named("stale_fraction").values,
        )
    )
    assert stale["invalidate"] == 0.0


def test_staleness_ordering(benchmark, consistency_result):
    """invalidate < ttl_short < ttl_long <= none in stale serves."""
    shape_check(benchmark)
    stale = dict(
        zip(
            consistency_result.x_values,
            consistency_result.series_named("stale_fraction").values,
        )
    )
    assert stale["ttl_short"] < stale["ttl_long"]
    assert stale["ttl_long"] <= stale["none"] + 1e-9


def test_only_invalidation_pays_fanout(benchmark, consistency_result):
    shape_check(benchmark)
    msgs = dict(
        zip(
            consistency_result.x_values,
            consistency_result.series_named("invalidation_msgs").values,
        )
    )
    assert msgs["invalidate"] > 0
    assert msgs["ttl_short"] == msgs["ttl_long"] == msgs["none"] == 0


def test_weaker_consistency_cheaper_latency(benchmark, consistency_result):
    """Serving stale copies avoids re-fetches: none <= invalidate."""
    shape_check(benchmark)
    latency = dict(
        zip(
            consistency_result.x_values,
            consistency_result.series_named("latency_ms").values,
        )
    )
    assert latency["none"] <= latency["invalidate"]
