"""Ablation: K-means seeding — uniform vs k-means++ vs SDSL-biased.

Separates how much of SDSL's latency benefit comes from *better-spread
seeds in feature space* (which k-means++ also provides) versus from
*server-distance information* (which only SDSL has).
"""

import numpy as np
import pytest

from benchmarks.conftest import report, shape_check
from repro.analysis.report import ExperimentResult, SeriesResult
from repro.clustering import KMeansPlusPlusInit
from repro.config import LandmarkConfig, SDSLConfig
from repro.core.coordinator import GFCoordinator
from repro.core.schemes import SDSLScheme, SLScheme
from repro.experiments.base import build_testbed, run_simulation
from repro.landmarks import GreedyMaxMinSelector

INITS = ("uniform", "kmeans++", "sdsl")


def run_init_sweep(num_caches=100, k=15, seeds=(81, 82, 83)):
    lm = LandmarkConfig(num_landmarks=15, multiplier=2)
    latencies = {name: 0.0 for name in INITS}
    for seed in seeds:
        testbed = build_testbed(num_caches, seed)

        sl = SLScheme(landmark_config=lm)
        grouping = sl.form_groups(testbed.network, k, seed=seed)
        latencies["uniform"] += run_simulation(
            testbed, grouping
        ).average_latency_ms() / len(seeds)

        # k-means++ via the coordinator with a custom initializer.
        coordinator = GFCoordinator(testbed.network, seed=seed)
        landmarks = coordinator.choose_landmarks(GreedyMaxMinSelector(), lm)
        features = coordinator.build_features(landmarks)
        pp_grouping = coordinator.cluster(
            features, k, scheme_name="kmeans++",
            initializer=KMeansPlusPlusInit(),
        )
        latencies["kmeans++"] += run_simulation(
            testbed, pp_grouping
        ).average_latency_ms() / len(seeds)

        sdsl = SDSLScheme(
            sdsl_config=SDSLConfig(theta=2.0), landmark_config=lm
        )
        sdsl_grouping = sdsl.form_groups(testbed.network, k, seed=seed)
        latencies["sdsl"] += run_simulation(
            testbed, sdsl_grouping
        ).average_latency_ms() / len(seeds)

    return ExperimentResult(
        experiment_id="ablation-kmeans-init",
        x_label="initializer",
        x_values=INITS,
        series=(
            SeriesResult(
                "latency_ms", tuple(latencies[name] for name in INITS)
            ),
        ),
    )


@pytest.fixture(scope="module")
def init_result():
    return run_init_sweep()


def test_init_sweep_benchmark(benchmark):
    result = benchmark.pedantic(
        run_init_sweep,
        kwargs=dict(num_caches=40, k=6, seeds=(81,)),
        rounds=1,
        iterations=1,
    )
    assert result.experiment_id == "ablation-kmeans-init"


def test_sdsl_beats_spread_only_seeding(benchmark, init_result):
    """Server-distance info matters beyond mere seed spread: SDSL at or
    below k-means++ on average latency."""
    shape_check(benchmark)
    report(init_result)
    latencies = dict(
        zip(
            init_result.x_values,
            init_result.series_named("latency_ms").values,
        )
    )
    assert latencies["sdsl"] <= latencies["kmeans++"] * 1.03


def test_sdsl_beats_uniform(benchmark, init_result):
    shape_check(benchmark)
    latencies = dict(
        zip(
            init_result.x_values,
            init_result.series_named("latency_ms").values,
        )
    )
    assert latencies["sdsl"] < latencies["uniform"]
