"""Figure 7 bench: feature vectors vs. GNP Euclidean-space clustering.

Shape requirement (paper Section 5.2): *near-parity*.  The raw
feature-vector representation clusters about as well as the
computationally heavier GNP embedding — within a modest band at every
K, with neither side winning everywhere.
"""

import numpy as np
import pytest

from benchmarks.conftest import report, shape_check
from repro.experiments import run_fig7

K_VALUES = (5, 10, 20, 40)


@pytest.fixture(scope="module")
def fig7_result():
    return run_fig7(
        num_caches=120, k_values=K_VALUES, repetitions=2, seed=23
    )


def test_fig7_benchmark(benchmark):
    result = benchmark.pedantic(
        run_fig7,
        kwargs=dict(
            num_caches=40, k_values=(5,), gnp_dimensions=3,
            repetitions=1, seed=23,
        ),
        rounds=1,
        iterations=1,
    )
    assert result.experiment_id == "fig7"


def test_fig7_near_parity_at_every_k(benchmark, fig7_result):
    shape_check(benchmark)
    report(fig7_result)
    sl = fig7_result.series_named("sl_feature_vectors_ms").values
    gnp = fig7_result.series_named("euclidean_gnp_ms").values
    for s, g in zip(sl, gnp):
        assert g == pytest.approx(s, rel=0.35)


def test_fig7_mean_difference_small(benchmark, fig7_result):
    shape_check(benchmark)
    sl = np.mean(fig7_result.series_named("sl_feature_vectors_ms").values)
    gnp = np.mean(fig7_result.series_named("euclidean_gnp_ms").values)
    assert abs(sl - gnp) / sl < 0.2


def test_fig7_both_decrease_with_k(benchmark, fig7_result):
    shape_check(benchmark)
    for name in ("sl_feature_vectors_ms", "euclidean_gnp_ms"):
        series = fig7_result.series_named(name).values
        assert series[-1] < series[0]
