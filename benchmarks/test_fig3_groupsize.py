"""Figure 3 bench: average latency vs. average cache group size.

Shape requirements (paper Section 4):
* all three latency curves are U-shaped — cooperation first helps, then
  oversized groups hurt;
* the far-from-origin caches reach their minimum at a group size no
  smaller than the near caches' (far caches want more cooperation).
"""

import pytest

from benchmarks.conftest import report, shape_check
from repro.experiments import run_fig3

GROUP_SIZES = (1, 2, 4, 7, 10, 15, 25, 40, 100)


@pytest.fixture(scope="module")
def fig3_result():
    return run_fig3(num_caches=100, group_sizes=GROUP_SIZES, seed=11)


def test_fig3_benchmark(benchmark):
    result = benchmark.pedantic(
        run_fig3,
        kwargs=dict(
            num_caches=60,
            group_sizes=(1, 4, 10, 30, 60),
            seed=11,
        ),
        rounds=1,
        iterations=1,
    )
    assert result.experiment_id == "fig3"


def test_fig3_all_caches_u_shape(benchmark, fig3_result):
    shape_check(benchmark)
    report(fig3_result)
    series = fig3_result.series_named("all_caches_ms")
    min_idx = series.min_index()
    # Interior minimum: cooperation helps, oversizing hurts.
    assert 0 < min_idx < len(series) - 1
    assert series.values[min_idx] < series.values[0]
    assert series.values[min_idx] < series.values[-1]


def test_fig3_far_caches_u_shape(benchmark, fig3_result):
    shape_check(benchmark)
    far = fig3_result.series_named("farthest_10_ms")
    min_idx = far.min_index()
    assert 0 < min_idx < len(far) - 1
    # Far caches gain a lot from cooperation vs. isolation.
    assert far.values[min_idx] < 0.8 * far.values[0]


def test_fig3_far_prefers_larger_groups_than_near(benchmark, fig3_result):
    shape_check(benchmark)
    near = fig3_result.series_named("nearest_10_ms")
    far = fig3_result.series_named("farthest_10_ms")
    near_best = fig3_result.x_values[near.min_index()]
    far_best = fig3_result.x_values[far.min_index()]
    assert far_best >= near_best


def test_fig3_tradeoff_not_uniform_across_subsets(benchmark, fig3_result):
    """The paper's key observation: the hit-rate/interaction-cost
    trade-off affects caches differently by server distance.  Far
    caches' best-case gain over no-cooperation dwarfs the near caches'
    gain — which is exactly why a one-size-fits-all K is suboptimal and
    SDSL exists."""
    shape_check(benchmark)
    near = fig3_result.series_named("nearest_10_ms")
    far = fig3_result.series_named("farthest_10_ms")
    near_gain = 1 - min(near.values) / near.values[0]
    far_gain = 1 - min(far.values) / far.values[0]
    assert far_gain > 0.3
    assert far_gain > 2 * near_gain
