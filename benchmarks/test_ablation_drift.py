"""Ablation: grouping robustness under RTT drift.

Groups are formed once, then the Internet moves underneath them.  This
bench drifts every link latency by an i.i.d. lognormal walk and
compares the stale grouping's GICost against freshly re-formed groups
at every step.

Finding (asserted below): proximity-based groupings are *robust* to
uniform link jitter — even at ~30% mean RTT change the stale grouping
stays within a few percent of freshly formed groups, because i.i.d.
drift barely changes who-is-near-whom.  The practical trigger for
re-clustering is therefore *structural* change (cache churn, re-homed
stubs — see the membership machinery), not background RTT noise.
"""

import numpy as np
import pytest

from benchmarks.conftest import report, shape_check
from repro.analysis.gicost import average_group_interaction_cost
from repro.analysis.report import ExperimentResult, SeriesResult
from repro.config import KMeansConfig, LandmarkConfig
from repro.core.schemes import SLScheme
from repro.topology import build_network
from repro.topology.drift import drift_series, mean_relative_rtt_change

STEPS = 5


def run_drift_sweep(num_caches=100, k=10, scale=0.35, seeds=(171, 172, 173)):
    lm = LandmarkConfig(num_landmarks=15, multiplier=2)
    # Both schemes get restarts: the one-time formation and the periodic
    # re-clustering are both rare, probe-bounded jobs that can afford
    # picking the best of several K-means runs.
    km = KMeansConfig(restarts=5)
    stale_cost = np.zeros(STEPS)
    fresh_cost = np.zeros(STEPS)
    drift_size = np.zeros(STEPS)
    for seed in seeds:
        network = build_network(num_caches=num_caches, seed=seed)
        scheme = SLScheme(landmark_config=lm, kmeans_config=km)
        original = scheme.form_groups(network, k, seed=seed)
        for step, drifted in enumerate(
            drift_series(network, steps=STEPS, scale=scale, seed=seed)
        ):
            stale_cost[step] += average_group_interaction_cost(
                drifted, original
            ) / len(seeds)
            refreshed = scheme.form_groups(drifted, k, seed=seed + step)
            fresh_cost[step] += average_group_interaction_cost(
                drifted, refreshed
            ) / len(seeds)
            drift_size[step] += mean_relative_rtt_change(
                network, drifted
            ) / len(seeds)
    return ExperimentResult(
        experiment_id="ablation-drift",
        x_label="drift_step",
        x_values=tuple(range(1, STEPS + 1)),
        series=(
            SeriesResult("stale_grouping_ms", tuple(stale_cost)),
            SeriesResult("fresh_grouping_ms", tuple(fresh_cost)),
            SeriesResult("mean_rtt_change", tuple(drift_size)),
        ),
    )


@pytest.fixture(scope="module")
def drift_result():
    return run_drift_sweep()


def test_drift_sweep_benchmark(benchmark):
    result = benchmark.pedantic(
        run_drift_sweep,
        kwargs=dict(num_caches=40, k=5, seeds=(171,)),
        rounds=1,
        iterations=1,
    )
    assert result.experiment_id == "ablation-drift"


def test_stale_grouping_robust_to_iid_drift(benchmark, drift_result):
    """The headline: stale groups stay within 15% of fresh ones at
    every drift step — i.i.d. jitter does not invalidate a grouping."""
    shape_check(benchmark)
    report(drift_result)
    stale = drift_result.series_named("stale_grouping_ms").values
    fresh = drift_result.series_named("fresh_grouping_ms").values
    for s, f in zip(stale, fresh):
        assert s <= f * 1.15


def test_drift_accumulates(benchmark, drift_result):
    shape_check(benchmark)
    change = drift_result.series_named("mean_rtt_change").values
    assert change[-1] > change[0]


def test_costs_inflate_with_the_latency_level(benchmark, drift_result):
    """Multiplicative drift raises the overall latency level, so both
    stale and fresh GICost creep upward with it (sanity: the metric
    tracks the moving ground truth, not the stale snapshot)."""
    shape_check(benchmark)
    stale = drift_result.series_named("stale_grouping_ms").values
    assert stale[-1] > stale[0] * 0.95
