"""Ablation: replacement policy (utility vs LRU vs LFU).

The paper's caches implement Cache Clouds' utility-based replacement;
this bench quantifies what that buys over classic policies under the
dynamic-content workload (where invalidation-awareness matters).
"""

import numpy as np
import pytest

from benchmarks.conftest import report, shape_check
from repro.analysis.report import ExperimentResult, SeriesResult
from repro.config import CacheConfig, LandmarkConfig, SimulationConfig
from repro.core.schemes import SLScheme
from repro.experiments.base import build_testbed, run_simulation

POLICIES = ("utility", "lru", "lfu")


def run_policy_sweep(num_caches=100, k=10, seeds=(71, 72, 73)):
    lm = LandmarkConfig(num_landmarks=15, multiplier=2)
    latencies = {p: 0.0 for p in POLICIES}
    hit_rates = {p: 0.0 for p in POLICIES}
    for seed in seeds:
        testbed = build_testbed(num_caches, seed)
        grouping = SLScheme(landmark_config=lm).form_groups(
            testbed.network, k, seed=seed
        )
        for policy in POLICIES:
            config = SimulationConfig(
                cache=CacheConfig(replacement_policy=policy)
            )
            result = run_simulation(testbed, grouping, config=config)
            latencies[policy] += result.average_latency_ms() / len(seeds)
            hit_rates[policy] += (
                1 - result.hit_rates()["origin"]
            ) / len(seeds)
    return ExperimentResult(
        experiment_id="ablation-replacement",
        x_label="policy",
        x_values=POLICIES,
        series=(
            SeriesResult(
                "latency_ms", tuple(latencies[p] for p in POLICIES)
            ),
            SeriesResult(
                "total_hit_rate", tuple(hit_rates[p] for p in POLICIES)
            ),
        ),
    )


@pytest.fixture(scope="module")
def policy_result():
    return run_policy_sweep()


def test_policy_sweep_benchmark(benchmark):
    result = benchmark.pedantic(
        run_policy_sweep,
        kwargs=dict(num_caches=40, k=5, seeds=(71,)),
        rounds=1,
        iterations=1,
    )
    assert result.experiment_id == "ablation-replacement"


def test_utility_policy_competitive(benchmark, policy_result):
    """Utility-based replacement is at or near the best policy."""
    shape_check(benchmark)
    report(policy_result)
    latencies = dict(
        zip(
            policy_result.x_values,
            policy_result.series_named("latency_ms").values,
        )
    )
    assert latencies["utility"] <= min(latencies.values()) * 1.08


def test_all_policies_achieve_hits(benchmark, policy_result):
    shape_check(benchmark)
    rates = policy_result.series_named("total_hit_rate").values
    assert all(r > 0.2 for r in rates)
