"""Ablation: probe-noise and probe-count sensitivity of the SL pipeline.

Feature vectors are built from noisy averaged probes; this bench maps
clustering accuracy against jitter magnitude and probe count, verifying
that averaging buys back accuracy lost to jitter.
"""

import numpy as np
import pytest

from benchmarks.conftest import report, shape_check
from repro.analysis.gicost import average_group_interaction_cost
from repro.analysis.report import ExperimentResult, SeriesResult
from repro.config import LandmarkConfig, ProbeConfig
from repro.core.schemes import SLScheme
from repro.topology import build_network

JITTERS = (0.0, 0.05, 0.15, 0.35)


def run_noise_sweep(num_caches=120, k=12, seeds=(61, 62, 63)):
    lm = LandmarkConfig(num_landmarks=12, multiplier=2)
    single_probe = []
    averaged = []
    for jitter in JITTERS:
        totals = {1: 0.0, 7: 0.0}
        for seed in seeds:
            network = build_network(num_caches=num_caches, seed=seed)
            for count in (1, 7):
                scheme = SLScheme(
                    landmark_config=lm,
                    probe_config=ProbeConfig(
                        probe_count=count, jitter_std=jitter
                    ),
                )
                grouping = scheme.form_groups(network, k, seed=seed)
                totals[count] += average_group_interaction_cost(
                    network, grouping
                )
        single_probe.append(totals[1] / len(seeds))
        averaged.append(totals[7] / len(seeds))
    return ExperimentResult(
        experiment_id="ablation-probe-noise",
        x_label="jitter_std",
        x_values=JITTERS,
        series=(
            SeriesResult("gicost_1_probe_ms", tuple(single_probe)),
            SeriesResult("gicost_7_probes_ms", tuple(averaged)),
        ),
    )


@pytest.fixture(scope="module")
def noise_result():
    return run_noise_sweep()


def test_noise_sweep_benchmark(benchmark):
    result = benchmark.pedantic(
        run_noise_sweep,
        kwargs=dict(num_caches=40, k=5, seeds=(61,)),
        rounds=1,
        iterations=1,
    )
    assert result.experiment_id == "ablation-probe-noise"


def test_heavy_noise_hurts_single_probe_accuracy(benchmark, noise_result):
    shape_check(benchmark)
    report(noise_result)
    single = noise_result.series_named("gicost_1_probe_ms").values
    assert single[-1] > single[0]


def test_averaging_mitigates_noise(benchmark, noise_result):
    """At the heaviest jitter, 7-probe averaging beats single probes."""
    shape_check(benchmark)
    single = noise_result.series_named("gicost_1_probe_ms").values
    averaged = noise_result.series_named("gicost_7_probes_ms").values
    assert averaged[-1] < single[-1]


def test_noise_free_baseline_consistent(benchmark, noise_result):
    """With zero jitter, probe count is irrelevant."""
    shape_check(benchmark)
    single = noise_result.series_named("gicost_1_probe_ms").values
    averaged = noise_result.series_named("gicost_7_probes_ms").values
    assert averaged[0] == pytest.approx(single[0], rel=0.05)
