"""Ablation: clustering algorithm — K-means vs k-medoids vs hierarchical.

The paper uses K-means on feature vectors and notes any standard
algorithm could substitute.  This bench compares, on the same measured
feature vectors (and, for the matrix-based algorithms, measured RTT
dissimilarities), the clustering accuracy each alternative achieves.
"""

import numpy as np
import pytest

from benchmarks.conftest import report, shape_check
from repro.analysis.gicost import average_group_interaction_cost
from repro.analysis.report import ExperimentResult, SeriesResult
from repro.clustering import KMedoids
from repro.clustering.hierarchical import HierarchicalClustering
from repro.config import LandmarkConfig
from repro.core.coordinator import GFCoordinator
from repro.core.groups import GroupingResult, groups_from_labels
from repro.landmarks import GreedyMaxMinSelector

ALGORITHMS = ("kmeans", "kmedoids", "hierarchical", "random")


def run_algorithm_sweep(num_caches=120, k=12, seeds=(111, 112, 113)):
    from repro.topology import build_network

    lm_config = LandmarkConfig(num_landmarks=15, multiplier=2)
    costs = {name: 0.0 for name in ALGORITHMS}
    for seed in seeds:
        network = build_network(num_caches=num_caches, seed=seed)
        coordinator = GFCoordinator(network, seed=seed)
        landmarks = coordinator.choose_landmarks(
            GreedyMaxMinSelector(), lm_config
        )
        features = coordinator.build_features(landmarks)

        # K-means on feature vectors (the paper's choice).
        km = coordinator.cluster(features, k, scheme_name="kmeans")
        costs["kmeans"] += average_group_interaction_cost(network, km)

        # Matrix algorithms on measured feature-space dissimilarities.
        fv = features.matrix
        dissimilarity = np.linalg.norm(
            fv[:, None, :] - fv[None, :, :], axis=2
        )
        nodes = list(features.nodes)

        medoid_labels = KMedoids(k=k).fit(dissimilarity, seed=seed).labels
        costs["kmedoids"] += average_group_interaction_cost(
            network,
            GroupingResult(
                scheme="kmedoids",
                groups=groups_from_labels(nodes, medoid_labels),
            ),
        )

        hier_labels = HierarchicalClustering(k=k).fit(dissimilarity).labels
        costs["hierarchical"] += average_group_interaction_cost(
            network,
            GroupingResult(
                scheme="hierarchical",
                groups=groups_from_labels(nodes, hier_labels),
            ),
        )

        rng = np.random.default_rng(seed)
        random_labels = rng.integers(k, size=num_caches)
        costs["random"] += average_group_interaction_cost(
            network,
            GroupingResult(
                scheme="random-partition",
                groups=groups_from_labels(nodes, random_labels),
            ),
        )
    for name in costs:
        costs[name] /= len(seeds)
    return ExperimentResult(
        experiment_id="ablation-clustering-algorithms",
        x_label="algorithm",
        x_values=ALGORITHMS,
        series=(
            SeriesResult("gicost_ms", tuple(costs[a] for a in ALGORITHMS)),
        ),
    )


@pytest.fixture(scope="module")
def algo_result():
    return run_algorithm_sweep()


def test_algorithm_sweep_benchmark(benchmark):
    result = benchmark.pedantic(
        run_algorithm_sweep,
        kwargs=dict(num_caches=40, k=5, seeds=(111,)),
        rounds=1,
        iterations=1,
    )
    assert result.experiment_id == "ablation-clustering-algorithms"


def test_every_real_algorithm_beats_random(benchmark, algo_result):
    shape_check(benchmark)
    report(algo_result)
    costs = dict(
        zip(
            algo_result.x_values,
            algo_result.series_named("gicost_ms").values,
        )
    )
    for name in ("kmeans", "kmedoids", "hierarchical"):
        assert costs[name] < costs["random"] * 0.8


def test_kmeans_competitive_with_alternatives(benchmark, algo_result):
    """The paper's K-means is within 25% of the best alternative —
    substituting algorithms is a tuning choice, not a flaw."""
    shape_check(benchmark)
    costs = dict(
        zip(
            algo_result.x_values,
            algo_result.series_named("gicost_ms").values,
        )
    )
    best = min(costs["kmeans"], costs["kmedoids"], costs["hierarchical"])
    assert costs["kmeans"] <= best * 1.25
