"""Benchmark harness helpers.

Every figure bench times one experiment run via pytest-benchmark, prints
the figure's rows/series (the same numbers the paper plots), and asserts
the *shape* properties DESIGN.md commits to.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.analysis.report import ExperimentResult

_RESULTS = []


def report(result: ExperimentResult) -> None:
    """Queue a figure table for printing at the end of the session."""
    _RESULTS.append(result)


def shape_check(benchmark) -> None:
    """Mark a test as a (non-timing) shape assertion.

    ``pytest --benchmark-only`` skips any test that never touches the
    ``benchmark`` fixture; the shape checks ride along by timing a no-op
    and grouping themselves out of the main timing table.
    """
    benchmark.group = "shape-checks"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.fixture(scope="session", autouse=True)
def print_collected_tables():
    """Print every reproduced figure after the benchmark session."""
    yield
    if not _RESULTS:
        return
    print("\n")
    print("=" * 70)
    print("Reproduced paper figures (rows as plotted)")
    print("=" * 70)
    for result in _RESULTS:
        print()
        print(result.render())
