"""Ablation: position representation — feature vectors vs GNP vs Vivaldi.

Extends the paper's Figure 7 comparison with the decentralised Vivaldi
coordinates the related-work section cites: how much clustering
accuracy does each representation deliver, and at what probing cost?
"""

import numpy as np
import pytest

from benchmarks.conftest import report, shape_check
from repro.analysis.gicost import average_group_interaction_cost
from repro.analysis.report import ExperimentResult, SeriesResult
from repro.config import GNPConfig, LandmarkConfig
from repro.core.schemes import EuclideanGNPScheme, SLScheme, VivaldiScheme

REPRESENTATIONS = ("feature-vectors", "gnp", "vivaldi")


def run_representation_sweep(num_caches=100, k=10, seeds=(151, 152)):
    from repro.topology import build_network

    lm = LandmarkConfig(num_landmarks=15, multiplier=2)
    costs = {r: 0.0 for r in REPRESENTATIONS}
    for seed in seeds:
        network = build_network(num_caches=num_caches, seed=seed)
        schemes = {
            "feature-vectors": SLScheme(landmark_config=lm),
            "gnp": EuclideanGNPScheme(
                gnp_config=GNPConfig(dimensions=5), landmark_config=lm
            ),
            "vivaldi": VivaldiScheme(dimensions=5, rounds=20),
        }
        for name, scheme in schemes.items():
            grouping = scheme.form_groups(network, k, seed=seed)
            costs[name] += average_group_interaction_cost(
                network, grouping
            ) / len(seeds)
    return ExperimentResult(
        experiment_id="ablation-representation",
        x_label="representation",
        x_values=REPRESENTATIONS,
        series=(
            SeriesResult(
                "gicost_ms", tuple(costs[r] for r in REPRESENTATIONS)
            ),
        ),
    )


@pytest.fixture(scope="module")
def representation_result():
    return run_representation_sweep()


def test_representation_sweep_benchmark(benchmark):
    result = benchmark.pedantic(
        run_representation_sweep,
        kwargs=dict(num_caches=40, k=5, seeds=(151,)),
        rounds=1,
        iterations=1,
    )
    assert result.experiment_id == "ablation-representation"


def test_feature_vectors_competitive(benchmark, representation_result):
    """The paper's cheap representation is within 15% of the best."""
    shape_check(benchmark)
    report(representation_result)
    costs = dict(
        zip(
            representation_result.x_values,
            representation_result.series_named("gicost_ms").values,
        )
    )
    assert costs["feature-vectors"] <= min(costs.values()) * 1.15


def test_vivaldi_usable_but_noisier(benchmark, representation_result):
    """Decentralised coordinates work, within 2x of feature vectors."""
    shape_check(benchmark)
    costs = dict(
        zip(
            representation_result.x_values,
            representation_result.series_named("gicost_ms").values,
        )
    )
    assert costs["vivaldi"] < costs["feature-vectors"] * 2.0
