"""Ablation: origin congestion makes cooperation a capacity story.

With a flat origin processing time, cooperation wins by shortening
paths.  With an M/M/1 congested origin, cooperation *also* keeps the
origin out of its queueing regime — the "cooperative resource
management" motivation from the paper's introduction.  This bench
measures how much extra value cooperation gets under congestion.
"""

import numpy as np
import pytest

from benchmarks.conftest import report, shape_check
from repro.analysis.report import ExperimentResult, SeriesResult
from repro.config import LandmarkConfig, SimulationConfig
from repro.core.groups import singleton_groups
from repro.core.schemes import SLScheme
from repro.experiments.base import build_testbed
from repro.simulator import simulate

SETTINGS = ("flat", "congested")


def run_origin_load_sweep(num_caches=80, k=8, seeds=(161, 162)):
    lm = LandmarkConfig(num_landmarks=15, multiplier=2)
    solo = {s: 0.0 for s in SETTINGS}
    grouped = {s: 0.0 for s in SETTINGS}
    for seed in seeds:
        testbed = build_testbed(num_caches, seed)
        grouping = SLScheme(landmark_config=lm).form_groups(
            testbed.network, k, seed=seed
        )
        isolated = singleton_groups(testbed.network.cache_nodes)
        for setting in SETTINGS:
            config = SimulationConfig(
                origin_queueing=(setting == "congested"),
                origin_capacity_rps=120.0,
            )
            solo[setting] += simulate(
                testbed.network, isolated, testbed.workload, config
            ).average_latency_ms() / len(seeds)
            grouped[setting] += simulate(
                testbed.network, grouping, testbed.workload, config
            ).average_latency_ms() / len(seeds)
    return ExperimentResult(
        experiment_id="ablation-origin-load",
        x_label="origin_model",
        x_values=SETTINGS,
        series=(
            SeriesResult(
                "no_cooperation_ms", tuple(solo[s] for s in SETTINGS)
            ),
            SeriesResult(
                "sl_groups_ms", tuple(grouped[s] for s in SETTINGS)
            ),
            SeriesResult(
                "cooperation_gain_pct",
                tuple(
                    (solo[s] - grouped[s]) / solo[s] * 100.0
                    for s in SETTINGS
                ),
            ),
        ),
    )


@pytest.fixture(scope="module")
def origin_load_result():
    return run_origin_load_sweep()


def test_origin_load_sweep_benchmark(benchmark):
    result = benchmark.pedantic(
        run_origin_load_sweep,
        kwargs=dict(num_caches=30, k=4, seeds=(161,)),
        rounds=1,
        iterations=1,
    )
    assert result.experiment_id == "ablation-origin-load"


def test_congestion_amplifies_cooperation_gain(
    benchmark, origin_load_result
):
    shape_check(benchmark)
    report(origin_load_result)
    gains = dict(
        zip(
            origin_load_result.x_values,
            origin_load_result.series_named("cooperation_gain_pct").values,
        )
    )
    assert gains["congested"] > gains["flat"]


def test_congestion_hurts_uncooperative_networks_most(
    benchmark, origin_load_result
):
    shape_check(benchmark)
    solo = dict(
        zip(
            origin_load_result.x_values,
            origin_load_result.series_named("no_cooperation_ms").values,
        )
    )
    grouped = dict(
        zip(
            origin_load_result.x_values,
            origin_load_result.series_named("sl_groups_ms").values,
        )
    )
    solo_penalty = solo["congested"] / solo["flat"]
    grouped_penalty = grouped["congested"] / grouped["flat"]
    assert solo_penalty > grouped_penalty
