"""Ablation: fixed vs adaptive SDSL theta across group densities.

The N=500 calibration showed the best theta grows with K/N; the
adaptive rule (theta_eff = clamp(20*K/N, 0.5, 2.5)) encodes that.  This
bench verifies the rule at bench scale: adaptive SDSL is at or below
fixed theta=2 on average across a low-density and a high-density K.
"""

import numpy as np
import pytest

from benchmarks.conftest import report, shape_check
from repro.analysis.report import ExperimentResult, SeriesResult
from repro.config import LandmarkConfig, SDSLConfig
from repro.core.schemes import SDSLScheme, SLScheme
from repro.experiments.base import build_testbed, run_simulation

#: (K as fraction of N) sweep: sparse and dense group regimes.
K_FRACTIONS = (0.05, 0.10, 0.20)


def run_adaptive_sweep(num_caches=120, seeds=(191, 192, 193)):
    lm = LandmarkConfig(num_landmarks=15, multiplier=2)
    sl = np.zeros(len(K_FRACTIONS))
    fixed = np.zeros(len(K_FRACTIONS))
    adaptive = np.zeros(len(K_FRACTIONS))
    for seed in seeds:
        testbed = build_testbed(num_caches, seed)
        for i, fraction in enumerate(K_FRACTIONS):
            k = max(2, round(fraction * num_caches))
            g = SLScheme(landmark_config=lm).form_groups(
                testbed.network, k, seed=seed
            )
            sl[i] += run_simulation(testbed, g).average_latency_ms() / len(
                seeds
            )
            g2 = SDSLScheme(
                sdsl_config=SDSLConfig(theta=2.0), landmark_config=lm
            ).form_groups(testbed.network, k, seed=seed)
            fixed[i] += run_simulation(
                testbed, g2
            ).average_latency_ms() / len(seeds)
            g3 = SDSLScheme(
                sdsl_config=SDSLConfig(adaptive=True), landmark_config=lm
            ).form_groups(testbed.network, k, seed=seed)
            adaptive[i] += run_simulation(
                testbed, g3
            ).average_latency_ms() / len(seeds)
    return ExperimentResult(
        experiment_id="ablation-adaptive-theta",
        x_label="k_fraction",
        x_values=K_FRACTIONS,
        series=(
            SeriesResult("sl_ms", tuple(sl)),
            SeriesResult("sdsl_theta2_ms", tuple(fixed)),
            SeriesResult("sdsl_adaptive_ms", tuple(adaptive)),
        ),
    )


@pytest.fixture(scope="module")
def adaptive_result():
    return run_adaptive_sweep()


def test_adaptive_sweep_benchmark(benchmark):
    result = benchmark.pedantic(
        run_adaptive_sweep,
        kwargs=dict(num_caches=40, seeds=(191,)),
        rounds=1,
        iterations=1,
    )
    assert result.experiment_id == "ablation-adaptive-theta"


def test_adaptive_at_or_below_fixed_on_average(benchmark, adaptive_result):
    shape_check(benchmark)
    report(adaptive_result)
    fixed = np.mean(adaptive_result.series_named("sdsl_theta2_ms").values)
    adaptive = np.mean(
        adaptive_result.series_named("sdsl_adaptive_ms").values
    )
    assert adaptive <= fixed * 1.05


def test_adaptive_beats_sl_on_average(benchmark, adaptive_result):
    shape_check(benchmark)
    sl = np.mean(adaptive_result.series_named("sl_ms").values)
    adaptive = np.mean(
        adaptive_result.series_named("sdsl_adaptive_ms").values
    )
    assert adaptive < sl
