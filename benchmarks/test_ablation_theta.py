"""Ablation: SDSL's theta sensitivity.

Sweeps the server-distance sensitivity exponent.  theta=0 is exactly
SL-style uniform seeding; the bench documents the calibration that made
theta=2 the library default and checks that extreme theta does not
collapse the scheme.
"""

import numpy as np
import pytest

from benchmarks.conftest import report, shape_check
from repro.analysis.report import ExperimentResult, SeriesResult
from repro.config import SDSLConfig
from repro.core.schemes import SDSLScheme
from repro.experiments.base import (
    build_testbed,
    landmark_config,
    run_simulation,
)

THETAS = (0.0, 0.5, 1.0, 2.0, 4.0)


def run_theta_sweep(num_caches=100, k=15, seeds=(41, 42, 43)):
    lm = landmark_config(25, num_caches=num_caches)
    latencies = []
    for theta in THETAS:
        total = 0.0
        for seed in seeds:
            testbed = build_testbed(num_caches, seed)
            scheme = SDSLScheme(
                sdsl_config=SDSLConfig(theta=theta), landmark_config=lm
            )
            grouping = scheme.form_groups(testbed.network, k, seed=seed)
            total += run_simulation(testbed, grouping).average_latency_ms()
        latencies.append(total / len(seeds))
    return ExperimentResult(
        experiment_id="ablation-theta",
        x_label="theta",
        x_values=THETAS,
        series=(SeriesResult("latency_ms", tuple(latencies)),),
    )


@pytest.fixture(scope="module")
def theta_result():
    return run_theta_sweep()


def test_theta_sweep_benchmark(benchmark):
    result = benchmark.pedantic(
        run_theta_sweep,
        kwargs=dict(num_caches=40, k=6, seeds=(41,)),
        rounds=1,
        iterations=1,
    )
    assert result.experiment_id == "ablation-theta"


def test_moderate_theta_beats_uniform(benchmark, theta_result):
    """Some positive theta improves on theta=0 (the SL degenerate)."""
    shape_check(benchmark)
    report(theta_result)
    series = theta_result.series_named("latency_ms").values
    uniform = series[0]
    best_positive = min(series[1:])
    assert best_positive < uniform


def test_extreme_theta_not_catastrophic(benchmark, theta_result):
    """theta=4 may over-concentrate centers but stays within 25% of
    the best setting (K-means iterations repair the extremes)."""
    shape_check(benchmark)
    series = theta_result.series_named("latency_ms").values
    assert series[-1] < min(series) * 1.25
