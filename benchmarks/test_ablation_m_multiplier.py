"""Ablation: the potential-landmark multiplier M.

The SL greedy selector picks L-1 landmarks from a random PLSet of
M*(L-1) caches.  Larger M means a better max-min spread at the cost of
O(M^2) more probes.  The bench records the accuracy/probes trade-off.
"""

import numpy as np
import pytest

from benchmarks.conftest import report, shape_check
from repro.analysis.gicost import average_group_interaction_cost
from repro.analysis.report import ExperimentResult, SeriesResult
from repro.config import LandmarkConfig, ProbeConfig
from repro.core.schemes import SLScheme
from repro.landmarks import GreedyMaxMinSelector
from repro.probing import Prober
from repro.topology import build_network
from repro.utils.rng import RngFactory

M_VALUES = (1, 2, 4, 6)


def run_m_sweep(num_caches=120, k=12, num_landmarks=12, seeds=(51, 52, 53)):
    gicosts = []
    spreads = []
    probes = []
    for m in M_VALUES:
        lm_config = LandmarkConfig(num_landmarks=num_landmarks, multiplier=m)
        cost_total, spread_total, probe_total = 0.0, 0.0, 0
        for seed in seeds:
            factory = RngFactory(seed)
            network = build_network(
                num_caches=num_caches, seed=factory.stream("topology")
            )
            # Probe accounting for the selection phase alone.
            prober = Prober(
                network, config=ProbeConfig(probe_count=1),
                seed=factory.stream("probe"),
            )
            landmarks = GreedyMaxMinSelector().select(
                prober, lm_config, factory.stream("landmarks")
            )
            spread_total += landmarks.min_pairwise_rtt
            probe_total += prober.stats.pairs_measured

            scheme = SLScheme(landmark_config=lm_config)
            grouping = scheme.form_groups(network, k, seed=seed)
            cost_total += average_group_interaction_cost(network, grouping)
        gicosts.append(cost_total / len(seeds))
        spreads.append(spread_total / len(seeds))
        probes.append(probe_total / len(seeds))
    return ExperimentResult(
        experiment_id="ablation-m-multiplier",
        x_label="M",
        x_values=M_VALUES,
        series=(
            SeriesResult("gicost_ms", tuple(gicosts)),
            SeriesResult("landmark_spread_ms", tuple(spreads)),
            SeriesResult("selection_probe_pairs", tuple(probes)),
        ),
    )


@pytest.fixture(scope="module")
def m_result():
    return run_m_sweep()


def test_m_sweep_benchmark(benchmark):
    result = benchmark.pedantic(
        run_m_sweep,
        kwargs=dict(num_caches=40, k=5, num_landmarks=6, seeds=(51,)),
        rounds=1,
        iterations=1,
    )
    assert result.experiment_id == "ablation-m-multiplier"


def test_larger_m_improves_landmark_spread(benchmark, m_result):
    shape_check(benchmark)
    report(m_result)
    spreads = m_result.series_named("landmark_spread_ms").values
    assert spreads[-1] > spreads[0]


def test_probe_cost_grows_quadratically(benchmark, m_result):
    shape_check(benchmark)
    probes = m_result.series_named("selection_probe_pairs").values
    # M=6 costs far more probes than M=1 (roughly quadratic).
    assert probes[-1] > 8 * probes[0]


def test_m2_captures_most_of_the_benefit(benchmark, m_result):
    """The paper's M=2 default: within 15% of the best-M GICost."""
    shape_check(benchmark)
    gicosts = m_result.series_named("gicost_ms").values
    m2 = gicosts[M_VALUES.index(2)]
    assert m2 <= min(gicosts) * 1.15
