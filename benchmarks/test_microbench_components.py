"""Micro-benchmarks of the core components.

Classic pytest-benchmark timings (multiple rounds) for the pieces a
downstream user would run in a loop: topology generation, all-pairs
RTT, landmark selection, K-means, and simulator throughput.
"""

import numpy as np
import pytest

from repro.clustering import KMeans
from repro.config import LandmarkConfig, WorkloadConfig, DocumentConfig
from repro.core.schemes import SLScheme
from repro.landmarks import GreedyMaxMinSelector
from repro.probing import Prober
from repro.simulator import simulate
from repro.core.groups import single_group
from repro.topology import build_network
from repro.topology.distance import compute_rtt_matrix
from repro.workload import generate_workload


@pytest.fixture(scope="module")
def network100():
    return build_network(num_caches=100, seed=5)


def test_topology_generation_100_caches(benchmark):
    benchmark(build_network, num_caches=100, seed=5)


def test_rtt_matrix_computation(benchmark, network100):
    graph = network100.graph
    placed = network100.placement.node_routers
    result = benchmark(compute_rtt_matrix, graph, placed)
    assert result.size == 101


def test_greedy_landmark_selection(benchmark, network100):
    config = LandmarkConfig(num_landmarks=25, multiplier=2)

    def run():
        prober = Prober(network100, seed=1)
        return GreedyMaxMinSelector().select(
            prober, config, np.random.default_rng(1)
        )

    landmarks = benchmark(run)
    assert len(landmarks) == 25


def test_kmeans_500x25(benchmark):
    rng = np.random.default_rng(3)
    points = rng.random((500, 25)) * 100
    result = benchmark(lambda: KMeans(k=50).fit(points, seed=3))
    assert result.cluster_sizes().sum() == 500


def test_full_sl_scheme_100_caches(benchmark, network100):
    scheme = SLScheme(
        landmark_config=LandmarkConfig(num_landmarks=25, multiplier=2)
    )
    result = benchmark(scheme.form_groups, network100, 10, 7)
    assert result.num_groups <= 10


def _throughput_workload(network):
    return generate_workload(
        network.cache_nodes,
        WorkloadConfig(
            documents=DocumentConfig(num_documents=300),
            requests_per_cache=100,
        ),
        seed=9,
    )


def test_simulator_throughput(benchmark, network100):
    """Requests per second through the event loop (one giant group,
    worst case for directory sizes).

    This is also the observability layer's no-overhead anchor: the
    default run passes no observer, so any measurable slowdown here
    relative to the seed means the disabled-instrument fast path
    regressed (compare against ``test_simulator_throughput_instrumented``
    for the cost of tracing + sampling).
    """
    workload = _throughput_workload(network100)
    grouping = single_group(network100.cache_nodes)
    result = benchmark(simulate, network100, grouping, workload)
    assert result.metrics.total_requests() > 0


def test_simulator_throughput_sanitized(benchmark, network100):
    """Event loop under the draw-ledger sanitizer (repro.sanitize).

    The acceptance budget is <= 10% over ``test_simulator_throughput``;
    the batch event recorder keeps it near zero.  Disabled cost is
    exactly zero by construction — ``test_sanitize_not_imported_by_hot_
    paths`` proves the hot paths never even import the package.
    """
    from repro.sanitize import sanitize

    workload = _throughput_workload(network100)
    grouping = single_group(network100.cache_nodes)

    def run():
        with sanitize() as state:
            result = simulate(network100, grouping, workload)
        return result, state.ledger

    result, ledger = benchmark(run)
    assert result.metrics.total_requests() > 0
    assert ledger.total_draws() > 0


def test_sanitize_not_imported_by_hot_paths():
    """Flag off => zero overhead: a plain run never loads the sanitizer."""
    import os
    import subprocess
    import sys
    from pathlib import Path

    probe = (
        "import sys\n"
        "from repro.topology import build_network\n"
        "from repro.core.groups import single_group\n"
        "from repro.config import WorkloadConfig, DocumentConfig\n"
        "from repro.workload import generate_workload\n"
        "from repro.simulator import simulate\n"
        "network = build_network(num_caches=20, seed=5)\n"
        "workload = generate_workload(network.cache_nodes,\n"
        "    WorkloadConfig(documents=DocumentConfig(num_documents=50),\n"
        "                   requests_per_cache=10), seed=9)\n"
        "simulate(network, single_group(network.cache_nodes), workload)\n"
        "bad = [m for m in sys.modules if m.startswith('repro.sanitize')]\n"
        "assert not bad, f'hot path imported {bad}'\n"
    )
    subprocess.run(
        [sys.executable, "-c", probe], check=True,
        env={**os.environ, "PYTHONPATH": "src"},
        cwd=str(Path(__file__).resolve().parents[1]),
    )


def test_simulator_throughput_instrumented(benchmark, network100):
    """Same event loop with tracing and sampling enabled — the price of
    full instrumentation, to compare against the uninstrumented run."""
    from repro.obs import MetricsSampler, Observer, TraceCollector

    workload = _throughput_workload(network100)
    grouping = single_group(network100.cache_nodes)

    def run():
        observer = Observer(
            trace=TraceCollector(capacity=10_000),
            sampler=MetricsSampler(interval_ms=1_000.0),
        )
        return simulate(
            network100, grouping, workload, observer=observer
        )

    result = benchmark(run)
    assert len(result.trace) > 0
    assert len(result.timeseries()) > 0


# -- BENCH_engine.json trajectory artifact --------------------------------
#
# Emitted for CI upload: one JSON file recording engine throughput
# (plain, instrumented, and the legacy heap loop) and suite wall-clock
# at jobs=1 vs jobs=2, each compared against the committed seed baseline
# in ``benchmarks/baselines/BENCH_engine_seed.json`` so the speedup
# trajectory is tracked across PRs rather than across one noisy run.
# The measurement itself rides on ``repro.bench`` (the same subsystem
# behind ``repro bench run|gate``); the artifact embeds the native
# result under ``bench``, so ``repro bench compare BENCH_engine.json …``
# reads it directly.

import json
from pathlib import Path

_BASELINE_PATH = Path(__file__).parent / "baselines" / "BENCH_engine_seed.json"
_ARTIFACT_PATH = Path("BENCH_engine.json")


def test_emit_bench_engine_artifact():
    """Measure engine + suite throughput and write BENCH_engine.json."""
    from repro.bench import DEFAULT_SCENARIO, LARGE_SCENARIO, run_bench

    baseline = json.loads(_BASELINE_PATH.read_text())

    result = run_bench(
        scenario=DEFAULT_SCENARIO, label="trajectory",
        include_suite=True, suite_jobs=(1, 2),
        extra_scenarios={"large": LARGE_SCENARIO},
    )
    engine = result.engine
    serial = result.suite["jobs1"]
    parallel = result.suite["jobs2"]

    artifact = {
        "baseline": baseline,
        "bench": result.to_dict(),
        "engine": {
            "events": int(engine["events"]),
            "plain_events_per_sec": engine["plain_events_per_sec"],
            "instrumented_events_per_sec": (
                engine["instrumented_events_per_sec"]
            ),
            "heap_loop_events_per_sec": engine["heap_events_per_sec"],
        },
        "engine_1m": {
            "events": int(
                result.scenarios["large"]["engine"]["events"]
            ),
            "plain_events_per_sec": (
                result.scenarios["large"]["engine"]["plain_events_per_sec"]
            ),
        },
        "suite": {
            "wall_s_jobs1": serial["wall_s"],
            "wall_s_jobs2": parallel["wall_s"],
            "events_per_sec_per_core_jobs1": (
                serial["events_per_sec_per_core"]
            ),
            "events_per_sec_per_core_jobs2": (
                parallel["events_per_sec_per_core"]
            ),
            "cache_stats_jobs1": {
                "testbed_cache_hits": int(serial["testbed_cache_hits"]),
                "testbed_cache_misses": int(serial["testbed_cache_misses"]),
            },
            "cache_stats_jobs2": {
                "testbed_cache_hits": int(parallel["testbed_cache_hits"]),
                "testbed_cache_misses": int(parallel["testbed_cache_misses"]),
            },
        },
        "improvement_vs_seed": {
            "suite_wall": baseline["suite_wall_s"] / serial["wall_s"],
            "engine_plain": (
                engine["plain_events_per_sec"]
                / baseline["engine"]["plain_events_per_sec"]
            ),
            "engine_instrumented": (
                engine["instrumented_events_per_sec"]
                / baseline["engine"]["instrumented_events_per_sec"]
            ),
        },
    }
    _ARTIFACT_PATH.write_text(json.dumps(artifact, indent=2) + "\n")

    assert int(engine["events"]) == baseline["engine"]["events"], (
        "event count drifted from the baseline workload; "
        "re-baseline before comparing throughput"
    )
    # The runtime layer's headline claim: the serial suite runs at
    # least 1.5x faster than the seed tree on comparable hardware.
    assert artifact["improvement_vs_seed"]["suite_wall"] >= 1.5
    # Worker telemetry attributed engine events to suite tasks, and the
    # testbed cache did real work at both jobs levels.
    assert serial["events"] > 0
    assert serial["testbed_cache_hits"] > 0
