"""Figure 4 bench: landmark-selection accuracy vs. network size.

Shape requirements (paper Section 5.1): the SL greedy selector yields
lower average group interaction cost than random selection (on average
across sizes) and clearly lower than min-dist selection at every size.
"""

import numpy as np
import pytest

from benchmarks.conftest import report, shape_check
from repro.experiments import run_fig4

SIZES = (60, 100, 140, 180)


@pytest.fixture(scope="module")
def fig4_result():
    return run_fig4(network_sizes=SIZES, repetitions=4, seed=13)


def test_fig4_benchmark(benchmark):
    result = benchmark.pedantic(
        run_fig4,
        kwargs=dict(network_sizes=(60,), repetitions=1, seed=13),
        rounds=1,
        iterations=1,
    )
    assert result.experiment_id == "fig4"


def test_fig4_sl_beats_mindist_everywhere(benchmark, fig4_result):
    shape_check(benchmark)
    report(fig4_result)
    sl = fig4_result.series_named("sl_ms").values
    mindist = fig4_result.series_named("mindist_ms").values
    for s, m in zip(sl, mindist):
        assert s < m


def test_fig4_sl_beats_random_on_average(benchmark, fig4_result):
    shape_check(benchmark)
    sl = np.mean(fig4_result.series_named("sl_ms").values)
    random_ = np.mean(fig4_result.series_named("random_ms").values)
    assert sl < random_


def test_fig4_gicost_falls_with_network_size(benchmark, fig4_result):
    """With K fixed at 10% of N, more caches -> tighter groups (denser
    placement on the fixed-density topology family)."""
    shape_check(benchmark)
    sl = fig4_result.series_named("sl_ms").values
    assert sl[-1] < sl[0] * 1.5  # does not blow up with size
