"""Extension bench: client-perceived latency under redirection policies.

The paper stops at edge-cache latency; end users additionally pay the
access RTT their redirection policy gives them.  This bench composes
the client substrate with the SDSL-grouped network and verifies the
policy ordering end to end.
"""

import numpy as np
import pytest

from benchmarks.conftest import report, shape_check
from repro.analysis.report import ExperimentResult, SeriesResult
from repro.clients import (
    assign_clients,
    client_perceived_latency,
    generate_client_workload,
    place_clients,
)
from repro.config import LandmarkConfig
from repro.core.schemes import SDSLScheme
from repro.simulator import simulate
from repro.topology import build_network

POLICIES = ("nearest", "nearest-k", "random")


def run_redirection_sweep(
    num_caches=60, num_clients=150, k=6, seeds=(141, 142)
):
    lm = LandmarkConfig(num_landmarks=15, multiplier=2)
    perceived = {p: 0.0 for p in POLICIES}
    access = {p: 0.0 for p in POLICIES}
    for seed in seeds:
        network = build_network(num_caches=num_caches, seed=seed)
        population = place_clients(network, num_clients, seed=seed)
        grouping = SDSLScheme(landmark_config=lm).form_groups(
            network, k, seed=seed
        )
        for policy in POLICIES:
            assignment = assign_clients(
                population, policy=policy, k=3, seed=seed
            )
            cw = generate_client_workload(
                population, assignment, requests_per_client=25, seed=seed
            )
            result = simulate(network, grouping, cw.workload)
            perceived[policy] += client_perceived_latency(
                result, cw
            ) / len(seeds)
            from repro.clients.redirection import mean_access_rtt

            access[policy] += mean_access_rtt(
                population, assignment
            ) / len(seeds)
    return ExperimentResult(
        experiment_id="client-redirection",
        x_label="policy",
        x_values=POLICIES,
        series=(
            SeriesResult(
                "perceived_ms", tuple(perceived[p] for p in POLICIES)
            ),
            SeriesResult(
                "access_rtt_ms", tuple(access[p] for p in POLICIES)
            ),
        ),
    )


@pytest.fixture(scope="module")
def redirection_result():
    return run_redirection_sweep()


def test_redirection_sweep_benchmark(benchmark):
    result = benchmark.pedantic(
        run_redirection_sweep,
        kwargs=dict(num_caches=25, num_clients=40, k=4, seeds=(141,)),
        rounds=1,
        iterations=1,
    )
    assert result.experiment_id == "client-redirection"


def test_policy_ordering_end_to_end(benchmark, redirection_result):
    shape_check(benchmark)
    report(redirection_result)
    perceived = dict(
        zip(
            redirection_result.x_values,
            redirection_result.series_named("perceived_ms").values,
        )
    )
    assert perceived["nearest"] <= perceived["nearest-k"] * 1.02
    assert perceived["nearest-k"] < perceived["random"]


def test_access_rtt_explains_the_gap(benchmark, redirection_result):
    """The perceived-latency gap between nearest and random comes from
    access RTT, not from edge behaviour."""
    shape_check(benchmark)
    perceived = redirection_result.series_named("perceived_ms").values
    access = redirection_result.series_named("access_rtt_ms").values
    perceived_gap = perceived[POLICIES.index("random")] - perceived[
        POLICIES.index("nearest")
    ]
    access_gap = access[POLICIES.index("random")] - access[
        POLICIES.index("nearest")
    ]
    assert access_gap > 0
    assert perceived_gap == pytest.approx(access_gap, rel=0.5)
