"""Ablation: flash crowds and the value of cooperation.

Under a steady workload, cooperation saves a fixed share of origin
trips.  Under a flash crowd hitting a congested origin, every saved
origin trip also keeps the origin's queue shorter *exactly when demand
peaks* — so the cooperation gain grows both with burstiness and with
congestion modelling.
"""

import numpy as np
import pytest

from benchmarks.conftest import report, shape_check
from repro.analysis.report import ExperimentResult, SeriesResult
from repro.config import (
    DocumentConfig,
    LandmarkConfig,
    SimulationConfig,
    WorkloadConfig,
)
from repro.core.groups import singleton_groups
from repro.core.schemes import SLScheme
from repro.simulator import simulate
from repro.topology import build_network
from repro.workload.flash_crowd import (
    FlashCrowdConfig,
    generate_flash_crowd_workload,
)

SETTINGS = ("steady", "flash_crowd", "flash_crowd+queueing")


def run_flash_crowd_sweep(num_caches=80, k=8, seeds=(181, 182)):
    lm = LandmarkConfig(num_landmarks=15, multiplier=2)
    workload_config = WorkloadConfig(
        documents=DocumentConfig(num_documents=400),
        requests_per_cache=150,
    )
    gains = {s: 0.0 for s in SETTINGS}
    for seed in seeds:
        network = build_network(num_caches=num_caches, seed=seed)
        grouping = SLScheme(landmark_config=lm).form_groups(
            network, k, seed=seed
        )
        isolated = singleton_groups(network.cache_nodes)
        for setting in SETTINGS:
            if setting == "steady":
                crowd = FlashCrowdConfig(peak_factor=1.0)
            else:
                crowd = FlashCrowdConfig(peak_factor=8.0)
            workload = generate_flash_crowd_workload(
                network.cache_nodes,
                workload_config,
                crowd,
                duration_ms=60_000.0,
                seed=seed,
            )
            config = SimulationConfig(
                origin_queueing=setting.endswith("queueing"),
                origin_capacity_rps=150.0,
            )
            solo = simulate(
                network, isolated, workload, config
            ).average_latency_ms()
            grouped = simulate(
                network, grouping, workload, config
            ).average_latency_ms()
            gains[setting] += (solo - grouped) / solo * 100.0 / len(seeds)
    return ExperimentResult(
        experiment_id="ablation-flash-crowd",
        x_label="scenario",
        x_values=SETTINGS,
        series=(
            SeriesResult(
                "cooperation_gain_pct",
                tuple(gains[s] for s in SETTINGS),
            ),
        ),
    )


@pytest.fixture(scope="module")
def flash_result():
    return run_flash_crowd_sweep()


def test_flash_crowd_sweep_benchmark(benchmark):
    result = benchmark.pedantic(
        run_flash_crowd_sweep,
        kwargs=dict(num_caches=30, k=4, seeds=(181,)),
        rounds=1,
        iterations=1,
    )
    assert result.experiment_id == "ablation-flash-crowd"


def test_cooperation_always_pays(benchmark, flash_result):
    shape_check(benchmark)
    report(flash_result)
    gains = flash_result.series_named("cooperation_gain_pct").values
    assert all(g > 0 for g in gains)


def test_congested_flash_crowd_pays_most(benchmark, flash_result):
    shape_check(benchmark)
    gains = dict(
        zip(
            flash_result.x_values,
            flash_result.series_named("cooperation_gain_pct").values,
        )
    )
    assert gains["flash_crowd+queueing"] > gains["steady"]
