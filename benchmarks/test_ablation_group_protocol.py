"""Ablation: cooperative lookup protocol (beacon vs multicast vs directory).

Quantifies how much of the group-size latency penalty comes from the
lookup mechanism: the idealised directory has no distance-dependent
penalty, the beacon pays one in-group RTT, and ICP-style multicast pays
the farthest-peer RTT on every group-wide miss.
"""

import numpy as np
import pytest

from benchmarks.conftest import report, shape_check
from repro.analysis.report import ExperimentResult, SeriesResult
from repro.config import LandmarkConfig
from repro.core.groups import single_group
from repro.core.schemes import SLScheme
from repro.experiments.base import build_testbed
from repro.simulator import simulate

MODES = ("directory", "beacon", "multicast")


def run_protocol_sweep(num_caches=100, seeds=(91, 92)):
    lm = LandmarkConfig(num_landmarks=15, multiplier=2)
    moderate = {m: 0.0 for m in MODES}
    giant = {m: 0.0 for m in MODES}
    for seed in seeds:
        testbed = build_testbed(num_caches, seed)
        grouping = SLScheme(landmark_config=lm).form_groups(
            testbed.network, max(2, num_caches // 10), seed=seed
        )
        one_group = single_group(testbed.network.cache_nodes)
        for mode in MODES:
            moderate[mode] += simulate(
                testbed.network, grouping, testbed.workload,
                group_protocol_mode=mode,
            ).average_latency_ms() / len(seeds)
            giant[mode] += simulate(
                testbed.network, one_group, testbed.workload,
                group_protocol_mode=mode,
            ).average_latency_ms() / len(seeds)
    return ExperimentResult(
        experiment_id="ablation-group-protocol",
        x_label="protocol",
        x_values=MODES,
        series=(
            SeriesResult(
                "moderate_groups_ms", tuple(moderate[m] for m in MODES)
            ),
            SeriesResult("one_giant_group_ms", tuple(giant[m] for m in MODES)),
        ),
    )


@pytest.fixture(scope="module")
def protocol_result():
    return run_protocol_sweep()


def test_protocol_sweep_benchmark(benchmark):
    result = benchmark.pedantic(
        run_protocol_sweep,
        kwargs=dict(num_caches=40, seeds=(91,)),
        rounds=1,
        iterations=1,
    )
    assert result.experiment_id == "ablation-group-protocol"


def test_idealised_directory_always_cheapest(benchmark, protocol_result):
    """The zero-distance directory lower-bounds both real protocols in
    both group-size regimes.  (Beacon vs multicast flips with the hit
    rate: in a giant group multicast's first-positive-reply is cheap
    while the beacon is a random — likely far — member.)"""
    shape_check(benchmark)
    report(protocol_result)
    for series_name in ("moderate_groups_ms", "one_giant_group_ms"):
        values = dict(
            zip(
                protocol_result.x_values,
                protocol_result.series_named(series_name).values,
            )
        )
        assert values["directory"] <= values["beacon"] * 1.02
        assert values["directory"] <= values["multicast"] * 1.02


def test_giant_group_only_acceptable_with_free_lookups(
    benchmark, protocol_result
):
    """With an idealised directory the giant group is close to moderate
    groups; with distance-charged lookups it is clearly worse —
    i.e. the paper's trade-off comes from lookup/interaction costs."""
    shape_check(benchmark)
    moderate = dict(
        zip(
            protocol_result.x_values,
            protocol_result.series_named("moderate_groups_ms").values,
        )
    )
    giant = dict(
        zip(
            protocol_result.x_values,
            protocol_result.series_named("one_giant_group_ms").values,
        )
    )
    penalty_directory = giant["directory"] / moderate["directory"]
    penalty_beacon = giant["beacon"] / moderate["beacon"]
    assert penalty_beacon > penalty_directory
