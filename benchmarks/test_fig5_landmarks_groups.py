"""Figure 5 bench: landmark-selection accuracy vs. number of groups.

Shape requirements: GICost decreases as K grows for every selector, and
SL's greedy selection stays at or below the baselines across K (clearly
below min-dist).
"""

import numpy as np
import pytest

from benchmarks.conftest import report, shape_check
from repro.experiments import run_fig5

K_VALUES = (5, 10, 15, 25, 40)


@pytest.fixture(scope="module")
def fig5_result():
    return run_fig5(
        num_caches=150, k_values=K_VALUES, repetitions=4, seed=17
    )


def test_fig5_benchmark(benchmark):
    result = benchmark.pedantic(
        run_fig5,
        kwargs=dict(
            num_caches=60, k_values=(5, 10), repetitions=1, seed=17
        ),
        rounds=1,
        iterations=1,
    )
    assert result.experiment_id == "fig5"


def test_fig5_sl_beats_mindist_at_every_k(benchmark, fig5_result):
    shape_check(benchmark)
    report(fig5_result)
    sl = fig5_result.series_named("sl_ms").values
    mindist = fig5_result.series_named("mindist_ms").values
    for s, m in zip(sl, mindist):
        assert s < m


def test_fig5_sl_at_or_below_random(benchmark, fig5_result):
    shape_check(benchmark)
    sl = np.mean(fig5_result.series_named("sl_ms").values)
    random_ = np.mean(fig5_result.series_named("random_ms").values)
    assert sl <= random_ * 1.03


def test_fig5_gicost_decreases_with_k(benchmark, fig5_result):
    shape_check(benchmark)
    for name in ("sl_ms", "random_ms", "mindist_ms"):
        series = fig5_result.series_named(name).values
        assert series[-1] < series[0]
