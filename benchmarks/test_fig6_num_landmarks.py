"""Figure 6 bench: clustering accuracy vs. number of landmarks.

Shape requirements: accuracy (GICost) improves as landmarks grow from a
starved L=4 up to the paper's 25, with diminishing returns beyond ~10;
SL is clearly below min-dist at every landmark count and within a
parity band of random selection (see EXPERIMENTS.md for the documented
deviation: on our substrate the SL-vs-random gap at moderate L is
within noise, while the paper reports a consistent SL win).
"""

import numpy as np
import pytest

from benchmarks.conftest import report, shape_check
from repro.experiments import run_fig6


@pytest.fixture(scope="module")
def fig6_result():
    return run_fig6(
        num_caches=150,
        landmark_counts=(4, 10, 20, 25),
        num_groups=10,
        repetitions=5,
        seed=19,
    )


def test_fig6_benchmark(benchmark):
    result = benchmark.pedantic(
        run_fig6,
        kwargs=dict(
            num_caches=60, landmark_counts=(5, 10), num_groups=6,
            repetitions=1, seed=19,
        ),
        rounds=1,
        iterations=1,
    )
    assert result.experiment_id == "fig6"


def test_fig6_sl_beats_mindist_at_every_l(benchmark, fig6_result):
    shape_check(benchmark)
    report(fig6_result)
    sl = fig6_result.series_named("sl_ms").values
    mindist = fig6_result.series_named("mindist_ms").values
    for s, m in zip(sl, mindist):
        assert s < m


def test_fig6_more_landmarks_help_sl(benchmark, fig6_result):
    shape_check(benchmark)
    sl = fig6_result.series_named("sl_ms").values
    # Starved landmarks (L=4) are clearly worse than the paper's 25.
    assert sl[-1] < sl[0]
    # Diminishing returns: L=10 already captures nearly everything.
    assert sl[-1] >= sl[1] * 0.9


def test_fig6_sl_within_parity_band_of_random(benchmark, fig6_result):
    shape_check(benchmark)
    sl = fig6_result.series_named("sl_ms").values
    random_ = fig6_result.series_named("random_ms").values
    for s, r in zip(sl, random_):
        assert s <= r * 1.10
