#!/usr/bin/env python
"""Scenario: how much does landmark choice matter, and what does it cost?

A CDN operator deciding how to position caches must pick Internet
landmarks.  This example compares the three selection strategies the
paper evaluates — SL's greedy max–min, uniform random, and the
adversarial min-dist — along *both* axes that matter operationally:

* clustering accuracy (average group interaction cost of the groups
  built on each landmark set), and
* measurement cost (how many RTT probe pairs each strategy issues).

It also shows the probe-budget argument behind the PLSet design: the
greedy strategy stays at O((M(L-1))^2) pairs instead of O(N^2).

Run:  python examples/landmark_quality.py
"""

import numpy as np

from repro import LandmarkConfig, ProbeConfig, build_network
from repro.analysis import average_group_interaction_cost
from repro.core.schemes import (
    MinDistLandmarksScheme,
    RandomLandmarksScheme,
    SLScheme,
)
from repro.landmarks import (
    GreedyMaxMinSelector,
    MinDistSelector,
    RandomSelector,
)
from repro.probing import Prober
from repro.utils.tables import Table


def main() -> None:
    network = build_network(num_caches=150, seed=42)
    k = 15
    lm_config = LandmarkConfig(num_landmarks=15, multiplier=2)

    # --- accuracy: GICost of the groups each selector produces -------
    schemes = {
        "SL greedy": SLScheme,
        "random": RandomLandmarksScheme,
        "min-dist": MinDistLandmarksScheme,
    }
    repetitions = 5
    table = Table(["selector", "gicost_ms", "landmark_spread_ms"])
    for name, scheme_cls in schemes.items():
        costs = []
        spreads = []
        for seed in range(repetitions):
            scheme = scheme_cls(landmark_config=lm_config)
            grouping = scheme.form_groups(network, k, seed=seed)
            costs.append(average_group_interaction_cost(network, grouping))
            spread = grouping.landmarks.min_pairwise_rtt
            if not np.isnan(spread):
                spreads.append(spread)
        table.add_row(
            [
                name,
                float(np.mean(costs)),
                float(np.mean(spreads)) if spreads else float("nan"),
            ]
        )
    print("Clustering accuracy by landmark selector "
          f"(N=150, K={k}, L=15, mean of {repetitions} runs):\n")
    print(table.render())

    # --- measurement cost: probe pairs per selector -------------------
    print("\nProbe budget (pairs measured during selection):\n")
    budget = Table(["selector", "probe_pairs", "vs full N^2 matrix"])
    full_matrix = 151 * 150 // 2
    selectors = {
        "SL greedy": GreedyMaxMinSelector(),
        "random": RandomSelector(),
        "min-dist": MinDistSelector(),
    }
    for name, selector in selectors.items():
        prober = Prober(
            network, config=ProbeConfig(probe_count=1), seed=0
        )
        selector.select(prober, lm_config, np.random.default_rng(0))
        pairs = prober.stats.pairs_measured
        budget.add_row([name, pairs, f"{pairs / full_matrix:.1%}"])
    print(budget.render())
    print(
        "\nThe greedy selector buys its accuracy with a tiny fraction "
        "of the probes a full distance matrix would need; min-dist "
        "pays the same probes for *worse* groups — landmark spread is "
        "what matters."
    )


if __name__ == "__main__":
    main()
