#!/usr/bin/env python
"""Scenario: a flash-crowd sports site served by a cooperative edge network.

Models the setting the paper's evaluation derives from — the 2000 Sydney
Olympics web site: a large catalog of mostly *dynamic* documents (live
scores, schedules) that the origin keeps updating, with highly similar
request patterns across the edge caches.

The example:

* generates an Olympics-like workload (Zipf popularity, 80% shared
  interest, Poisson update stream over the dynamic documents);
* writes/reads the request and update logs in the simulator's trace
  format (the paper's caches are "driven by request-log files");
* sweeps the cooperative group count and reports how cooperation
  absorbs the origin's load — and what it costs in latency.

Run:  python examples/olympics_workload.py
"""

import tempfile
from pathlib import Path

from repro import (
    DocumentConfig,
    SLScheme,
    WorkloadConfig,
    build_network,
    generate_workload,
    simulate,
)
from repro.core.groups import single_group, singleton_groups
from repro.utils.tables import Table
from repro.workload.ibm_synthetic import load_workload


def main() -> None:
    network = build_network(num_caches=120, seed=2000)

    # An update-heavy dynamic workload: 80% of the catalog is dynamic
    # (scores pages), updates arrive fast, interest is strongly shared.
    config = WorkloadConfig(
        documents=DocumentConfig(num_documents=600, dynamic_fraction=0.8),
        requests_per_cache=200,
        zipf_alpha=0.9,
        shared_interest=0.85,
        mean_update_interarrival_ms=150.0,
    )
    workload = generate_workload(network.cache_nodes, config, seed=2000)
    print(
        f"workload: {workload.num_requests} requests, "
        f"{workload.num_updates} origin updates over "
        f"{workload.horizon_ms / 1000:.1f}s"
    )

    # Round-trip the logs through the on-disk trace format.
    with tempfile.TemporaryDirectory() as tmp:
        req_path = Path(tmp) / "requests.log"
        upd_path = Path(tmp) / "updates.log"
        workload.save(req_path, upd_path)
        workload = load_workload(workload.catalog, req_path, upd_path)
        print(f"trace files: {req_path.name} + {upd_path.name} (round-tripped)")

    # Sweep the number of cooperative groups.
    table = Table(
        ["groups", "avg_latency_ms", "origin_share", "group_hit_rate",
         "invalidations"]
    )
    scheme = SLScheme()
    for k in (0, 24, 12, 6, 3, 1):  # 0 encodes "no cooperation"
        if k == 0:
            grouping = singleton_groups(network.cache_nodes)
            label = "none"
        elif k == 1:
            grouping = single_group(network.cache_nodes)
            label = "1"
        else:
            grouping = scheme.form_groups(network, k, seed=k)
            label = str(k)
        result = simulate(network, grouping, workload)
        table.add_row(
            [
                label,
                result.average_latency_ms(),
                result.hit_rates()["origin"],
                result.group_hit_rate(),
                result.metrics.invalidation_messages,
            ]
        )
    print()
    print(table.render())
    print(
        "\nCooperation absorbs origin traffic (origin_share falls), but "
        "one giant group pays so much lookup/interaction cost that "
        "latency climbs back up — the trade-off behind the paper's "
        "Figure 3."
    )


if __name__ == "__main__":
    main()
