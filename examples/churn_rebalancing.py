#!/usr/bin/env python
"""Scenario: operating a grouped edge network under cache churn.

Groups are formed once (probing is expensive), then the network lives:
PoPs are added, caches are drained for maintenance.  This example shows
the operational loop around :class:`repro.core.MembershipManager`:

1. form groups with SDSL and persist the group table to JSON — the
   artifact a GF-Coordinator would distribute;
2. replay a churn script (leaves and joins) against the loaded table,
   watching clustering accuracy degrade slowly;
3. trigger a full re-clustering when cumulative churn crosses the
   rebalance threshold, and compare accuracy before/after.

Run:  python examples/churn_rebalancing.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import KMeansConfig, SDSLScheme, build_network
from repro.analysis import average_group_interaction_cost
from repro.core.membership import MembershipManager
from repro.persist import load_grouping, save_grouping
from repro.probing import Prober
from repro.utils.tables import Table


def subnetwork_cost(network, grouping):
    """GICost over whichever caches the grouping currently covers."""
    return average_group_interaction_cost(network, grouping)


def main() -> None:
    network = build_network(num_caches=80, seed=77)
    scheme = SDSLScheme()
    grouping = scheme.form_groups(network, k=8, seed=77)

    # 1. Persist and reload the group table (provenance-free, as a
    # distributed coordinator would see it).
    with tempfile.TemporaryDirectory() as tmp:
        table_path = Path(tmp) / "groups.json"
        save_grouping(grouping, table_path)
        loaded = load_grouping(table_path)
    print(
        f"formed {loaded.num_groups} groups "
        f"(gicost {subnetwork_cost(network, loaded):.2f} ms), "
        f"table persisted and reloaded"
    )

    # 2. Churn: drain some caches, re-add them later (new PoP ids would
    # work the same way; we reuse ids so ground-truth RTTs exist).
    manager = MembershipManager(loaded)
    prober = Prober(network, seed=77)
    rng = np.random.default_rng(77)

    table = Table(["event", "churn", "groups", "gicost_ms", "rebalance?"])
    drained = []
    for step in range(12):
        if step % 3 == 2 and drained:
            node = drained.pop(0)
            manager.join(prober, node, seed=step)
            event = f"join cache {node}"
        else:
            candidates = [
                n for n in network.cache_nodes
                if n not in drained and len(
                    manager.members_of(manager.group_of(n))
                ) > 1
            ]
            node = int(rng.choice(candidates))
            manager.leave(node)
            drained.append(node)
            event = f"drain cache {node}"
        snapshot = manager.current_grouping()
        table.add_row(
            [
                event,
                f"{manager.churn_fraction():.2f}",
                snapshot.num_groups,
                subnetwork_cost(network, snapshot),
                "YES" if manager.needs_reclustering(0.2) else "",
            ]
        )
    print()
    print(table.render())

    # 3. Rebalance: re-add the drained caches, re-run the full scheme.
    for node in drained:
        manager.join(prober, node, seed=node)
    drifted = manager.current_grouping()
    # The periodic re-clustering can afford K-means restarts (it runs
    # rarely); pick the best of several.
    refresh_scheme = SDSLScheme(kmeans_config=KMeansConfig(restarts=8))
    refreshed = refresh_scheme.form_groups(network, k=8, seed=78)
    print(
        f"\nafter churn:  gicost {subnetwork_cost(network, drifted):.2f} ms"
        f"\nre-clustered: gicost {subnetwork_cost(network, refreshed):.2f} ms"
    )
    print(
        "\nIncremental joins keep the table serviceable between "
        "re-clusterings; the churn threshold tells the coordinator when "
        "the full (probe-expensive) pipeline is worth re-running."
    )


if __name__ == "__main__":
    main()
