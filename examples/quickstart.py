#!/usr/bin/env python
"""Quickstart: form cache groups with SL and SDSL on a simulated network.

Walks the paper's pipeline end to end on a 100-cache edge cache network:

1. generate a transit-stub topology and place the origin + caches;
2. run the SL scheme (greedy landmarks -> feature vectors -> K-means);
3. run the SDSL scheme (server-distance-biased seeding);
4. compare clustering accuracy (average group interaction cost) and
   simulated client latency.

Run:  python examples/quickstart.py
"""

from repro import (
    SDSLScheme,
    SLScheme,
    average_group_interaction_cost,
    build_network,
    generate_workload,
    improvement_percent,
    simulate,
)
from repro.utils.tables import Table


def main() -> None:
    # 1. The edge cache network: origin server + 100 caches on a
    # generated transit-stub (GT-ITM-style) topology.
    network = build_network(num_caches=100, seed=7)
    dists = network.server_distances()
    print(
        f"network: {network.num_caches} caches; RTT to origin "
        f"{dists.min():.1f}-{dists.max():.1f} ms"
    )

    # 2 & 3. Form K=10 cooperative groups with both schemes.
    k = 10
    sl_groups = SLScheme().form_groups(network, k, seed=7)
    sdsl_groups = SDSLScheme().form_groups(network, k, seed=7)

    print(f"\nSL   group sizes: {sorted(sl_groups.sizes())}")
    print(f"SDSL group sizes: {sorted(sdsl_groups.sizes())}")
    print(
        "(SDSL makes compact groups near the origin and larger ones "
        "far away)"
    )

    # 4. Compare: clustering accuracy and simulated latency.
    workload = generate_workload(network.cache_nodes, seed=7)
    table = Table(["scheme", "gicost_ms", "avg_latency_ms", "group_hit_rate"])
    results = {}
    for name, grouping in (("SL", sl_groups), ("SDSL", sdsl_groups)):
        result = simulate(network, grouping, workload)
        results[name] = result.average_latency_ms()
        table.add_row(
            [
                name,
                average_group_interaction_cost(network, grouping),
                result.average_latency_ms(),
                result.group_hit_rate(),
            ]
        )
    print()
    print(table.render())
    print(
        f"\nSDSL latency improvement over SL: "
        f"{improvement_percent(results['SL'], results['SDSL']):.1f}%"
    )


if __name__ == "__main__":
    main()
