#!/usr/bin/env python
"""Scenario: what the *end user* sees — redirection plus cache groups.

The paper measures latency from the edge cache inwards.  This example
adds the last hop: a population of clients is placed on the topology,
a redirection policy maps each client to an edge cache, and the
client-perceived latency (access RTT + edge cache latency) is compared
across redirection policies and grouping schemes.

Run:  python examples/client_redirection.py
"""

from repro import (
    DocumentConfig,
    SDSLScheme,
    WorkloadConfig,
    build_network,
    simulate,
)
from repro.clients import (
    assign_clients,
    client_perceived_latency,
    generate_client_workload,
    place_clients,
)
from repro.clients.redirection import mean_access_rtt
from repro.core.groups import singleton_groups
from repro.utils.tables import Table


def main() -> None:
    network = build_network(num_caches=60, seed=5)
    population = place_clients(network, num_clients=200, seed=5)
    print(
        f"{population.num_clients} clients over {network.num_caches} "
        f"caches"
    )

    grouped = SDSLScheme().form_groups(network, k=6, seed=5)
    solo = singleton_groups(network.cache_nodes)

    table = Table(
        ["redirection", "grouping", "access_rtt_ms", "perceived_ms"]
    )
    # A cacheable catalog: 300 documents, strong shared interest.
    workload_config = WorkloadConfig(
        documents=DocumentConfig(num_documents=300),
        shared_interest=0.85,
    )
    for policy in ("nearest", "nearest-k", "random"):
        assignment = assign_clients(population, policy=policy, k=3, seed=5)
        workload = generate_client_workload(
            population,
            assignment,
            workload_config,
            requests_per_client=40,
            seed=5,
        )
        access = mean_access_rtt(population, assignment)
        for label, grouping in (("SDSL k=6", grouped), ("none", solo)):
            result = simulate(network, grouping, workload.workload)
            table.add_row(
                [
                    policy,
                    label,
                    access,
                    client_perceived_latency(result, workload),
                ]
            )
    print()
    print(table.render())
    print(
        "\nTwo independent levers: redirection fixes the access RTT, "
        "cache grouping fixes the miss path.  A CDN needs both — random "
        "redirection squanders what SDSL wins, and perfect redirection "
        "cannot rescue ungrouped caches for far-from-origin users."
    )


if __name__ == "__main__":
    main()
