#!/usr/bin/env python
"""Scenario: tuning SDSL's theta for a deployed edge network.

SDSL's only knob is theta, the server-distance sensitivity of the
initial-center distribution (``Pr ∝ 1/dist^theta``).  This example
sweeps theta on one network and shows the mechanism the paper
describes: larger theta concentrates groups near the origin (compact
groups there, big spread-out groups far away), improving the far
caches' hit rates where origin fetches are most expensive.

It prints, per theta:

* average latency (all caches / nearest 10% / farthest 10%),
* the correlation between a group's size and its mean server distance
  (positive correlation = the SDSL size gradient is present).

Run:  python examples/sdsl_tuning.py
"""

import numpy as np

from repro import SDSLConfig, SDSLScheme, build_network, generate_workload, simulate
from repro.utils.tables import Table


def size_distance_correlation(network, grouping) -> float:
    """Pearson correlation between group size and mean server distance."""
    sizes, dists = [], []
    for group in grouping.groups:
        sizes.append(group.size)
        dists.append(
            np.mean([network.server_distance(m) for m in group.members])
        )
    if len(set(sizes)) < 2 or len(set(dists)) < 2:
        return float("nan")
    return float(np.corrcoef(sizes, dists)[0, 1])


def main() -> None:
    network = build_network(num_caches=120, seed=99)
    workload = generate_workload(network.cache_nodes, seed=99)
    subset = network.num_caches // 10
    k = 12
    repetitions = 3

    table = Table(
        ["theta", "latency_ms", "near_ms", "far_ms", "size_dist_corr"]
    )
    for theta in (0.0, 0.5, 1.0, 2.0, 4.0):
        lat, near, far, corr = [], [], [], []
        for seed in range(repetitions):
            scheme = SDSLScheme(sdsl_config=SDSLConfig(theta=theta))
            grouping = scheme.form_groups(network, k, seed=seed)
            result = simulate(network, grouping, workload)
            lat.append(result.average_latency_ms())
            near.append(result.latency_nearest_origin(subset))
            far.append(result.latency_farthest_origin(subset))
            c = size_distance_correlation(network, grouping)
            if not np.isnan(c):
                corr.append(c)
        table.add_row(
            [
                theta,
                float(np.mean(lat)),
                float(np.mean(near)),
                float(np.mean(far)),
                float(np.mean(corr)) if corr else float("nan"),
            ]
        )
    print(f"SDSL theta sweep (N=120, K={k}, mean of {repetitions} runs):\n")
    print(table.render())
    print(
        "\ntheta=0 is exactly the SL scheme (uniform seeding).  As theta "
        "grows, the size/server-distance correlation turns positive — "
        "compact groups near the origin, larger ones far away — and the "
        "far caches' latency drops.  Past the sweet spot the origin-side "
        "groups get too fragmented and the gain erodes."
    )


if __name__ == "__main__":
    main()
