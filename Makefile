# Convenience targets for the reproduction workflow.

PYTHON ?= python

.PHONY: install lint test sanitize-smoke chaos-smoke check bench bench-tables examples suite clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

# repro lint always runs (stdlib-only); ruff/mypy are dev-extra tools
# (pip install -e .[dev]) and are skipped gracefully when absent so
# `make lint` works in minimal containers.  The effects/units dumps
# mirror what CI uploads as artifacts (lint-effects.json,
# lint-units.json).
lint:
	PYTHONPATH=src $(PYTHON) -m repro.cli lint
	PYTHONPATH=src $(PYTHON) -m repro.cli lint effects --format json \
		> lint-effects.json
	@echo "wrote lint-effects.json (whole-program effect table)"
	PYTHONPATH=src $(PYTHON) -m repro.cli lint units --format json \
		> lint-units.json
	@echo "wrote lint-units.json (per-function unit/time-domain table)"
	@if command -v ruff >/dev/null 2>&1; then ruff check; \
		else echo "ruff not installed; skipping (pip install -e .[dev])"; fi
	@if command -v mypy >/dev/null 2>&1; then mypy; \
		else echo "mypy not installed; skipping (pip install -e .[dev])"; fi

test:
	$(PYTHON) -m pytest tests/

# Runtime half of the determinism guarantees: capture the draw ledger
# of one real figure serially and under --jobs 2, then require zero
# divergence (docs/static-analysis.md walks through a failure).
sanitize-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.cli sanitize run --figure fig6 \
		--repetitions 1 --out .sanitize_serial.json
	PYTHONPATH=src $(PYTHON) -m repro.cli sanitize run --figure fig6 \
		--repetitions 1 --jobs 2 --out .sanitize_jobs2.json
	PYTHONPATH=src $(PYTHON) -m repro.cli sanitize diff \
		.sanitize_serial.json .sanitize_jobs2.json
	rm -f .sanitize_serial.json .sanitize_jobs2.json

# Fault-tolerance half: the same figure under deterministic worker
# kills must exit 0 and archive byte-identical results to a clean run
# (docs/robustness.md#runtime-fault-tolerance).
chaos-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.cli experiment fig6 \
		--repetitions 1 --seed 7 --out .chaos_clean.json
	PYTHONPATH=src $(PYTHON) -m repro.cli chaos run --figure fig6 \
		--repetitions 1 --seed 7 --kill-rate 0.2 --jobs 2 \
		--out .chaos_chaotic.json
	cmp .chaos_clean.json .chaos_chaotic.json
	rm -f .chaos_clean.json .chaos_chaotic.json

check: lint test sanitize-smoke chaos-smoke

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-tables:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	@for f in examples/*.py; do echo "== $$f =="; $(PYTHON) $$f; echo; done

suite:
	$(PYTHON) -m repro.cli experiment all --out-dir results/

# Deliberately leaves results/ alone: it holds committed reference
# outputs of the figure suite, not build artifacts.
clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .benchmarks
	rm -f .sanitize_serial.json .sanitize_jobs2.json lint-effects.json \
		lint-units.json
	find . -name __pycache__ -type d -exec rm -rf {} +
