# Convenience targets for the reproduction workflow.

PYTHON ?= python

.PHONY: install lint test check bench bench-tables examples suite clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

# repro lint always runs (stdlib-only); ruff/mypy are dev-extra tools
# (pip install -e .[dev]) and are skipped gracefully when absent so
# `make lint` works in minimal containers.
lint:
	PYTHONPATH=src $(PYTHON) -m repro.cli lint
	@if command -v ruff >/dev/null 2>&1; then ruff check; \
		else echo "ruff not installed; skipping (pip install -e .[dev])"; fi
	@if command -v mypy >/dev/null 2>&1; then mypy; \
		else echo "mypy not installed; skipping (pip install -e .[dev])"; fi

test:
	$(PYTHON) -m pytest tests/

check: lint test

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-tables:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	@for f in examples/*.py; do echo "== $$f =="; $(PYTHON) $$f; echo; done

suite:
	$(PYTHON) -m repro.cli experiment all --out-dir results/

# Deliberately leaves results/ alone: it holds committed reference
# outputs of the figure suite, not build artifacts.
clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
