# Convenience targets for the reproduction workflow.

PYTHON ?= python

.PHONY: install test bench bench-tables examples suite clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-tables:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	@for f in examples/*.py; do echo "== $$f =="; $(PYTHON) $$f; echo; done

suite:
	$(PYTHON) -m repro.cli experiment all --out-dir results/

# Deliberately leaves results/ alone: it holds committed reference
# outputs of the figure suite, not build artifacts.
clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
