"""Simulated RTT probing.

Group-formation schemes never read the ground-truth distance matrix;
they issue *probes* through a :class:`Prober`, which adds measurement
noise and charges a probe budget — exactly the information a real
GF-Coordinator could obtain by having caches ping each other.
"""

from repro.probing.noise import GaussianRelativeNoise, NoNoise, NoiseModel
from repro.probing.prober import Prober, ProbeStats

__all__ = [
    "NoiseModel",
    "GaussianRelativeNoise",
    "NoNoise",
    "Prober",
    "ProbeStats",
]
