"""Measurement-noise models for simulated RTT probes.

A real ``ping`` observes propagation delay plus queueing jitter.  We
model a single probe of a path with true RTT ``d`` as
``max(d * (1 + e), floor)`` where ``e`` is drawn from the noise model.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import ProbingError


class NoiseModel(abc.ABC):
    """Strategy interface: perturb a vector of true RTTs."""

    @abc.abstractmethod
    def perturb(
        self, true_rtts_ms: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Return one noisy observation per entry of ``true_rtts_ms``."""


class NoNoise(NoiseModel):
    """Probes observe the exact RTT (useful for tests and calibration)."""

    def perturb(
        self, true_rtts_ms: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        return np.asarray(true_rtts_ms, dtype=float).copy()


class GaussianRelativeNoise(NoiseModel):
    """Zero-mean Gaussian *relative* jitter with a positivity floor.

    ``observed = max(true * (1 + N(0, std)), floor)``.  Relative (rather
    than absolute) noise matches the empirical behaviour that long paths
    jitter more in absolute terms.
    """

    def __init__(self, std: float = 0.05, floor_ms: float = 0.05) -> None:
        if std < 0:
            raise ProbingError(f"noise std must be >= 0, got {std}")
        if floor_ms <= 0:
            raise ProbingError(f"floor_ms must be > 0, got {floor_ms}")
        self._std = std
        self._floor = floor_ms

    @property
    def std(self) -> float:
        return self._std

    def perturb(
        self, true_rtts_ms: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        true_rtts_ms = np.asarray(true_rtts_ms, dtype=float)
        if self._std == 0:
            return true_rtts_ms.copy()
        factors = 1.0 + rng.normal(0.0, self._std, size=true_rtts_ms.shape)
        observed = true_rtts_ms * factors
        # Zero-RTT entries (self-probes) stay exactly zero.
        observed = np.where(
            true_rtts_ms == 0.0, 0.0, np.maximum(observed, self._floor)
        )
        return observed
