"""The :class:`Prober` — measured (noisy, averaged) RTTs plus accounting.

The SL scheme's measurement economy matters: its whole point is to avoid
the full N×N probe matrix.  :class:`ProbeStats` counts every probe
issued, so tests and benchmarks can assert that the SL pipeline stays at
``O(PLSet² + N·L)`` probes rather than ``O(N²)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.config import ProbeConfig
from repro.errors import ProbingError
from repro.probing.noise import GaussianRelativeNoise, NoiseModel
from repro.topology.network import EdgeCacheNetwork
from repro.types import Ms, NodeId
from repro.utils.rng import SeedLike, spawn_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.model import FaultModel


@dataclass
class ProbeStats:
    """Mutable probe accounting attached to a :class:`Prober`."""

    #: total individual probe messages sent
    probes_sent: int = 0
    #: distinct (source, target) pairs measured at least once
    pairs_measured: int = 0
    #: probe messages that were lost (fault injection only)
    probes_lost: int = 0
    #: retry probes sent after a loss (already included in probes_sent)
    retries: int = 0
    #: probe slots that exhausted every retry without an answer
    timeouts: int = 0
    #: simulated wait charged to timeouts and retry backoff (ms)
    timeout_wait_ms: Ms = 0.0
    _seen_pairs: set = field(default_factory=set, repr=False)

    def record(self, source: NodeId, target: NodeId, probe_count: int) -> None:
        self.probes_sent += probe_count
        pair = (min(source, target), max(source, target))
        if pair not in self._seen_pairs:
            self._seen_pairs.add(pair)
            self.pairs_measured += 1

    def reset(self) -> None:
        self.probes_sent = 0
        self.pairs_measured = 0
        self.probes_lost = 0
        self.retries = 0
        self.timeouts = 0
        self.timeout_wait_ms = 0.0
        self._seen_pairs.clear()


class Prober:
    """Issues simulated RTT probes against an :class:`EdgeCacheNetwork`.

    Each call to :meth:`measure` simulates ``probe_count`` pings of the
    target and returns their mean, as the paper's caches do ("probing
    them multiple times and recording the average RTT values").
    """

    def __init__(
        self,
        network: EdgeCacheNetwork,
        config: Optional[ProbeConfig] = None,
        noise: Optional[NoiseModel] = None,
        seed: SeedLike = None,
        faults: Optional["FaultModel"] = None,
    ) -> None:
        self._network = network
        self._config = config or ProbeConfig()
        self._config.validate()
        if noise is None:
            noise = GaussianRelativeNoise(
                std=self._config.jitter_std, floor_ms=self._config.min_rtt_ms
            )
        self._noise = noise
        self._rng = spawn_rng(seed)
        self._faults = faults
        self.stats = ProbeStats()

    @property
    def faults(self) -> Optional["FaultModel"]:
        """The attached fault model, if any."""
        return self._faults

    @faults.setter
    def faults(self, model: Optional["FaultModel"]) -> None:
        self._faults = model

    @property
    def network(self) -> EdgeCacheNetwork:
        return self._network

    @property
    def config(self) -> ProbeConfig:
        return self._config

    @property
    def rng(self) -> np.random.Generator:
        """The prober's random stream (shared with co-located estimators)."""
        return self._rng

    def measure(self, source: NodeId, target: NodeId) -> float:
        """Measured RTT between two nodes: mean of ``probe_count`` probes.

        With a fault model attached the per-probe loss/retry overlay
        applies (see :meth:`_faulted_mean`); every probe to the pair
        lost means the result is NaN.
        """
        self._check_node(source)
        self._check_node(target)
        if source == target:
            return 0.0
        true_rtt = self._network.rtt(source, target)
        observations = self._noise.perturb(
            np.full(self._config.probe_count, true_rtt), self._rng
        )
        self.stats.record(source, target, self._config.probe_count)
        if self._faults is None:
            return float(observations.mean())
        return self._faulted_mean(source, target, true_rtt, observations)

    def measure_many(
        self, source: NodeId, targets: Sequence[NodeId]
    ) -> np.ndarray:
        """Measured RTTs from ``source`` to each of ``targets``.

        Fully vectorised: one ``(pairs, probe_count)`` noise draw covers
        every non-self target.  The numpy ``Generator`` fills arrays
        from the same bit stream an equivalent sequence of per-target
        draws would consume, so results are bit-identical to probing
        each target in its own :meth:`measure` call (regression-tested).
        """
        self._check_node(source)
        targets = list(targets)
        for target in targets:
            self._check_node(target)
        if not targets:
            return np.empty(0, dtype=float)
        idx = np.asarray(targets, dtype=int)
        true_rtts = self._network.distances.row(source)[idx]
        probed = idx != source
        raw = self._observe_raw(true_rtts, probed)
        out = raw.mean(axis=1)
        out[~probed] = 0.0
        probe_count = self._config.probe_count
        for target in targets:
            if target != source:
                self.stats.record(source, target, probe_count)
        if self._faults is not None:
            for pos, target in enumerate(targets):
                if target != source:
                    out[pos] = self._faulted_mean(
                        source, target, float(true_rtts[pos]), raw[pos]
                    )
        return out

    def measure_matrix(self, nodes: Sequence[NodeId]) -> np.ndarray:
        """Full measured RTT matrix among ``nodes`` (symmetric).

        Each unordered pair is probed once and mirrored, matching how
        potential landmarks probe each other in SL step 1.  Vectorised
        over the upper triangle in the same row-major pair order the
        per-pair loop used, so the noise stream (and hence the measured
        matrix) is unchanged.
        """
        nodes = list(nodes)
        for node in nodes:
            self._check_node(node)
        n = len(nodes)
        matrix = np.zeros((n, n), dtype=float)
        if n < 2:
            return matrix
        iu, ju = np.triu_indices(n, k=1)
        node_arr = np.asarray(nodes, dtype=int)
        sources, dests = node_arr[iu], node_arr[ju]
        rtt = self._network.distances.as_array()
        true_rtts = rtt[sources, dests]
        probed = sources != dests
        raw = self._observe_raw(true_rtts, probed)
        values = raw.mean(axis=1)
        values[~probed] = 0.0
        probe_count = self._config.probe_count
        for source, dest in zip(sources, dests):
            if source != dest:
                self.stats.record(int(source), int(dest), probe_count)
        if self._faults is not None:
            for pos in np.flatnonzero(probed):
                values[pos] = self._faulted_mean(
                    int(sources[pos]),
                    int(dests[pos]),
                    float(true_rtts[pos]),
                    raw[pos],
                )
        matrix[iu, ju] = values
        matrix[ju, iu] = values
        return matrix

    def _observe_raw(
        self, true_rtts: np.ndarray, probed: np.ndarray
    ) -> np.ndarray:
        """``(len, probe_count)`` noisy observations; unprobed rows zero.

        Entries where ``probed`` is False (self-probes) consume no
        randomness, exactly as :meth:`measure` returns 0.0 without
        drawing noise for ``source == target``.  The single
        ``(count, probe_count)`` draw fills the main stream in the same
        order per-target :meth:`measure` calls would, so the zero-fault
        pipeline stays bit-identical.
        """
        out = np.zeros((len(true_rtts), self._config.probe_count), dtype=float)
        count = int(probed.sum())
        if count:
            probe_count = self._config.probe_count
            stacked = np.broadcast_to(
                true_rtts[probed][:, None], (count, probe_count)
            )
            out[probed] = self._noise.perturb(stacked, self._rng)
        return out

    def _faulted_mean(
        self,
        source: NodeId,
        target: NodeId,
        true_rtt: float,
        base_observations: np.ndarray,
    ) -> float:
        """Apply the fault overlay to one pair's base observations.

        The base noise block was already drawn from the prober's main
        stream, so this method consumes *only* the pair's content-keyed
        loss stream: a pair with zero loss and no blackhole/slow link
        returns the plain mean bit-identically, keeping fault-free runs
        indistinguishable from runs without a fault model.

        Each of the ``probe_count`` slots is one probe: a lost probe
        costs ``probe_timeout_ms`` of simulated wait and is retried up
        to ``max_retries`` times with capped exponential backoff; every
        retry is charged to the probe budget (``probes_sent``).  A slot
        that exhausts its retries counts as a timeout; if all slots time
        out the measurement is NaN (landmark unreachable).

        Slots are timed end-to-end: a slot that succeeded only after
        retries reports its elapsed time *including* the timeouts it
        waited out, the way an application-level prober that cannot
        tell loss from delay would.  Probe loss therefore inflates
        measured RTTs (and so distorts landmark selection and feature
        vectors) rather than merely thinning the sample — which is
        exactly the degradation the resilience sweep measures.
        """
        model = self._faults
        assert model is not None
        cfg = model.config
        factor = model.link_factor(source, target)
        stats = self.stats
        probe_count = len(base_observations)
        if model.pair_blocked(source, target):
            # Deterministically dead: no draws, every attempt lost.
            retries = cfg.max_retries
            stats.probes_sent += probe_count * retries
            stats.retries += probe_count * retries
            stats.probes_lost += probe_count * (1 + retries)
            stats.timeouts += probe_count
            stats.timeout_wait_ms += (
                probe_count * (1 + retries) * cfg.probe_timeout_ms
            )
            stats.timeout_wait_ms += probe_count * sum(
                model.backoff_ms(attempt) for attempt in range(1, retries + 1)
            )
            return float("nan")
        loss = cfg.probe_loss_rate
        if loss <= 0.0:
            return float(base_observations.mean()) * factor
        pair_rng = model.loss_stream(source, target)
        values = []
        for slot in range(probe_count):
            observation: Optional[float] = None
            if pair_rng.random() >= loss:
                observation = float(base_observations[slot])
            else:
                stats.probes_lost += 1
                stats.timeout_wait_ms += cfg.probe_timeout_ms
                for attempt in range(1, cfg.max_retries + 1):
                    stats.retries += 1
                    stats.probes_sent += 1
                    stats.timeout_wait_ms += model.backoff_ms(attempt)
                    if pair_rng.random() >= loss:
                        # End-to-end slot timing: `attempt` earlier
                        # sends timed out before this one answered.
                        observation = float(
                            attempt * cfg.probe_timeout_ms
                            + self._noise.perturb(
                                np.full(1, true_rtt), pair_rng
                            )[0]
                        )
                        break
                    stats.probes_lost += 1
                    stats.timeout_wait_ms += cfg.probe_timeout_ms
                else:
                    stats.timeouts += 1
            if observation is not None:
                values.append(observation)
        if not values:
            return float("nan")
        return float(np.mean(values)) * factor

    def _check_node(self, node: NodeId) -> None:
        if not 0 <= node < self._network.distances.size:
            raise ProbingError(
                f"cannot probe unknown node {node} "
                f"(network has {self._network.distances.size} nodes)"
            )
