"""The :class:`Prober` — measured (noisy, averaged) RTTs plus accounting.

The SL scheme's measurement economy matters: its whole point is to avoid
the full N×N probe matrix.  :class:`ProbeStats` counts every probe
issued, so tests and benchmarks can assert that the SL pipeline stays at
``O(PLSet² + N·L)`` probes rather than ``O(N²)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.config import ProbeConfig
from repro.errors import ProbingError
from repro.probing.noise import GaussianRelativeNoise, NoiseModel
from repro.topology.network import EdgeCacheNetwork
from repro.types import NodeId
from repro.utils.rng import SeedLike, spawn_rng


@dataclass
class ProbeStats:
    """Mutable probe accounting attached to a :class:`Prober`."""

    #: total individual probe messages sent
    probes_sent: int = 0
    #: distinct (source, target) pairs measured at least once
    pairs_measured: int = 0
    _seen_pairs: set = field(default_factory=set, repr=False)

    def record(self, source: NodeId, target: NodeId, probe_count: int) -> None:
        self.probes_sent += probe_count
        pair = (min(source, target), max(source, target))
        if pair not in self._seen_pairs:
            self._seen_pairs.add(pair)
            self.pairs_measured += 1

    def reset(self) -> None:
        self.probes_sent = 0
        self.pairs_measured = 0
        self._seen_pairs.clear()


class Prober:
    """Issues simulated RTT probes against an :class:`EdgeCacheNetwork`.

    Each call to :meth:`measure` simulates ``probe_count`` pings of the
    target and returns their mean, as the paper's caches do ("probing
    them multiple times and recording the average RTT values").
    """

    def __init__(
        self,
        network: EdgeCacheNetwork,
        config: Optional[ProbeConfig] = None,
        noise: Optional[NoiseModel] = None,
        seed: SeedLike = None,
    ) -> None:
        self._network = network
        self._config = config or ProbeConfig()
        self._config.validate()
        if noise is None:
            noise = GaussianRelativeNoise(
                std=self._config.jitter_std, floor_ms=self._config.min_rtt_ms
            )
        self._noise = noise
        self._rng = spawn_rng(seed)
        self.stats = ProbeStats()

    @property
    def network(self) -> EdgeCacheNetwork:
        return self._network

    @property
    def config(self) -> ProbeConfig:
        return self._config

    @property
    def rng(self) -> np.random.Generator:
        """The prober's random stream (shared with co-located estimators)."""
        return self._rng

    def measure(self, source: NodeId, target: NodeId) -> float:
        """Measured RTT between two nodes: mean of ``probe_count`` probes."""
        self._check_node(source)
        self._check_node(target)
        if source == target:
            return 0.0
        true_rtt = self._network.rtt(source, target)
        observations = self._noise.perturb(
            np.full(self._config.probe_count, true_rtt), self._rng
        )
        self.stats.record(source, target, self._config.probe_count)
        return float(observations.mean())

    def measure_many(
        self, source: NodeId, targets: Sequence[NodeId]
    ) -> np.ndarray:
        """Measured RTTs from ``source`` to each of ``targets``.

        Vectorised over targets; one entry per target, in order.
        """
        self._check_node(source)
        out = np.empty(len(targets), dtype=float)
        for i, target in enumerate(targets):
            out[i] = self.measure(source, target)
        return out

    def measure_matrix(self, nodes: Sequence[NodeId]) -> np.ndarray:
        """Full measured RTT matrix among ``nodes`` (symmetric).

        Each unordered pair is probed once and mirrored, matching how
        potential landmarks probe each other in SL step 1.
        """
        n = len(nodes)
        matrix = np.zeros((n, n), dtype=float)
        for i in range(n):
            for j in range(i + 1, n):
                rtt = self.measure(nodes[i], nodes[j])
                matrix[i, j] = rtt
                matrix[j, i] = rtt
        return matrix

    def _check_node(self, node: NodeId) -> None:
        if not 0 <= node < self._network.distances.size:
            raise ProbingError(
                f"cannot probe unknown node {node} "
                f"(network has {self._network.distances.size} nodes)"
            )
