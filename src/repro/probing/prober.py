"""The :class:`Prober` — measured (noisy, averaged) RTTs plus accounting.

The SL scheme's measurement economy matters: its whole point is to avoid
the full N×N probe matrix.  :class:`ProbeStats` counts every probe
issued, so tests and benchmarks can assert that the SL pipeline stays at
``O(PLSet² + N·L)`` probes rather than ``O(N²)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.config import ProbeConfig
from repro.errors import ProbingError
from repro.probing.noise import GaussianRelativeNoise, NoiseModel
from repro.topology.network import EdgeCacheNetwork
from repro.types import NodeId
from repro.utils.rng import SeedLike, spawn_rng


@dataclass
class ProbeStats:
    """Mutable probe accounting attached to a :class:`Prober`."""

    #: total individual probe messages sent
    probes_sent: int = 0
    #: distinct (source, target) pairs measured at least once
    pairs_measured: int = 0
    _seen_pairs: set = field(default_factory=set, repr=False)

    def record(self, source: NodeId, target: NodeId, probe_count: int) -> None:
        self.probes_sent += probe_count
        pair = (min(source, target), max(source, target))
        if pair not in self._seen_pairs:
            self._seen_pairs.add(pair)
            self.pairs_measured += 1

    def reset(self) -> None:
        self.probes_sent = 0
        self.pairs_measured = 0
        self._seen_pairs.clear()


class Prober:
    """Issues simulated RTT probes against an :class:`EdgeCacheNetwork`.

    Each call to :meth:`measure` simulates ``probe_count`` pings of the
    target and returns their mean, as the paper's caches do ("probing
    them multiple times and recording the average RTT values").
    """

    def __init__(
        self,
        network: EdgeCacheNetwork,
        config: Optional[ProbeConfig] = None,
        noise: Optional[NoiseModel] = None,
        seed: SeedLike = None,
    ) -> None:
        self._network = network
        self._config = config or ProbeConfig()
        self._config.validate()
        if noise is None:
            noise = GaussianRelativeNoise(
                std=self._config.jitter_std, floor_ms=self._config.min_rtt_ms
            )
        self._noise = noise
        self._rng = spawn_rng(seed)
        self.stats = ProbeStats()

    @property
    def network(self) -> EdgeCacheNetwork:
        return self._network

    @property
    def config(self) -> ProbeConfig:
        return self._config

    @property
    def rng(self) -> np.random.Generator:
        """The prober's random stream (shared with co-located estimators)."""
        return self._rng

    def measure(self, source: NodeId, target: NodeId) -> float:
        """Measured RTT between two nodes: mean of ``probe_count`` probes."""
        self._check_node(source)
        self._check_node(target)
        if source == target:
            return 0.0
        true_rtt = self._network.rtt(source, target)
        observations = self._noise.perturb(
            np.full(self._config.probe_count, true_rtt), self._rng
        )
        self.stats.record(source, target, self._config.probe_count)
        return float(observations.mean())

    def measure_many(
        self, source: NodeId, targets: Sequence[NodeId]
    ) -> np.ndarray:
        """Measured RTTs from ``source`` to each of ``targets``.

        Fully vectorised: one ``(pairs, probe_count)`` noise draw covers
        every non-self target.  The numpy ``Generator`` fills arrays
        from the same bit stream an equivalent sequence of per-target
        draws would consume, so results are bit-identical to probing
        each target in its own :meth:`measure` call (regression-tested).
        """
        self._check_node(source)
        targets = list(targets)
        for target in targets:
            self._check_node(target)
        if not targets:
            return np.empty(0, dtype=float)
        idx = np.asarray(targets, dtype=int)
        true_rtts = self._network.distances.row(source)[idx]
        out = self._observe(true_rtts, idx != source)
        probe_count = self._config.probe_count
        for target in targets:
            if target != source:
                self.stats.record(source, target, probe_count)
        return out

    def measure_matrix(self, nodes: Sequence[NodeId]) -> np.ndarray:
        """Full measured RTT matrix among ``nodes`` (symmetric).

        Each unordered pair is probed once and mirrored, matching how
        potential landmarks probe each other in SL step 1.  Vectorised
        over the upper triangle in the same row-major pair order the
        per-pair loop used, so the noise stream (and hence the measured
        matrix) is unchanged.
        """
        nodes = list(nodes)
        for node in nodes:
            self._check_node(node)
        n = len(nodes)
        matrix = np.zeros((n, n), dtype=float)
        if n < 2:
            return matrix
        iu, ju = np.triu_indices(n, k=1)
        node_arr = np.asarray(nodes, dtype=int)
        sources, dests = node_arr[iu], node_arr[ju]
        rtt = self._network.distances.as_array()
        true_rtts = rtt[sources, dests]
        values = self._observe(true_rtts, sources != dests)
        probe_count = self._config.probe_count
        for source, dest in zip(sources, dests):
            if source != dest:
                self.stats.record(int(source), int(dest), probe_count)
        matrix[iu, ju] = values
        matrix[ju, iu] = values
        return matrix

    def _observe(
        self, true_rtts: np.ndarray, probed: np.ndarray
    ) -> np.ndarray:
        """Mean of ``probe_count`` noisy observations per probed entry.

        Entries where ``probed`` is False (self-probes) are fixed at 0.0
        and consume no randomness, exactly as :meth:`measure` returns
        0.0 without drawing noise for ``source == target``.
        """
        out = np.zeros(len(true_rtts), dtype=float)
        count = int(probed.sum())
        if count:
            probe_count = self._config.probe_count
            stacked = np.broadcast_to(
                true_rtts[probed][:, None], (count, probe_count)
            )
            observations = self._noise.perturb(stacked, self._rng)
            out[probed] = observations.mean(axis=1)
        return out

    def _check_node(self, node: NodeId) -> None:
        if not 0 <= node < self._network.distances.size:
            raise ProbingError(
                f"cannot probe unknown node {node} "
                f"(network has {self._network.distances.size} nodes)"
            )
