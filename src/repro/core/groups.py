"""Cache groups and the :class:`GroupingResult` of a formation scheme.

The paper's Termination Phase "forms a cooperative cache group from each
cluster and assigns a group ID"; :class:`CacheGroup` is that object, and
:class:`GroupingResult` is the full provenance-carrying outcome of a
scheme run (which landmarks, which feature vectors, which clustering).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.clustering.assignments import Clustering
from repro.errors import SchemeError
from repro.landmarks.base import LandmarkSet
from repro.landmarks.feature_vectors import FeatureVectors
from repro.types import NodeId


@dataclass(frozen=True)
class CacheGroup:
    """One cooperative cache group: a group id and its member caches."""

    group_id: int
    members: Tuple[NodeId, ...]

    def __post_init__(self) -> None:
        if self.group_id < 0:
            raise SchemeError(f"group_id must be >= 0, got {self.group_id}")
        if not self.members:
            raise SchemeError(f"group {self.group_id} has no members")
        if len(set(self.members)) != len(self.members):
            raise SchemeError(
                f"group {self.group_id} has duplicate members: {self.members}"
            )

    @property
    def size(self) -> int:
        return len(self.members)

    def __contains__(self, node: NodeId) -> bool:
        return node in self.members

    def __iter__(self):
        return iter(self.members)

    def peers_of(self, node: NodeId) -> List[NodeId]:
        """The other members of this group."""
        if node not in self.members:
            raise SchemeError(f"node {node} is not in group {self.group_id}")
        return [m for m in self.members if m != node]


@dataclass(frozen=True)
class GroupingResult:
    """The outcome of one group-formation run.

    ``groups`` partition the network's cache nodes.  Provenance fields
    (``landmarks``, ``features``, ``clustering``) are optional because
    trivial groupings (e.g. "one group of everything" used by Figure 3's
    end point, or random partitions used as test baselines) have none.
    """

    scheme: str
    groups: Tuple[CacheGroup, ...]
    landmarks: Optional[LandmarkSet] = None
    features: Optional[FeatureVectors] = field(default=None, repr=False)
    clustering: Optional[Clustering] = field(default=None, repr=False)
    #: GF-Coordinator phase name -> seconds (set by coordinator runs;
    #: None for trivial/loaded groupings)
    phase_timings: Optional[Dict[str, float]] = field(
        default=None, repr=False
    )
    #: True when any degraded-mode path ran during formation (probe
    #: losses imputed, landmarks replaced, ...)
    degraded: bool = False
    #: fault-injection provenance (probes lost, retries, timeouts,
    #: landmarks crashed/replaced); None when faults were off
    fault_report: Optional[Dict[str, float]] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.groups:
            raise SchemeError("a grouping needs at least one group")
        seen: Dict[NodeId, int] = {}
        for group in self.groups:
            for member in group.members:
                if member in seen:
                    raise SchemeError(
                        f"cache {member} is in groups {seen[member]} "
                        f"and {group.group_id}"
                    )
                seen[member] = group.group_id

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    @property
    def all_members(self) -> List[NodeId]:
        """All grouped caches, in group order."""
        return [m for g in self.groups for m in g.members]

    def group_of(self, node: NodeId) -> CacheGroup:
        """The group containing ``node``."""
        for group in self.groups:
            if node in group:
                return group
        raise SchemeError(f"cache {node} is not in any group")

    def membership(self) -> Dict[NodeId, int]:
        """Map cache node -> group id."""
        return {m: g.group_id for g in self.groups for m in g.members}

    def sizes(self) -> List[int]:
        """Group sizes, in group-id order."""
        return [g.size for g in self.groups]

    def average_group_size(self) -> float:
        return len(self.all_members) / self.num_groups


def groups_from_labels(
    nodes: Sequence[NodeId],
    labels: Sequence[int],
) -> Tuple[CacheGroup, ...]:
    """Build dense-id cache groups from clustering labels.

    Empty clusters are dropped and group ids re-numbered densely, so
    group ids are stable and gap-free regardless of K-means outcomes.
    """
    if len(nodes) != len(labels):
        raise SchemeError(
            f"{len(nodes)} nodes but {len(labels)} labels"
        )
    by_label: Dict[int, List[NodeId]] = {}
    for node, label in zip(nodes, labels):
        by_label.setdefault(int(label), []).append(node)
    groups = []
    for new_id, label in enumerate(sorted(by_label)):
        groups.append(
            CacheGroup(group_id=new_id, members=tuple(by_label[label]))
        )
    return tuple(groups)


def single_group(nodes: Sequence[NodeId]) -> GroupingResult:
    """All caches in one cooperative group (Figure 3's right endpoint)."""
    return GroupingResult(
        scheme="single-group",
        groups=(CacheGroup(group_id=0, members=tuple(nodes)),),
    )


def singleton_groups(nodes: Sequence[NodeId]) -> GroupingResult:
    """Every cache alone (no cooperation; Figure 3's left endpoint)."""
    groups = tuple(
        CacheGroup(group_id=i, members=(node,))
        for i, node in enumerate(nodes)
    )
    return GroupingResult(scheme="no-cooperation", groups=groups)
