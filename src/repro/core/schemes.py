"""The five evaluated group-formation schemes behind one interface.

Every scheme is a :class:`GroupFormationScheme` whose ``form_groups``
builds a :class:`GFCoordinator`, runs the three steps, and returns a
:class:`repro.core.groups.GroupingResult`:

=====================  ==========================  =====================
scheme                 landmark selection           clustering seeding
=====================  ==========================  =====================
SLScheme               greedy max–min               uniform random
SDSLScheme             greedy max–min               Pr ∝ 1/dist(Os)^θ
RandomLandmarksScheme  uniform random               uniform random
MinDistLandmarksScheme greedy min–max (bunched)     uniform random
EuclideanGNPScheme     greedy max–min               uniform random, on
                                                    GNP coordinates
=====================  ==========================  =====================
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Type

from repro.clustering.init import ServerDistanceBiasedInit
from repro.config import (
    GNPConfig,
    KMeansConfig,
    LandmarkConfig,
    ProbeConfig,
    SDSLConfig,
)
from repro.coords.gnp import embed_gnp
from repro.core.coordinator import GFCoordinator
from repro.core.groups import GroupingResult
from repro.errors import SchemeError
from repro.faults.config import FaultConfig
from repro.landmarks.base import LandmarkSelector
from repro.landmarks.greedy import GreedyMaxMinSelector
from repro.landmarks.mindist import MinDistSelector
from repro.landmarks.random_sel import RandomSelector
from repro.topology.network import EdgeCacheNetwork
from repro.utils.rng import SeedLike


class GroupFormationScheme(abc.ABC):
    """Base class: configuration is held by the scheme, state is not.

    A scheme object can therefore be reused across networks and seeds
    (every ``form_groups`` call builds a fresh coordinator).
    """

    name: str = "abstract"

    def __init__(
        self,
        landmark_config: Optional[LandmarkConfig] = None,
        kmeans_config: Optional[KMeansConfig] = None,
        probe_config: Optional[ProbeConfig] = None,
    ) -> None:
        self._landmark_config = landmark_config or LandmarkConfig()
        self._kmeans_config = kmeans_config or KMeansConfig()
        self._probe_config = probe_config or ProbeConfig()

    @property
    def landmark_config(self) -> LandmarkConfig:
        return self._landmark_config

    def form_groups(
        self,
        network: EdgeCacheNetwork,
        k: int,
        seed: SeedLike = None,
        faults: Optional[FaultConfig] = None,
    ) -> GroupingResult:
        """Partition the network's caches into ``k`` cooperative groups.

        ``faults`` (optional) turns on measurement-side fault injection
        for this run: probe loss/retry, blackholes, landmark crashes.
        """
        if k < 1:
            raise SchemeError(f"k must be >= 1, got {k}")
        coordinator = GFCoordinator(
            network, probe_config=self._probe_config, seed=seed,
            faults=faults,
        )
        return self._run(coordinator, k)

    @abc.abstractmethod
    def _run(self, coordinator: GFCoordinator, k: int) -> GroupingResult:
        """Scheme-specific pipeline over a fresh coordinator."""

    def _selector(self) -> LandmarkSelector:
        return GreedyMaxMinSelector()


class SLScheme(GroupFormationScheme):
    """Selective Landmarks scheme (paper Section 3)."""

    name = "SL"

    def _run(self, coordinator: GFCoordinator, k: int) -> GroupingResult:
        landmarks = coordinator.choose_landmarks(
            self._selector(), self._landmark_config
        )
        features = coordinator.build_features(landmarks)
        return coordinator.cluster(
            features, k, scheme_name=self.name,
            kmeans_config=self._kmeans_config,
        )


class SDSLScheme(GroupFormationScheme):
    """Server Distance sensitive SL scheme (paper Section 4).

    Identical to SL except K-means initial centers are drawn with
    probability proportional to ``1 / Dist(Ec_j, Os)^θ``; server
    distances come from the origin's feature-vector column (no extra
    probing).
    """

    name = "SDSL"

    def __init__(
        self,
        sdsl_config: Optional[SDSLConfig] = None,
        landmark_config: Optional[LandmarkConfig] = None,
        kmeans_config: Optional[KMeansConfig] = None,
        probe_config: Optional[ProbeConfig] = None,
    ) -> None:
        super().__init__(landmark_config, kmeans_config, probe_config)
        self._sdsl_config = sdsl_config or SDSLConfig()
        self._sdsl_config.validate()

    @property
    def theta(self) -> float:
        return self._sdsl_config.theta

    def _run(self, coordinator: GFCoordinator, k: int) -> GroupingResult:
        landmarks = coordinator.choose_landmarks(
            self._selector(), self._landmark_config
        )
        features = coordinator.build_features(landmarks)
        server_distances = coordinator.measured_server_distances(features)
        theta = self._sdsl_config.effective_theta(
            k, coordinator.network.num_caches
        )
        initializer = ServerDistanceBiasedInit(server_distances, theta=theta)
        return coordinator.cluster(
            features, k, scheme_name=self.name,
            initializer=initializer,
            kmeans_config=self._kmeans_config,
        )


class RandomLandmarksScheme(SLScheme):
    """SL pipeline with uniformly random landmarks (Figure 4–6 baseline)."""

    name = "random-landmarks"

    def _selector(self) -> LandmarkSelector:
        return RandomSelector()


class MinDistLandmarksScheme(SLScheme):
    """SL pipeline with minimum-spread landmarks (Figure 4–6 baseline)."""

    name = "mindist-landmarks"

    def _selector(self) -> LandmarkSelector:
        return MinDistSelector()


class VivaldiScheme(GroupFormationScheme):
    """Decentralised coordinates + K-means (extension; not in the paper).

    Skips landmark selection entirely: every node runs Vivaldi spring
    relaxation against random peers, and K-means clusters the resulting
    coordinates.  Trades the GF-Coordinator's landmark bootstrap for
    continuous background probing — the natural comparison point the
    paper's related-work section gestures at (Dabek et al., SIGCOMM
    2004).  Grouping provenance carries a *virtual* landmark set (just
    the origin) since there are no probed landmarks.
    """

    name = "vivaldi"

    def __init__(
        self,
        dimensions: int = 5,
        rounds: int = 25,
        neighbors_per_round: int = 8,
        kmeans_config: Optional[KMeansConfig] = None,
        probe_config: Optional[ProbeConfig] = None,
    ) -> None:
        super().__init__(None, kmeans_config, probe_config)
        if dimensions < 1:
            raise SchemeError(f"dimensions must be >= 1, got {dimensions}")
        if rounds < 1 or neighbors_per_round < 1:
            raise SchemeError(
                "rounds and neighbors_per_round must be >= 1"
            )
        self._dimensions = dimensions
        self._rounds = rounds
        self._neighbors = neighbors_per_round

    def _run(self, coordinator: GFCoordinator, k: int) -> GroupingResult:
        from repro.coords.vivaldi import VivaldiCoordinates
        from repro.landmarks.base import LandmarkSet
        from repro.landmarks.feature_vectors import FeatureVectors
        import numpy as np

        network = coordinator.network
        prober = coordinator.prober
        system = VivaldiCoordinates(
            network.all_nodes,
            dimensions=self._dimensions,
            seed=prober.rng,
        )
        system.run(
            prober, rounds=self._rounds,
            neighbors_per_round=self._neighbors,
        )
        coords = system.coordinates
        cache_rows = [network.all_nodes.index(c) for c in network.cache_nodes]
        cache_coords = coords[cache_rows]

        # Synthesise minimal provenance: a one-landmark set (the origin)
        # whose "feature vector" column is the coordinate distance to
        # the origin — enough for downstream consumers expecting the
        # provenance shape, without pretending landmarks were probed.
        origin_row = network.all_nodes.index(network.origin)
        origin_distance = np.linalg.norm(
            cache_coords - coords[origin_row][None, :], axis=1
        )
        landmarks = LandmarkSet(nodes=(network.origin, network.cache_nodes[0]))
        features = FeatureVectors(
            nodes=tuple(network.cache_nodes),
            landmarks=landmarks,
            matrix=np.column_stack(
                [origin_distance, np.zeros_like(origin_distance)]
            ),
        )
        return coordinator.cluster(
            features, k, scheme_name=self.name,
            kmeans_config=self._kmeans_config,
            points=cache_coords,
        )


class EuclideanGNPScheme(GroupFormationScheme):
    """GNP Euclidean-space clustering (Figure 7 baseline).

    Same greedy landmarks and measured feature vectors as SL, but the
    nodes are first embedded into a D-dimensional Euclidean space (GNP
    least-squares fit) and K-means runs on the coordinates.
    """

    name = "euclidean-gnp"

    def __init__(
        self,
        gnp_config: Optional[GNPConfig] = None,
        landmark_config: Optional[LandmarkConfig] = None,
        kmeans_config: Optional[KMeansConfig] = None,
        probe_config: Optional[ProbeConfig] = None,
    ) -> None:
        super().__init__(landmark_config, kmeans_config, probe_config)
        self._gnp_config = gnp_config or GNPConfig()
        self._gnp_config.validate()

    def _run(self, coordinator: GFCoordinator, k: int) -> GroupingResult:
        landmarks = coordinator.choose_landmarks(
            self._selector(), self._landmark_config
        )
        features = coordinator.build_features(landmarks)
        embedding = embed_gnp(
            coordinator.prober,
            features,
            config=self._gnp_config,
            seed=coordinator.prober.rng,  # share the probe stream
        )
        return coordinator.cluster(
            features, k, scheme_name=self.name,
            kmeans_config=self._kmeans_config,
            points=embedding.node_coords,
        )


_SCHEMES: Dict[str, Type[GroupFormationScheme]] = {
    cls.name: cls
    for cls in (
        SLScheme,
        SDSLScheme,
        RandomLandmarksScheme,
        MinDistLandmarksScheme,
        EuclideanGNPScheme,
        VivaldiScheme,
    )
}


def scheme_by_name(name: str, **kwargs) -> GroupFormationScheme:
    """Instantiate a scheme by its canonical name.

    >>> scheme_by_name("SL").name
    'SL'
    """
    try:
        cls = _SCHEMES[name]
    except KeyError:
        known = ", ".join(sorted(_SCHEMES))
        raise SchemeError(f"unknown scheme {name!r}; known: {known}") from None
    return cls(**kwargs)
