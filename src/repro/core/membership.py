"""Dynamic group membership: caches joining and leaving formed groups.

The paper forms groups for a fixed cache population; a deployed edge
network also sees caches added (new PoPs) and removed (maintenance).
Re-running the full pipeline per event would re-probe everything, so
:class:`MembershipManager` maintains a grouping incrementally:

* **join** — a new cache positions itself and enters the best group,
  by one of two strategies:

  - ``"landmarks"`` (used when the grouping carries K-means provenance):
    the cache probes the original landmark set, and joins the group
    whose cluster center is nearest in feature space — SL step 2 + a
    single nearest-center step, exactly what the scheme would have done;
  - ``"peer-probe"`` (fallback for provenance-free groupings, e.g.
    loaded from a JSON group table): the cache probes a sampled member
    of each group and joins the group with the nearest sample.

* **leave** — the cache exits its group; emptied groups are dropped.

* **churn accounting** — the manager tracks how far the grouping has
  drifted from its formation state, so operators can trigger a full
  re-clustering once churn crosses a threshold.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import numpy as np

from repro.core.groups import CacheGroup, GroupingResult
from repro.errors import SchemeError
from repro.landmarks.feature_vectors import build_feature_vectors
from repro.probing.prober import Prober
from repro.types import NodeId
from repro.utils.rng import SeedLike, spawn_rng


class MembershipManager:
    """Incrementally maintains a grouping under cache churn."""

    def __init__(self, grouping: GroupingResult) -> None:
        self._scheme = grouping.scheme
        self._landmarks = grouping.landmarks
        self._members: Dict[int, Set[NodeId]] = {
            g.group_id: set(g.members) for g in grouping.groups
        }
        self._group_of: Dict[NodeId, int] = grouping.membership()
        self._next_group_id = max(self._members) + 1

        # Feature-space centers, if the grouping carries provenance.
        self._centers: Optional[np.ndarray] = None
        if grouping.clustering is not None and grouping.features is not None:
            # Recompute per-*group* centers from the final assignment
            # (clustering.centers indexes clusters, which were
            # renumbered into dense group ids).
            features = grouping.features
            index_of = features.index_of()
            centers = []
            for group in grouping.groups:
                rows = [index_of[m] for m in group.members]
                centers.append(features.matrix[rows].mean(axis=0))
            self._centers = np.asarray(centers)
            self._center_group_ids = [g.group_id for g in grouping.groups]

        self._joins = 0
        self._leaves = 0
        self._formed_size = len(self._group_of)

    # -- inspection ------------------------------------------------------

    @property
    def num_groups(self) -> int:
        return len(self._members)

    def group_of(self, node: NodeId) -> int:
        try:
            return self._group_of[node]
        except KeyError:
            raise SchemeError(f"cache {node} is not in any group") from None

    def members_of(self, group_id: int) -> List[NodeId]:
        try:
            return sorted(self._members[group_id])
        except KeyError:
            raise SchemeError(f"no group {group_id}") from None

    def churn_fraction(self) -> float:
        """Joins + leaves since formation, relative to the formed size."""
        if self._formed_size == 0:
            return 0.0
        return (self._joins + self._leaves) / self._formed_size

    def needs_reclustering(self, threshold: float = 0.25) -> bool:
        """True once cumulative churn exceeds ``threshold``."""
        if not 0 < threshold:
            raise SchemeError(f"threshold must be > 0, got {threshold}")
        return self.churn_fraction() > threshold

    def current_grouping(self) -> GroupingResult:
        """An immutable snapshot of the current group table."""
        groups = tuple(
            CacheGroup(group_id=new_id, members=tuple(sorted(members)))
            for new_id, (_old_id, members) in enumerate(
                sorted(self._members.items())
            )
            if members
        )
        return GroupingResult(
            scheme=f"{self._scheme}+churn",
            groups=groups,
            landmarks=self._landmarks,
        )

    # -- mutation --------------------------------------------------------

    def join(
        self,
        prober: Prober,
        node: NodeId,
        seed: SeedLike = None,
        samples_per_group: int = 1,
        failed: Optional[Set[NodeId]] = None,
    ) -> int:
        """Place a new cache into the best existing group.

        Returns the chosen group id.  Raises if the cache is already
        grouped.  ``failed`` lists caches currently down: the
        ``"peer-probe"`` strategy never samples them (probing a dead
        member would hang the join and skew the RTT comparison).  The
        ``"landmarks"`` strategy ignores it — it probes landmarks, not
        members.
        """
        if node in self._group_of:
            raise SchemeError(f"cache {node} is already in a group")
        if self._centers is not None and self._landmarks is not None:
            group_id = self._join_by_landmarks(prober, node)
        else:
            group_id = self._join_by_peer_probe(
                prober, node, seed, samples_per_group, failed
            )
        self._members[group_id].add(node)
        self._group_of[node] = group_id
        self._joins += 1
        return group_id

    def leave(self, node: NodeId) -> int:
        """Remove a cache from its group; returns the group id it left.

        A group emptied by the departure is dropped (its id retires).
        """
        group_id = self.group_of(node)
        self._members[group_id].discard(node)
        del self._group_of[node]
        self._leaves += 1
        if not self._members[group_id]:
            del self._members[group_id]
        return group_id

    # -- strategies --------------------------------------------------------

    def _join_by_landmarks(self, prober: Prober, node: NodeId) -> int:
        """SL-style: probe the landmarks, join the nearest center."""
        assert self._landmarks is not None and self._centers is not None
        features = build_feature_vectors(
            prober, self._landmarks, nodes=[node]
        )
        vector = features.matrix[0]
        distances = np.linalg.norm(self._centers - vector[None, :], axis=1)
        # Only consider groups that still exist (ids may have retired).
        order = np.argsort(distances)
        for idx in order:
            group_id = self._center_group_ids[int(idx)]
            if group_id in self._members:
                return group_id
        raise SchemeError("no live groups left to join")

    def _join_by_peer_probe(
        self,
        prober: Prober,
        node: NodeId,
        seed: SeedLike,
        samples_per_group: int,
        failed: Optional[Set[NodeId]] = None,
    ) -> int:
        """Provenance-free: probe sampled *live* members of each group.

        Currently-failed caches are excluded from the sampling pool; a
        group whose members are all down is skipped entirely.  With no
        failed caches the pools — and therefore the RNG draws and the
        chosen group — are identical to the pre-fault behaviour.
        """
        if samples_per_group < 1:
            raise SchemeError(
                f"samples_per_group must be >= 1, got {samples_per_group}"
            )
        down = failed if failed is not None else frozenset()
        rng = spawn_rng(seed)
        best_group: Optional[int] = None
        best_rtt = np.inf
        skipped_dead = 0
        for group_id, members in sorted(self._members.items()):
            if not members:
                continue
            pool = sorted(m for m in members if m not in down)
            if not pool:
                skipped_dead += 1
                continue
            count = min(samples_per_group, len(pool))
            picks = rng.choice(len(pool), size=count, replace=False)
            rtts = [prober.measure(node, pool[int(i)]) for i in picks]
            mean_rtt = float(np.mean(rtts))
            if mean_rtt < best_rtt:
                best_rtt = mean_rtt
                best_group = group_id
        if best_group is None:
            if skipped_dead:
                raise SchemeError(
                    f"cannot join: all {skipped_dead} group(s) have only "
                    f"failed members"
                )
            raise SchemeError("no live groups left to join")
        return best_group
