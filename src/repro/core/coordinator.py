"""The Group Formation Coordinator (GF-Coordinator).

The paper's GF-Coordinator "coordinates the execution of the three
steps": landmark choice, feature-vector construction, and clustering.
:class:`GFCoordinator` owns the :class:`repro.probing.Prober` (so all
measurement flows through one accounted channel) and exposes each step
separately — schemes compose them, and tests can interrogate
intermediate state.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional

import numpy as np

from repro.clustering.init import CenterInitializer, UniformRandomInit
from repro.clustering.kmeans import KMeans
from repro.config import KMeansConfig, LandmarkConfig, ProbeConfig
from repro.core.groups import GroupingResult, groups_from_labels
from repro.errors import SchemeError
from repro.landmarks.base import LandmarkSelector, LandmarkSet
from repro.landmarks.feature_vectors import FeatureVectors, build_feature_vectors
from repro.obs.profiling import (
    PhaseRegistry,
    activate,
    current_registry,
    perf_seconds,
)
from repro.probing.prober import Prober
from repro.topology.network import EdgeCacheNetwork
from repro.utils.rng import RngFactory, SeedLike


class GFCoordinator:
    """Runs the three-step group-formation pipeline over one network."""

    def __init__(
        self,
        network: EdgeCacheNetwork,
        probe_config: Optional[ProbeConfig] = None,
        seed: SeedLike = None,
    ) -> None:
        self._network = network
        if isinstance(seed, np.random.Generator):
            # Derive a reproducible root from the caller's stream (one
            # draw) instead of silently falling back to OS entropy.
            root: Optional[int] = int(seed.integers(2**63))
        elif isinstance(seed, (int, np.integer)):
            root = int(seed)
        else:
            root = None
        self._rng_factory = RngFactory(root)
        self._prober = Prober(
            network,
            config=probe_config,
            seed=self._rng_factory.stream("probe"),
        )
        self._phases = PhaseRegistry()

    @property
    def network(self) -> EdgeCacheNetwork:
        return self._network

    @property
    def prober(self) -> Prober:
        return self._prober

    @property
    def phases(self) -> PhaseRegistry:
        """Per-phase timings of this coordinator's pipeline steps."""
        return self._phases

    def phase_timings(self) -> Dict[str, float]:
        """Qualified phase name -> total seconds spent so far."""
        return self._phases.total_seconds()

    @contextmanager
    def _timed(self, step: str) -> Iterator[None]:
        """Record ``step`` into this coordinator's registry.

        If a caller already activated an ambient registry (CLI or
        experiment-suite profiling), the fine-grained inner timers keep
        recording into it; the coordinator's own registry then mirrors
        the step totals so ``phase_timings()`` stays meaningful either
        way.
        """
        ambient = current_registry()
        if ambient is None:
            with activate(self._phases), self._phases.time(step):
                yield
            return
        start = perf_seconds()
        try:
            with ambient.time(step):
                yield
        finally:
            self._phases.merge_totals({step: perf_seconds() - start})

    # -- step 1 ----------------------------------------------------------

    def choose_landmarks(
        self,
        selector: LandmarkSelector,
        config: Optional[LandmarkConfig] = None,
    ) -> LandmarkSet:
        """Step 1: run a landmark selector over the network."""
        config = config or LandmarkConfig()
        with self._timed("landmarks"):
            return selector.select(
                self._prober, config, self._rng_factory.stream("landmarks")
            )

    # -- step 2 ----------------------------------------------------------

    def build_features(self, landmarks: LandmarkSet) -> FeatureVectors:
        """Step 2: every cache probes every landmark."""
        with self._timed("features"):
            return build_feature_vectors(self._prober, landmarks)

    def measured_server_distances(self, features: FeatureVectors) -> np.ndarray:
        """Per-cache measured RTT to the origin, extracted from features.

        The origin server is always landmark 0, so its feature-vector
        column *is* the measured server distance — SDSL needs no extra
        probes beyond what SL already issued.
        """
        origin_column = list(features.landmarks).index(
            self._network.origin
        )
        return features.matrix[:, origin_column].copy()

    # -- step 3 ----------------------------------------------------------

    def cluster(
        self,
        features: FeatureVectors,
        k: int,
        scheme_name: str,
        initializer: Optional[CenterInitializer] = None,
        kmeans_config: Optional[KMeansConfig] = None,
        points: Optional[np.ndarray] = None,
    ) -> GroupingResult:
        """Step 3: K-means over feature vectors (or supplied coordinates).

        ``points`` overrides the clustered representation (used by the
        GNP scheme, which clusters Euclidean coordinates but keeps the
        feature provenance); row order must match ``features.nodes``.
        """
        if k < 1:
            raise SchemeError(f"number of groups must be >= 1, got {k}")
        if k > len(features.nodes):
            raise SchemeError(
                f"cannot form {k} groups from {len(features.nodes)} caches"
            )
        data = features.matrix if points is None else np.asarray(points, float)
        if data.shape[0] != len(features.nodes):
            raise SchemeError(
                f"clustering data has {data.shape[0]} rows for "
                f"{len(features.nodes)} caches"
            )
        kmeans = KMeans(
            k=k,
            config=kmeans_config,
            initializer=initializer or UniformRandomInit(),
        )
        with self._timed("cluster"):
            clustering = kmeans.fit(
                data, seed=self._rng_factory.stream("kmeans")
            )
        groups = groups_from_labels(list(features.nodes), clustering.labels)
        return GroupingResult(
            scheme=scheme_name,
            groups=groups,
            landmarks=features.landmarks,
            features=features,
            clustering=clustering,
            phase_timings=self.phase_timings(),
        )
