"""The Group Formation Coordinator (GF-Coordinator).

The paper's GF-Coordinator "coordinates the execution of the three
steps": landmark choice, feature-vector construction, and clustering.
:class:`GFCoordinator` owns the :class:`repro.probing.Prober` (so all
measurement flows through one accounted channel) and exposes each step
separately — schemes compose them, and tests can interrogate
intermediate state.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.clustering.init import CenterInitializer, UniformRandomInit
from repro.clustering.kmeans import KMeans
from repro.config import KMeansConfig, LandmarkConfig, ProbeConfig
from repro.core.groups import GroupingResult, groups_from_labels
from repro.errors import LandmarkSelectionError, SchemeError
from repro.faults.config import FaultConfig
from repro.faults.model import FaultModel
from repro.landmarks.base import LandmarkSelector, LandmarkSet
from repro.landmarks.feature_vectors import FeatureVectors, build_feature_vectors
from repro.obs.profiling import (
    PhaseRegistry,
    activate,
    current_registry,
    perf_seconds,
)
from repro.probing.prober import Prober
from repro.topology.network import EdgeCacheNetwork
from repro.types import ORIGIN_NODE_ID, NodeId
from repro.utils.rng import RngFactory, SeedLike


class GFCoordinator:
    """Runs the three-step group-formation pipeline over one network."""

    def __init__(
        self,
        network: EdgeCacheNetwork,
        probe_config: Optional[ProbeConfig] = None,
        seed: SeedLike = None,
        faults: Optional[Union[FaultConfig, FaultModel]] = None,
    ) -> None:
        self._network = network
        if isinstance(seed, np.random.Generator):
            # Derive a reproducible root from the caller's stream (one
            # draw) instead of silently falling back to OS entropy.
            root: Optional[int] = int(seed.integers(2**63))
        elif isinstance(seed, (int, np.integer)):
            root = int(seed)
        else:
            root = None
        self._rng_factory = RngFactory(root)
        if isinstance(faults, FaultConfig):
            # A no-op config never alters measurements: skip the model
            # entirely so fault-free runs stay byte-identical to runs
            # that never mention faults.
            faults.validate()
            self._faults: Optional[FaultModel] = (
                None if faults.is_noop()
                else FaultModel(faults, self._rng_factory)
            )
        else:
            self._faults = faults
        self._prober = Prober(
            network,
            config=probe_config,
            seed=self._rng_factory.stream("probe"),
            faults=self._faults,
        )
        self._phases = PhaseRegistry()
        self._degraded = False
        self._fault_report: Dict[str, float] = {}

    @property
    def network(self) -> EdgeCacheNetwork:
        return self._network

    @property
    def prober(self) -> Prober:
        return self._prober

    @property
    def faults(self) -> Optional[FaultModel]:
        """The attached fault model (None when fault injection is off)."""
        return self._faults

    @property
    def degraded(self) -> bool:
        """True once any degraded-mode path (imputation, failover) ran."""
        return self._degraded

    @property
    def fault_report(self) -> Dict[str, float]:
        """Degradation provenance accumulated so far (copy)."""
        return dict(self._fault_report)

    @property
    def phases(self) -> PhaseRegistry:
        """Per-phase timings of this coordinator's pipeline steps."""
        return self._phases

    def phase_timings(self) -> Dict[str, float]:
        """Qualified phase name -> total seconds spent so far."""
        return self._phases.total_seconds()

    @contextmanager
    def _timed(self, step: str) -> Iterator[None]:
        """Record ``step`` into this coordinator's registry.

        If a caller already activated an ambient registry (CLI or
        experiment-suite profiling), the fine-grained inner timers keep
        recording into it; the coordinator's own registry then mirrors
        the step totals so ``phase_timings()`` stays meaningful either
        way.
        """
        ambient = current_registry()
        if ambient is None:
            with activate(self._phases), self._phases.time(step):
                yield
            return
        start = perf_seconds()
        try:
            with ambient.time(step):
                yield
        finally:
            self._phases.merge_totals({step: perf_seconds() - start})

    # -- step 1 ----------------------------------------------------------

    def choose_landmarks(
        self,
        selector: LandmarkSelector,
        config: Optional[LandmarkConfig] = None,
    ) -> LandmarkSet:
        """Step 1: run a landmark selector over the network."""
        config = config or LandmarkConfig()
        with self._timed("landmarks"):
            landmarks = selector.select(
                self._prober, config, self._rng_factory.stream("landmarks")
            )
        if (
            self._faults is not None
            and self._faults.config.crashed_landmarks > 0
        ):
            crashed = self._faults.crash_landmarks(landmarks)
            if crashed:
                self._fault_report["landmarks_crashed"] = float(len(crashed))
        return landmarks

    # -- step 2 ----------------------------------------------------------

    def build_features(self, landmarks: LandmarkSet) -> FeatureVectors:
        """Step 2: every cache probes every landmark.

        With fault injection active, unreachable landmarks measure NaN;
        columns that fall below the configured quorum of valid entries
        trigger landmark replacement (re-running the greedy max–min step
        over surviving candidates and re-probing only the affected
        column), and any remaining NaN entries are imputed with the
        column median so clustering always sees complete vectors.
        """
        with self._timed("features"):
            features = build_feature_vectors(self._prober, landmarks)
            if self._faults is not None and np.isnan(features.matrix).any():
                features = self._degrade_features(features)
            return features

    def _degrade_features(self, features: FeatureVectors) -> FeatureVectors:
        """Quorum check, landmark failover, and median imputation."""
        assert self._faults is not None
        cfg = self._faults.config
        matrix = np.array(features.matrix, dtype=float)
        nodes = features.nodes
        lm_nodes: List[NodeId] = list(features.landmarks.nodes)
        replacements: List[Tuple[NodeId, NodeId]] = []
        for _ in range(cfg.max_landmark_replacements):
            valid_fraction = np.mean(~np.isnan(matrix), axis=0)
            dead_columns = [
                col
                for col in range(1, len(lm_nodes))
                if valid_fraction[col] < cfg.quorum
            ]
            if not dead_columns:
                break
            col = dead_columns[0]
            dead_lm = lm_nodes[col]
            new_lm = self._pick_replacement_landmark(
                features.landmarks, lm_nodes
            )
            # Re-probe only the affected column: every cache measures
            # the replacement landmark, nothing else is touched.
            for row, node in enumerate(nodes):
                matrix[row, col] = self._prober.measure(node, new_lm)
            lm_nodes[col] = new_lm
            replacements.append((dead_lm, new_lm))
        else:
            valid_fraction = np.mean(~np.isnan(matrix), axis=0)
            still_dead = [
                lm_nodes[col]
                for col in range(1, len(lm_nodes))
                if valid_fraction[col] < cfg.quorum
            ]
            if still_dead:
                raise LandmarkSelectionError(
                    f"landmark replacement budget "
                    f"({cfg.max_landmark_replacements}) exhausted with "
                    f"landmarks {still_dead} still below quorum {cfg.quorum}"
                )

        # Median-impute whatever NaNs survive the quorum (isolated
        # probe losses against otherwise reachable landmarks).
        imputed = 0
        for col in range(matrix.shape[1]):
            column = matrix[:, col]
            missing = np.isnan(column)
            if not missing.any():
                continue
            if missing.all():
                raise LandmarkSelectionError(
                    f"landmark {lm_nodes[col]} is unreachable from every "
                    f"cache and cannot be imputed"
                )
            column[missing] = float(np.nanmedian(column))
            imputed += int(missing.sum())

        self._degraded = True
        self._fault_report["landmarks_replaced"] = float(len(replacements))
        self._fault_report["features_imputed"] = (
            self._fault_report.get("features_imputed", 0.0) + float(imputed)
        )
        if replacements == []:
            new_landmarks = features.landmarks
        else:
            # min_pairwise_rtt was measured for the *original* set; the
            # patched set never measured its pairwise distances.
            new_landmarks = LandmarkSet(
                nodes=tuple(lm_nodes),
                min_pairwise_rtt=float("nan"),
                plset=features.landmarks.plset,
                plset_measured=features.landmarks.plset_measured,
            )
        return FeatureVectors(
            nodes=nodes, landmarks=new_landmarks, matrix=matrix
        )

    def _pick_replacement_landmark(
        self,
        original: LandmarkSet,
        current_lm_nodes: List[NodeId],
    ) -> NodeId:
        """Choose a stand-in for a dead landmark.

        Preferred path: re-run the greedy max–min step over the PLSet
        measurements kept from selection, restricted to live candidates
        not already in the landmark set.  Fallback (selector kept no
        PLSet context): a uniform pick from live non-landmark caches
        via the ``"landmark-replacement"`` stream.
        """
        assert self._faults is not None
        taken = set(current_lm_nodes)
        down = self._faults.crashed_nodes
        if original.plset is not None and original.plset_measured is not None:
            probe_nodes = [ORIGIN_NODE_ID, *original.plset]
            measured = original.plset_measured
            surviving_rows = [
                row
                for row, node in enumerate(probe_nodes)
                if node in taken and node not in down
            ]
            candidate_rows = [
                row
                for row, node in enumerate(probe_nodes)
                if node not in taken and node not in down
            ]
            if candidate_rows and surviving_rows:
                best_row = max(
                    candidate_rows,
                    key=lambda row: (
                        measured[row, surviving_rows].min(), -row
                    ),
                )
                return probe_nodes[best_row]
        candidates = sorted(
            node
            for node in self._network.cache_nodes
            if node not in taken and node not in down
        )
        if not candidates:
            raise LandmarkSelectionError(
                "no live cache is available to replace a dead landmark"
            )
        rng = self._rng_factory.stream("landmark-replacement")
        return candidates[int(rng.integers(len(candidates)))]

    def measured_server_distances(self, features: FeatureVectors) -> np.ndarray:
        """Per-cache measured RTT to the origin, extracted from features.

        The origin server is always landmark 0, so its feature-vector
        column *is* the measured server distance — SDSL needs no extra
        probes beyond what SL already issued.
        """
        origin_column = list(features.landmarks).index(
            self._network.origin
        )
        return features.matrix[:, origin_column].copy()

    # -- step 3 ----------------------------------------------------------

    def cluster(
        self,
        features: FeatureVectors,
        k: int,
        scheme_name: str,
        initializer: Optional[CenterInitializer] = None,
        kmeans_config: Optional[KMeansConfig] = None,
        points: Optional[np.ndarray] = None,
    ) -> GroupingResult:
        """Step 3: K-means over feature vectors (or supplied coordinates).

        ``points`` overrides the clustered representation (used by the
        GNP scheme, which clusters Euclidean coordinates but keeps the
        feature provenance); row order must match ``features.nodes``.
        """
        if k < 1:
            raise SchemeError(f"number of groups must be >= 1, got {k}")
        if k > len(features.nodes):
            raise SchemeError(
                f"cannot form {k} groups from {len(features.nodes)} caches"
            )
        data = features.matrix if points is None else np.asarray(points, float)
        if data.shape[0] != len(features.nodes):
            raise SchemeError(
                f"clustering data has {data.shape[0]} rows for "
                f"{len(features.nodes)} caches"
            )
        kmeans = KMeans(
            k=k,
            config=kmeans_config,
            initializer=initializer or UniformRandomInit(),
        )
        with self._timed("cluster"):
            clustering = kmeans.fit(
                data, seed=self._rng_factory.stream("kmeans")
            )
        groups = groups_from_labels(list(features.nodes), clustering.labels)
        fault_report: Optional[Dict[str, float]] = None
        if self._faults is not None:
            stats = self._prober.stats
            fault_report = {
                **self._fault_report,
                "probes_lost": float(stats.probes_lost),
                "retries": float(stats.retries),
                "timeouts": float(stats.timeouts),
                "timeout_wait_ms": float(stats.timeout_wait_ms),
            }
        return GroupingResult(
            scheme=scheme_name,
            groups=groups,
            landmarks=features.landmarks,
            features=features,
            clustering=clustering,
            phase_timings=self.phase_timings(),
            degraded=self._degraded,
            fault_report=fault_report,
        )
