"""The paper's primary contribution: cache-group formation schemes.

:class:`GFCoordinator` orchestrates the three steps (landmark choice,
feature vectors, clustering); the scheme classes bundle the paper's five
evaluated configurations behind one ``form_groups`` call:

* :class:`SLScheme` — greedy landmarks + feature vectors + K-means;
* :class:`SDSLScheme` — SL with server-distance-biased K-means seeding;
* :class:`RandomLandmarksScheme` — random landmark baseline;
* :class:`MinDistLandmarksScheme` — min-dist landmark baseline;
* :class:`EuclideanGNPScheme` — GNP coordinates + K-means baseline.
"""

from repro.core.groups import CacheGroup, GroupingResult
from repro.core.coordinator import GFCoordinator
from repro.core.membership import MembershipManager
from repro.core.schemes import (
    EuclideanGNPScheme,
    GroupFormationScheme,
    MinDistLandmarksScheme,
    RandomLandmarksScheme,
    SDSLScheme,
    SLScheme,
    VivaldiScheme,
    scheme_by_name,
)

__all__ = [
    "CacheGroup",
    "GroupingResult",
    "GFCoordinator",
    "MembershipManager",
    "GroupFormationScheme",
    "SLScheme",
    "SDSLScheme",
    "RandomLandmarksScheme",
    "MinDistLandmarksScheme",
    "EuclideanGNPScheme",
    "VivaldiScheme",
    "scheme_by_name",
]
