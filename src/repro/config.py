"""Configuration dataclasses for every subsystem.

All configs are frozen dataclasses with a ``validate()`` method that
raises :class:`repro.errors.ConfigurationError` on internal
inconsistencies.  Constructors deliberately do *not* validate (so sweeps
can build partially-filled configs); every consumer calls ``validate()``
at its entry point.

Defaults follow the paper's experimental setup where the paper states
one (L=25 landmarks, M=2 potential-landmark multiplier, K = 10% of N,
N up to 500 caches, GT-ITM transit-stub topologies) and the cited
"Cache Clouds" / GT-ITM literature otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TransitStubConfig:
    """Parameters of the hierarchical transit-stub topology generator.

    The generated graph has ``transit_domains`` transit domains of
    ``transit_nodes_per_domain`` routers each, and every transit router
    hosts ``stub_domains_per_transit_node`` stub domains of
    ``stub_nodes_per_domain`` routers.  Edge latencies (milliseconds) are
    drawn uniformly from the per-tier ranges, mirroring GT-ITM's
    convention that inter-transit links are slow, transit-stub links are
    medium, and intra-stub links are fast.
    """

    transit_domains: int = 4
    transit_nodes_per_domain: int = 4
    stub_domains_per_transit_node: int = 3
    stub_nodes_per_domain: int = 8
    #: probability of an extra edge between routers of the same domain
    intra_domain_edge_prob: float = 0.42
    #: probability of an extra transit-transit domain-level edge
    extra_transit_edge_prob: float = 0.25
    #: probability of an extra stub-to-transit "multi-homing" edge
    extra_stub_transit_edge_prob: float = 0.03
    transit_transit_latency_ms: Tuple[float, float] = (20.0, 60.0)
    transit_stub_latency_ms: Tuple[float, float] = (4.0, 16.0)
    intra_transit_latency_ms: Tuple[float, float] = (8.0, 25.0)
    intra_stub_latency_ms: Tuple[float, float] = (1.0, 5.0)

    def validate(self) -> None:
        if self.transit_domains < 1:
            raise ConfigurationError("transit_domains must be >= 1")
        if self.transit_nodes_per_domain < 1:
            raise ConfigurationError("transit_nodes_per_domain must be >= 1")
        if self.stub_domains_per_transit_node < 0:
            raise ConfigurationError("stub_domains_per_transit_node must be >= 0")
        if self.stub_nodes_per_domain < 1:
            raise ConfigurationError("stub_nodes_per_domain must be >= 1")
        for name in ("intra_domain_edge_prob", "extra_transit_edge_prob",
                     "extra_stub_transit_edge_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
        for name in ("transit_transit_latency_ms", "transit_stub_latency_ms",
                     "intra_transit_latency_ms", "intra_stub_latency_ms"):
            low, high = getattr(self, name)
            if not 0 < low <= high:
                raise ConfigurationError(
                    f"{name} must satisfy 0 < low <= high, got ({low}, {high})"
                )

    @property
    def total_routers(self) -> int:
        """Number of routers the generated topology will contain."""
        transit = self.transit_domains * self.transit_nodes_per_domain
        stubs = (
            transit
            * self.stub_domains_per_transit_node
            * self.stub_nodes_per_domain
        )
        return transit + stubs

    def scaled_for(self, min_stub_routers: int) -> "TransitStubConfig":
        """Return a copy with enough stub routers to host ``min_stub_routers``.

        Scaling bumps ``stub_nodes_per_domain`` only, preserving the
        hierarchical shape (and therefore the RTT distribution family).
        """
        if min_stub_routers <= 0:
            raise ConfigurationError("min_stub_routers must be > 0")
        domains = self.stub_domain_count
        if domains == 0:
            raise ConfigurationError(
                "cannot scale a topology with no stub domains"
            )
        needed = -(-min_stub_routers // domains)  # ceil division
        return replace(
            self, stub_nodes_per_domain=max(self.stub_nodes_per_domain, needed)
        )

    @property
    def stub_domain_count(self) -> int:
        """Number of stub domains the topology will contain."""
        return (
            self.transit_domains
            * self.transit_nodes_per_domain
            * self.stub_domains_per_transit_node
        )

    def sized_for_density(
        self, num_nodes: int, nodes_per_stub_router: float = 0.8
    ) -> "TransitStubConfig":
        """Return a copy whose stub tier matches a placement density.

        The paper's flagship setting places 500 caches on a GT-ITM
        topology with roughly 600 stub routers (~0.8 caches per stub
        router), so edge caches share stub domains with close-by peers.
        This picks ``stub_nodes_per_domain`` to hold that density at any
        network size (never below 2 per domain, and always enough
        routers for distinct placement).
        """
        if num_nodes <= 0:
            raise ConfigurationError("num_nodes must be > 0")
        if nodes_per_stub_router <= 0:
            raise ConfigurationError("nodes_per_stub_router must be > 0")
        domains = self.stub_domain_count
        if domains == 0:
            raise ConfigurationError(
                "cannot size a topology with no stub domains"
            )
        target_routers = max(
            num_nodes + 1, round(num_nodes / nodes_per_stub_router)
        )
        per_domain = max(2, -(-target_routers // domains))
        return replace(self, stub_nodes_per_domain=per_domain)


@dataclass(frozen=True)
class PlacementConfig:
    """How the origin server and edge caches are pinned to routers.

    The paper assumes locations are pre-decided; we place the origin on a
    transit router (it is a well-connected major site) and caches on
    distinct stub routers, which mirrors how CDN edge caches sit in
    access networks.
    """

    num_caches: int = 100
    origin_on_transit: bool = True
    #: allow multiple caches on one router when caches outnumber routers
    allow_colocation: bool = False

    def validate(self) -> None:
        if self.num_caches < 1:
            raise ConfigurationError("num_caches must be >= 1")


@dataclass(frozen=True)
class ProbeConfig:
    """Simulated RTT probing.

    Each probe observes ``true_rtt * (1 + e)`` with ``e`` drawn from a
    zero-mean normal of relative std ``jitter_std``; feature vectors
    average ``probe_count`` probes, as in the paper ("probing them
    multiple times and recording the average RTT values").
    """

    probe_count: int = 5
    jitter_std: float = 0.05
    #: floor so jittered probes cannot go non-positive
    min_rtt_ms: float = 0.05

    def validate(self) -> None:
        if self.probe_count < 1:
            raise ConfigurationError("probe_count must be >= 1")
        if self.jitter_std < 0:
            raise ConfigurationError("jitter_std must be >= 0")
        if self.min_rtt_ms <= 0:
            raise ConfigurationError("min_rtt_ms must be > 0")


@dataclass(frozen=True)
class LandmarkConfig:
    """Landmark selection parameters (Section 3.1 of the paper)."""

    #: L — total landmarks including the origin server
    num_landmarks: int = 25
    #: M — potential-landmark multiplier; PLSet size is M * (L - 1)
    multiplier: int = 2

    def validate(self) -> None:
        if self.num_landmarks < 2:
            raise ConfigurationError(
                "num_landmarks must be >= 2 (origin plus at least one cache)"
            )
        if self.multiplier < 1:
            raise ConfigurationError("multiplier must be >= 1")

    def potential_set_size(self) -> int:
        """Size of the potential landmark set, ``M * (L - 1)``."""
        return self.multiplier * (self.num_landmarks - 1)


@dataclass(frozen=True)
class KMeansConfig:
    """K-means clustering parameters (Section 3.3).

    The paper iterates "until the number of caches that were reassigned
    in the current iteration becomes minimal"; we stop when the number of
    reassignments drops to ``reassignment_tolerance`` or fewer, or after
    ``max_iterations`` as a safety bound.
    """

    max_iterations: int = 100
    reassignment_tolerance: int = 0
    #: number of random restarts; best (lowest-SSE) clustering wins
    restarts: int = 1

    def validate(self) -> None:
        if self.max_iterations < 1:
            raise ConfigurationError("max_iterations must be >= 1")
        if self.reassignment_tolerance < 0:
            raise ConfigurationError("reassignment_tolerance must be >= 0")
        if self.restarts < 1:
            raise ConfigurationError("restarts must be >= 1")


@dataclass(frozen=True)
class SDSLConfig:
    """SDSL-specific parameters (Section 4.1).

    ``theta`` controls sensitivity to server distance: the probability of
    picking cache ``Ec_j`` as an initial cluster center is proportional
    to ``1 / Dist(Ec_j, Os) ** theta``.  ``theta = 0`` degenerates to the
    plain SL scheme's uniform initialization.  The paper leaves theta's
    value open ("a configurable system parameter"); 2.0 is the value our
    theta-ablation bench found robustly best on transit-stub topologies
    at the paper's K = 10-20% of N settings.

    ``adaptive = True`` scales theta with the group density instead:
    ``theta_eff = clamp(20 * K / N, 0.5, 2.5)``.  Calibration at N=500
    showed the best theta grows with K/N — few centers tolerate only a
    gentle bias (theta~0.5 at K/N=2%), many centers profit from a strong
    one (theta~2 at K/N=10%).
    """

    theta: float = 2.0
    adaptive: bool = False

    def validate(self) -> None:
        if self.theta < 0:
            raise ConfigurationError("theta must be >= 0")

    def effective_theta(self, k: int, num_caches: int) -> float:
        """The theta actually used for a K-group, N-cache run."""
        if k < 1 or num_caches < 1:
            raise ConfigurationError(
                f"k and num_caches must be >= 1, got {k}, {num_caches}"
            )
        if not self.adaptive:
            return self.theta
        return float(min(2.5, max(0.5, 20.0 * k / num_caches)))


@dataclass(frozen=True)
class GNPConfig:
    """Euclidean-space (GNP-style) embedding parameters (Section 5.2)."""

    dimensions: int = 7
    max_iterations: int = 200
    #: independent random starts for the landmark embedding
    landmark_restarts: int = 3

    def validate(self) -> None:
        if self.dimensions < 1:
            raise ConfigurationError("dimensions must be >= 1")
        if self.max_iterations < 1:
            raise ConfigurationError("max_iterations must be >= 1")
        if self.landmark_restarts < 1:
            raise ConfigurationError("landmark_restarts must be >= 1")


@dataclass(frozen=True)
class DocumentConfig:
    """Document catalog of a workload.

    Sizes are lognormal (heavy tailed, like web objects); a fraction of
    documents is *dynamic*, i.e. subject to server-side updates.
    """

    num_documents: int = 2_000
    mean_size_bytes: float = 12_000.0
    size_sigma: float = 1.0
    dynamic_fraction: float = 0.6

    def validate(self) -> None:
        if self.num_documents < 1:
            raise ConfigurationError("num_documents must be >= 1")
        if self.mean_size_bytes <= 0:
            raise ConfigurationError("mean_size_bytes must be > 0")
        if self.size_sigma < 0:
            raise ConfigurationError("size_sigma must be >= 0")
        if not 0.0 <= self.dynamic_fraction <= 1.0:
            raise ConfigurationError("dynamic_fraction must be in [0, 1]")


@dataclass(frozen=True)
class WorkloadConfig:
    """Synthetic request/update workload ("Olympics-like" preset).

    Per-cache request streams mix a shared global Zipf popularity
    (weight ``shared_interest``) with a cache-local Zipf permutation,
    reproducing the paper's assumption that "the request patterns of the
    edge caches exhibit considerable degree of similarity".
    """

    documents: DocumentConfig = field(default_factory=DocumentConfig)
    requests_per_cache: int = 400
    zipf_alpha: float = 0.9
    shared_interest: float = 0.8
    #: mean inter-arrival between requests at one cache (ms)
    mean_interarrival_ms: float = 250.0
    #: mean inter-arrival between origin-side document updates (ms)
    mean_update_interarrival_ms: float = 400.0
    duration_ms: Optional[float] = None

    def validate(self) -> None:
        self.documents.validate()
        if self.requests_per_cache < 1:
            raise ConfigurationError("requests_per_cache must be >= 1")
        if self.zipf_alpha <= 0:
            raise ConfigurationError("zipf_alpha must be > 0")
        if not 0.0 <= self.shared_interest <= 1.0:
            raise ConfigurationError("shared_interest must be in [0, 1]")
        if self.mean_interarrival_ms <= 0:
            raise ConfigurationError("mean_interarrival_ms must be > 0")
        if self.mean_update_interarrival_ms <= 0:
            raise ConfigurationError("mean_update_interarrival_ms must be > 0")
        if self.duration_ms is not None and self.duration_ms <= 0:
            raise ConfigurationError("duration_ms must be > 0 when set")


@dataclass(frozen=True)
class CacheConfig:
    """Per-edge-cache storage and timing parameters."""

    #: storage capacity as a fraction of the total catalog byte size
    capacity_fraction: float = 0.10
    #: local lookup/processing overhead per request (ms)
    local_processing_ms: float = 0.5
    #: replacement policy: "utility", "lru", or "lfu"
    replacement_policy: str = "utility"
    #: cooperative placement (Cache Clouds resource management): after a
    #: group hit from a peer closer than ``placement_rtt_threshold_ms``,
    #: do not store a duplicate copy locally — rely on the nearby peer
    #: and spend the space on other documents
    cooperative_placement: bool = False
    placement_rtt_threshold_ms: float = 10.0

    def validate(self) -> None:
        if not 0.0 < self.capacity_fraction <= 1.0:
            raise ConfigurationError("capacity_fraction must be in (0, 1]")
        if self.local_processing_ms < 0:
            raise ConfigurationError("local_processing_ms must be >= 0")
        if self.replacement_policy not in ("utility", "lru", "lfu"):
            raise ConfigurationError(
                f"unknown replacement_policy: {self.replacement_policy!r}"
            )
        if self.placement_rtt_threshold_ms < 0:
            raise ConfigurationError(
                "placement_rtt_threshold_ms must be >= 0"
            )


@dataclass(frozen=True)
class SimulationConfig:
    """Discrete event simulation of the cooperative edge cache network."""

    cache: CacheConfig = field(default_factory=CacheConfig)
    #: origin server per-request processing time for dynamic content (ms).
    #: Dynamic pages are regenerated per fetch (DB queries, templating),
    #: which is the expensive part of a miss and the reason edge caching
    #: of dynamic content pays off at all; 80 ms is a mid-range figure
    #: for DB-backed page assembly circa the paper's era.
    origin_processing_ms: float = 80.0
    #: bandwidth used to convert document bytes into transfer latency
    link_bandwidth_bytes_per_ms: float = 1_250.0  # == 10 Mbit/s
    #: directory lookup overhead for a group-wide query (ms)
    group_lookup_ms: float = 0.3
    #: warm-up fraction of requests excluded from latency metrics
    warmup_fraction: float = 0.1
    #: whether caches maintain freshness at all (master switch)
    consistency_enabled: bool = True
    #: freshness mechanism: "invalidate" (server-driven invalidation,
    #: the paper's cooperative-freshness model) or "ttl" (copies expire
    #: after ``ttl_ms``; updates do not fan out, stale serves possible)
    consistency_mode: str = "invalidate"
    #: copy lifetime under the "ttl" mode (ms)
    ttl_ms: float = 5_000.0
    #: model origin congestion: processing time inflates as the recent
    #: origin-fetch arrival rate approaches ``origin_capacity_rps``
    #: (M/M/1-style 1/(1-rho) factor).  Off by default — the paper's
    #: latency model charges a flat origin processing time.
    origin_queueing: bool = False
    #: origin service capacity (requests/second) under queueing
    origin_capacity_rps: float = 200.0
    #: sliding window for the arrival-rate estimate (ms)
    origin_load_window_ms: float = 2_000.0

    def validate(self) -> None:
        self.cache.validate()
        if self.origin_processing_ms < 0:
            raise ConfigurationError("origin_processing_ms must be >= 0")
        if self.link_bandwidth_bytes_per_ms <= 0:
            raise ConfigurationError("link_bandwidth_bytes_per_ms must be > 0")
        if self.group_lookup_ms < 0:
            raise ConfigurationError("group_lookup_ms must be >= 0")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ConfigurationError("warmup_fraction must be in [0, 1)")
        if self.consistency_mode not in ("invalidate", "ttl"):
            raise ConfigurationError(
                f"unknown consistency_mode: {self.consistency_mode!r}"
            )
        if self.ttl_ms <= 0:
            raise ConfigurationError("ttl_ms must be > 0")
        if self.origin_capacity_rps <= 0:
            raise ConfigurationError("origin_capacity_rps must be > 0")
        if self.origin_load_window_ms <= 0:
            raise ConfigurationError("origin_load_window_ms must be > 0")


@dataclass(frozen=True)
class ExperimentConfig:
    """Top-level bundle used by the experiment harness."""

    topology: TransitStubConfig = field(default_factory=TransitStubConfig)
    placement: PlacementConfig = field(default_factory=PlacementConfig)
    probe: ProbeConfig = field(default_factory=ProbeConfig)
    landmarks: LandmarkConfig = field(default_factory=LandmarkConfig)
    kmeans: KMeansConfig = field(default_factory=KMeansConfig)
    sdsl: SDSLConfig = field(default_factory=SDSLConfig)
    gnp: GNPConfig = field(default_factory=GNPConfig)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    simulation: SimulationConfig = field(default_factory=SimulationConfig)
    seed: int = 7

    def validate(self) -> None:
        self.topology.validate()
        self.placement.validate()
        self.probe.validate()
        self.landmarks.validate()
        self.kmeans.validate()
        self.sdsl.validate()
        self.gnp.validate()
        self.workload.validate()
        self.simulation.validate()
        if self.landmarks.num_landmarks - 1 > self.placement.num_caches:
            raise ConfigurationError(
                "cannot select more cache landmarks than there are caches: "
                f"L-1={self.landmarks.num_landmarks - 1} > "
                f"N={self.placement.num_caches}"
            )
