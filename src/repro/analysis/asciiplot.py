"""Tiny ASCII line plots for experiment results.

The CLI sketches each reproduced figure in the terminal so the U-shapes
and crossovers are visible without leaving the shell.  Pure text, no
plotting dependency.
"""

from __future__ import annotations

from typing import List

from repro.analysis.report import ExperimentResult
from repro.errors import ReproError

_MARKERS = "ox*+#@%&"


def sketch(
    result: ExperimentResult,
    height: int = 12,
    width: int = 60,
) -> str:
    """Render an experiment's series as an ASCII chart.

    X positions are evenly spaced per sweep point (the sweeps are
    log-ish, so rank spacing reads better than value spacing); Y is
    linearly scaled over the combined series range.
    """
    if height < 4 or width < 16:
        raise ReproError("chart needs at least 4 rows and 16 columns")
    series = result.series
    points = len(result.x_values)
    if points == 1:
        # Nothing to plot; fall back to the table.
        return result.to_table().render()

    all_values = [v for s in series for v in s.values]
    lo, hi = min(all_values), max(all_values)
    if hi == lo:
        hi = lo + 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for s_index, s in enumerate(series):
        marker = _MARKERS[s_index % len(_MARKERS)]
        for i, value in enumerate(s.values):
            col = round(i * (width - 1) / (points - 1))
            row = round((hi - value) / (hi - lo) * (height - 1))
            cell = grid[row][col]
            grid[row][col] = "!" if cell not in (" ", marker) else marker

    lines = []
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{hi:>9.1f} |"
        elif row_index == height - 1:
            label = f"{lo:>9.1f} |"
        else:
            label = " " * 9 + " |"
        lines.append(label + "".join(row))
    lines.append(" " * 10 + "+" + "-" * width)
    x_axis = (
        f"{result.x_label}: "
        + " .. ".join(str(x) for x in (result.x_values[0], result.x_values[-1]))
    )
    lines.append(" " * 11 + x_axis)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {s.name}" for i, s in enumerate(series)
    )
    lines.append(" " * 11 + legend + "   (! = overlap)")
    return "\n".join(lines)
