"""Experiment result containers and rendering.

Every experiment module produces an :class:`ExperimentResult` — a set
of named series over a common x-axis — which the benchmark harness
prints as the same rows/series the corresponding paper figure reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ReproError
from repro.utils.tables import Table


@dataclass(frozen=True)
class SeriesResult:
    """One named series: y-values over the experiment's x-axis."""

    name: str
    values: tuple

    def __post_init__(self) -> None:
        if not self.name:
            raise ReproError("series name cannot be empty")
        if not self.values:
            raise ReproError(f"series {self.name!r} has no values")

    def __len__(self) -> int:
        return len(self.values)

    def min_index(self) -> int:
        """Index of the minimum value (e.g. a U-curve's optimum)."""
        return min(range(len(self.values)), key=lambda i: self.values[i])


@dataclass(frozen=True)
class ExperimentResult:
    """A figure-shaped result: x-axis plus one series per curve/bar."""

    experiment_id: str
    x_label: str
    x_values: tuple
    series: tuple
    notes: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.series:
            raise ReproError(
                f"experiment {self.experiment_id} produced no series"
            )
        for s in self.series:
            if len(s) != len(self.x_values):
                raise ReproError(
                    f"series {s.name!r} has {len(s)} values for "
                    f"{len(self.x_values)} x points"
                )

    def series_named(self, name: str) -> SeriesResult:
        for s in self.series:
            if s.name == name:
                return s
        known = ", ".join(s.name for s in self.series)
        raise ReproError(f"no series named {name!r}; have: {known}")

    def to_table(self) -> Table:
        """Render as an aligned table, one row per x value."""
        table = Table([self.x_label, *(s.name for s in self.series)])
        for i, x in enumerate(self.x_values):
            table.add_row([x, *(s.values[i] for s in self.series)])
        return table

    def render(self) -> str:
        """Full printable report: header, table, and notes."""
        lines = [f"== {self.experiment_id} ==", self.to_table().render()]
        for key in sorted(self.notes):
            lines.append(f"{key}: {self.notes[key]:.2f}")
        return "\n".join(lines)
