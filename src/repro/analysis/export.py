"""CSV export of simulation metrics and experiment results.

Operators post-process these with whatever tooling they have; the
formats are deliberately flat (one row per cache / per sweep point).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

from repro.analysis.report import ExperimentResult
from repro.simulator.metrics import SimulationMetrics

PathLike = Union[str, Path]

CACHE_COLUMNS = [
    "cache_node",
    "requests",
    "local_hits",
    "group_hits",
    "origin_fetches",
    "mean_latency_ms",
    "max_latency_ms",
    "query_messages",
    "peer_bytes",
    "origin_bytes",
    "invalidations_received",
]


def export_cache_stats(metrics: SimulationMetrics, path: PathLike) -> None:
    """One CSV row per cache with its full counter set."""
    with open(path, "w", encoding="utf-8", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(CACHE_COLUMNS)
        for cache in metrics.cache_nodes():
            stats = metrics.cache_stats(cache)
            has_latency = stats.latency.count > 0
            writer.writerow(
                [
                    cache,
                    stats.requests,
                    stats.local_hits,
                    stats.group_hits,
                    stats.origin_fetches,
                    f"{stats.latency.mean:.4f}" if has_latency else "",
                    f"{stats.latency.maximum:.4f}" if has_latency else "",
                    stats.query_messages,
                    stats.peer_bytes,
                    stats.origin_bytes,
                    stats.invalidations_received,
                ]
            )


def export_experiment_result(
    result: ExperimentResult, path: PathLike
) -> None:
    """One CSV row per sweep point, one column per series."""
    with open(path, "w", encoding="utf-8", newline="") as f:
        writer = csv.writer(f)
        writer.writerow([result.x_label, *(s.name for s in result.series)])
        for i, x in enumerate(result.x_values):
            writer.writerow([x, *(s.values[i] for s in result.series)])
