"""Latency comparison helpers for the scheme-evaluation experiments."""

from __future__ import annotations

from typing import Dict, Sequence

from repro.errors import SchemeError
from repro.simulator.runner import SimulationResult
from repro.types import NodeId


def improvement_percent(baseline: float, improved: float) -> float:
    """Relative improvement of ``improved`` over ``baseline`` in percent.

    Positive when ``improved`` is lower (better) than ``baseline``; this
    is how the paper reports "SDSL improves the latency by more than
    27%".
    """
    if baseline <= 0:
        raise SchemeError(f"baseline must be > 0, got {baseline}")
    return (baseline - improved) / baseline * 100.0


def latency_by_subset(
    result: SimulationResult,
    subsets: Dict[str, Sequence[NodeId]],
) -> Dict[str, float]:
    """Average latency per named cache subset (e.g. nearest/farthest 50)."""
    out: Dict[str, float] = {}
    for name, caches in subsets.items():
        out[name] = result.average_latency_ms(caches)
    return out
