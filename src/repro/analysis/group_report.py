"""Per-group breakdown of a simulation run.

Aggregates the per-cache simulator counters group by group — the view a
GF-Coordinator operator looks at to see *which* groups work and which
don't (e.g. a far-from-origin group with a poor hit rate is a
re-clustering candidate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.analysis.gicost import group_interaction_cost
from repro.errors import SchemeError
from repro.simulator.runner import SimulationResult
from repro.utils.stats import OnlineStats
from repro.utils.tables import Table


@dataclass(frozen=True)
class GroupSummary:
    """Aggregated behaviour of one cooperative group."""

    group_id: int
    size: int
    requests: int
    mean_latency_ms: float
    local_hit_share: float
    group_hit_share: float
    origin_share: float
    gicost_ms: float
    mean_server_distance_ms: float


def summarize_groups(result: SimulationResult) -> List[GroupSummary]:
    """One :class:`GroupSummary` per group of the simulated grouping."""
    summaries: List[GroupSummary] = []
    network = result.network
    for group in result.grouping.groups:
        latency = OnlineStats()
        local = group_hits = origin = 0
        for member in group.members:
            stats = result.metrics.cache_stats(member)
            latency = latency.merge(stats.latency)
            local += stats.local_hits
            group_hits += stats.group_hits
            origin += stats.origin_fetches
        requests = local + group_hits + origin
        if requests == 0:
            raise SchemeError(
                f"group {group.group_id} served no counted requests"
            )
        summaries.append(
            GroupSummary(
                group_id=group.group_id,
                size=group.size,
                requests=requests,
                mean_latency_ms=latency.mean,
                local_hit_share=local / requests,
                group_hit_share=group_hits / requests,
                origin_share=origin / requests,
                gicost_ms=group_interaction_cost(network, group),
                mean_server_distance_ms=float(
                    np.mean(
                        [network.server_distance(m) for m in group.members]
                    )
                ),
            )
        )
    return summaries


def group_report_table(result: SimulationResult) -> Table:
    """The per-group summaries as an aligned text table."""
    table = Table(
        [
            "group",
            "size",
            "requests",
            "latency_ms",
            "local",
            "group",
            "origin",
            "gicost_ms",
            "server_dist_ms",
        ]
    )
    for s in summarize_groups(result):
        table.add_row(
            [
                s.group_id,
                s.size,
                s.requests,
                s.mean_latency_ms,
                s.local_hit_share,
                s.group_hit_share,
                s.origin_share,
                s.gicost_ms,
                s.mean_server_distance_ms,
            ]
        )
    return table
