"""Average group interaction cost (paper Section 2).

``ICost(Ec_i, Ec_j)`` is "the cost of transferring an average sized
document between edge caches Ec_i and Ec_j": one RTT plus the average
document's transfer time.  ``GICost(CGroup_l)`` averages that over all
member pairs, and the *average group interaction cost* of the network
averages over groups.  Lower is better; the paper uses it as the
clustering-accuracy measure throughout Figures 4–7.

Singleton groups have no pairs and contribute 0 interaction cost (they
also get no cooperation benefit, which the latency metric captures).
"""

from __future__ import annotations

from itertools import combinations

from repro.core.groups import CacheGroup, GroupingResult
from repro.errors import SchemeError
from repro.topology.network import EdgeCacheNetwork


def interaction_cost(
    network: EdgeCacheNetwork,
    a: int,
    b: int,
    avg_doc_transfer_ms: float = 0.0,
) -> float:
    """ICost between two caches: RTT plus average-document transfer."""
    if avg_doc_transfer_ms < 0:
        raise SchemeError(
            f"avg_doc_transfer_ms must be >= 0, got {avg_doc_transfer_ms}"
        )
    return network.rtt(a, b) + avg_doc_transfer_ms


def group_interaction_cost(
    network: EdgeCacheNetwork,
    group: CacheGroup,
    avg_doc_transfer_ms: float = 0.0,
) -> float:
    """GICost of one group: mean pairwise ICost (0 for singletons)."""
    if group.size < 2:
        return 0.0
    costs = [
        interaction_cost(network, a, b, avg_doc_transfer_ms)
        for a, b in combinations(group.members, 2)
    ]
    return sum(costs) / len(costs)


def average_group_interaction_cost(
    network: EdgeCacheNetwork,
    grouping: GroupingResult,
    avg_doc_transfer_ms: float = 0.0,
    skip_singletons: bool = False,
) -> float:
    """Mean GICost over the groups of a grouping.

    ``skip_singletons`` drops size-1 groups from the average instead of
    counting them as zero — useful when comparing groupings whose K
    differ wildly, at the cost of diverging from the paper's literal
    definition (which averages over all groups).
    """
    groups = grouping.groups
    if skip_singletons:
        groups = tuple(g for g in groups if g.size >= 2)
        if not groups:
            return 0.0
    costs = [
        group_interaction_cost(network, g, avg_doc_transfer_ms)
        for g in groups
    ]
    return sum(costs) / len(costs)
