"""Compare two experiment results (e.g. archived runs across commits).

``compare_results`` aligns two :class:`ExperimentResult` objects on
their shared x-values and series, and reports per-point deltas plus a
regression verdict per series — the piece that turns archived JSON
results into a CI-able reproduction check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.report import ExperimentResult
from repro.errors import ReproError
from repro.utils.tables import Table


@dataclass(frozen=True)
class SeriesComparison:
    """Delta of one series between a baseline and a candidate run."""

    name: str
    x_values: Tuple
    baseline: Tuple[float, ...]
    candidate: Tuple[float, ...]

    @property
    def relative_deltas(self) -> Tuple[float, ...]:
        """Per-point (candidate - baseline) / baseline."""
        out = []
        for b, c in zip(self.baseline, self.candidate):
            if b == 0:
                out.append(float("inf") if c != 0 else 0.0)
            else:
                out.append((c - b) / b)
        return tuple(out)

    def max_abs_relative_delta(self) -> float:
        deltas = [abs(d) for d in self.relative_deltas]
        return max(deltas) if deltas else 0.0

    def regressed(self, tolerance: float = 0.15) -> bool:
        """True if any point moved *upward* beyond ``tolerance``.

        One-sided: lower latency/GICost is an improvement, not a
        regression, so only increases count.
        """
        if tolerance < 0:
            raise ReproError(f"tolerance must be >= 0, got {tolerance}")
        return any(d > tolerance for d in self.relative_deltas)


@dataclass(frozen=True)
class ComparisonReport:
    """All aligned series of one experiment pair."""

    experiment_id: str
    series: Tuple[SeriesComparison, ...]

    def regressions(self, tolerance: float = 0.15) -> List[str]:
        """Names of series that regressed beyond the tolerance."""
        return [s.name for s in self.series if s.regressed(tolerance)]

    def to_table(self) -> Table:
        table = Table(
            ["series", "x", "baseline", "candidate", "delta_pct"]
        )
        for series in self.series:
            for i, x in enumerate(series.x_values):
                delta = series.relative_deltas[i] * 100.0
                table.add_row(
                    [
                        series.name,
                        x,
                        series.baseline[i],
                        series.candidate[i],
                        delta,
                    ]
                )
        return table

    def render(self) -> str:
        lines = [f"== comparison: {self.experiment_id} =="]
        lines.append(self.to_table().render())
        regressed = self.regressions()
        if regressed:
            lines.append(f"REGRESSED: {', '.join(regressed)}")
        else:
            lines.append("no regressions")
        return "\n".join(lines)


def compare_results(
    baseline: ExperimentResult,
    candidate: ExperimentResult,
) -> ComparisonReport:
    """Align two results and compute per-series comparisons.

    Alignment is on shared x-values (in baseline order) and shared
    series names; a pair with no overlap at all is an error.
    """
    if baseline.experiment_id != candidate.experiment_id:
        raise ReproError(
            f"cannot compare {baseline.experiment_id!r} with "
            f"{candidate.experiment_id!r}"
        )
    candidate_x = {x: i for i, x in enumerate(candidate.x_values)}
    shared_x = [x for x in baseline.x_values if x in candidate_x]
    if not shared_x:
        raise ReproError("results share no x-values")
    candidate_series = {s.name: s for s in candidate.series}
    comparisons = []
    for base_series in baseline.series:
        other = candidate_series.get(base_series.name)
        if other is None:
            continue
        base_index = {x: i for i, x in enumerate(baseline.x_values)}
        comparisons.append(
            SeriesComparison(
                name=base_series.name,
                x_values=tuple(shared_x),
                baseline=tuple(
                    float(base_series.values[base_index[x]])
                    for x in shared_x
                ),
                candidate=tuple(
                    float(other.values[candidate_x[x]]) for x in shared_x
                ),
            )
        )
    if not comparisons:
        raise ReproError("results share no series")
    return ComparisonReport(
        experiment_id=baseline.experiment_id, series=tuple(comparisons)
    )
