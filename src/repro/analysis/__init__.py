"""Evaluation metrics and result reporting.

* :mod:`repro.analysis.gicost` — the paper's *average group interaction
  cost* (clustering-accuracy metric, Figures 4–7);
* :mod:`repro.analysis.latency` — latency comparisons between schemes
  (Figures 3, 8, 9);
* :mod:`repro.analysis.report` — experiment result containers and table
  rendering shared by the benchmark harness.
"""

from repro.analysis.compare import (
    ComparisonReport,
    SeriesComparison,
    compare_results,
)
from repro.analysis.gicost import (
    average_group_interaction_cost,
    group_interaction_cost,
)
from repro.analysis.group_report import (
    GroupSummary,
    group_report_table,
    summarize_groups,
)
from repro.analysis.latency import improvement_percent, latency_by_subset
from repro.analysis.report import ExperimentResult, SeriesResult

__all__ = [
    "group_interaction_cost",
    "average_group_interaction_cost",
    "improvement_percent",
    "latency_by_subset",
    "ExperimentResult",
    "SeriesResult",
    "ComparisonReport",
    "SeriesComparison",
    "compare_results",
    "GroupSummary",
    "summarize_groups",
    "group_report_table",
]
