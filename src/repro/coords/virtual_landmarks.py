"""Virtual landmarks: Lipschitz embedding + PCA (extension).

Tang & Crovella (IMC 2003), cited by the paper: treat each node's vector
of RTTs-to-landmarks as a Lipschitz embedding, then project onto the top
principal components to obtain a compact coordinate space.  This sits
between the paper's raw feature vectors (no projection) and GNP
(non-linear optimisation): it is linear, deterministic, and cheap.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import EmbeddingError
from repro.landmarks.feature_vectors import FeatureVectors


def virtual_landmark_embedding(
    features: FeatureVectors,
    dimensions: Optional[int] = None,
    center: bool = True,
) -> np.ndarray:
    """Project feature vectors onto their top principal components.

    Returns an ``(n, dimensions)`` coordinate array, row order matching
    ``features.nodes``.  ``dimensions`` defaults to the number of
    components explaining 95% of the variance (at least 2).
    """
    matrix = np.asarray(features.matrix, dtype=float)
    n, num_features = matrix.shape
    if n < 2:
        raise EmbeddingError("need at least 2 nodes to embed")
    if dimensions is not None and not 1 <= dimensions <= num_features:
        raise EmbeddingError(
            f"dimensions must be in [1, {num_features}], got {dimensions}"
        )

    data = matrix - matrix.mean(axis=0) if center else matrix
    # SVD of the (n, num_features) data matrix: principal axes are the right
    # singular vectors; projections are U * S.
    u, s, _vt = np.linalg.svd(data, full_matrices=False)
    if dimensions is None:
        total = float((s**2).sum())
        if total == 0.0:
            dimensions = min(2, s.size)
        else:
            explained = np.cumsum(s**2) / total
            dimensions = max(2, int(np.searchsorted(explained, 0.95) + 1))
            dimensions = min(dimensions, s.size)
    return u[:, :dimensions] * s[:dimensions]
