"""GNP-style Euclidean coordinate embedding (paper Section 5.2 baseline).

Global Network Positioning (Ng & Zhang, INFOCOM 2002) maps hosts into a
D-dimensional Euclidean space in two phases:

1. the landmarks embed *themselves* by minimising the total squared
   relative error between measured inter-landmark RTTs and coordinate
   (L2) distances;
2. every other host solves the same least-squares problem against the
   now-fixed landmark coordinates, using only its own measured RTTs to
   the landmarks.

Both phases use ``scipy.optimize.minimize`` (L-BFGS-B), with multiple
random restarts for the (non-convex) landmark phase.  The paper's
Figure 7 compares K-means on these coordinates against K-means on raw
feature vectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import optimize

from repro.config import GNPConfig
from repro.errors import EmbeddingError
from repro.landmarks.feature_vectors import FeatureVectors
from repro.probing.prober import Prober
from repro.utils.rng import SeedLike, spawn_rng


@dataclass(frozen=True)
class GNPEmbedding:
    """Result of a GNP embedding.

    ``landmark_coords[j]`` positions landmark ``j`` (ordered as in the
    landmark set); ``node_coords[i]`` positions node ``i`` (ordered as in
    the feature-vector node tuple).  ``landmark_fit_error`` is the mean
    relative error of the landmark self-embedding.
    """

    nodes: tuple
    node_coords: np.ndarray
    landmark_coords: np.ndarray
    landmark_fit_error: float

    def __post_init__(self) -> None:
        if self.node_coords.shape[0] != len(self.nodes):
            raise EmbeddingError(
                f"{self.node_coords.shape[0]} coordinate rows for "
                f"{len(self.nodes)} nodes"
            )
        self.node_coords.setflags(write=False)
        self.landmark_coords.setflags(write=False)

    @property
    def dimensions(self) -> int:
        return self.node_coords.shape[1]

    def coordinate_distance(self, i: int, j: int) -> float:
        """L2 distance between two embedded nodes (by row index)."""
        return float(
            np.linalg.norm(self.node_coords[i] - self.node_coords[j])
        )


def _relative_error_sum(distances_pred: np.ndarray, measured: np.ndarray) -> float:
    """GNP's objective: sum of squared *relative* errors.

    Relative (normalised by the measured value) so short paths are not
    drowned out by long ones.
    """
    mask = measured > 0
    if not mask.any():
        return 0.0
    err = (distances_pred[mask] - measured[mask]) / measured[mask]
    return float((err**2).sum())


def _embed_landmarks(
    measured: np.ndarray,
    dims: int,
    max_iterations: int,
    restarts: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Phase 1: landmarks position themselves (non-convex, restarted).

    The objective hands L-BFGS-B its analytic gradient: for each pair
    ``p = (i, j)`` with relative error ``e_p = (|ci-cj| - d_p)/d_p``,
    ``dF/dci = sum_p 2 e_p/d_p * (ci-cj)/|ci-cj|``.  Without it the
    optimiser falls back to finite differences — ``count*dims + 1``
    objective evaluations per step — which used to dominate the whole
    Figure 7 run.
    """
    count = measured.shape[0]
    scale = float(measured.max()) or 1.0

    iu, ju = np.triu_indices(count, k=1)
    target = measured[iu, ju]
    positive = target > 0

    def objective(flat: np.ndarray):
        coords = flat.reshape(count, dims)
        diff = coords[iu] - coords[ju]
        dist = np.linalg.norm(diff, axis=1)
        err = np.zeros_like(dist)
        err[positive] = (dist[positive] - target[positive]) / target[positive]
        value = float((err[positive] ** 2).sum())
        # d(value)/d(dist) per pair, guarded where |ci-cj| == 0 (the
        # objective is non-differentiable there; a zero subgradient
        # keeps L-BFGS-B stable).
        weight = np.zeros_like(dist)
        weight[positive] = 2.0 * err[positive] / target[positive]
        nonzero = dist > 0
        coef = np.where(nonzero, weight / np.where(nonzero, dist, 1.0), 0.0)
        contrib = diff * coef[:, None]
        grad = np.zeros_like(coords)
        np.add.at(grad, iu, contrib)
        np.add.at(grad, ju, -contrib)
        return value, grad.ravel()

    best_coords: Optional[np.ndarray] = None
    best_value = np.inf
    for _ in range(restarts):
        start = rng.normal(0.0, scale / 2.0, size=count * dims)
        result = optimize.minimize(
            objective, start, method="L-BFGS-B", jac=True,
            options={"maxiter": max_iterations},
        )
        if result.fun < best_value:
            best_value = float(result.fun)
            best_coords = result.x.reshape(count, dims)
    if best_coords is None:
        raise EmbeddingError("landmark embedding produced no solution")
    return best_coords


def _embed_node(
    rtts_to_landmarks: np.ndarray,
    landmark_coords: np.ndarray,
    max_iterations: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Phase 2: one node positions itself against fixed landmarks.

    Same analytic-gradient treatment as phase 1, specialised to a
    single moving point against fixed landmark coordinates.
    """
    dims = landmark_coords.shape[1]
    positive = rtts_to_landmarks > 0
    target = rtts_to_landmarks[positive]
    anchors = landmark_coords[positive]

    def objective(coord: np.ndarray):
        diff = coord[None, :] - anchors
        dist = np.linalg.norm(diff, axis=1)
        err = (dist - target) / target
        value = float((err**2).sum())
        weight = 2.0 * err / target
        nonzero = dist > 0
        coef = np.where(nonzero, weight / np.where(nonzero, dist, 1.0), 0.0)
        grad = (diff * coef[:, None]).sum(axis=0)
        return value, grad

    # Start at the centroid of the landmarks, lightly perturbed.
    start = landmark_coords.mean(axis=0) + rng.normal(0.0, 1.0, size=dims)
    if not positive.any():
        return start
    result = optimize.minimize(
        objective, start, method="L-BFGS-B", jac=True,
        options={"maxiter": max_iterations},
    )
    return result.x


def embed_gnp(
    prober: Prober,
    features: FeatureVectors,
    config: Optional[GNPConfig] = None,
    seed: SeedLike = None,
) -> GNPEmbedding:
    """Embed all feature-vector nodes into GNP Euclidean coordinates.

    Reuses the already-measured node→landmark RTTs from ``features``
    (both schemes in the paper's Figure 7 share "the same sets of 25
    landmarks"); only inter-landmark RTTs are probed afresh here.
    """
    config = config or GNPConfig()
    config.validate()
    rng = spawn_rng(seed)

    landmarks = list(features.landmarks)
    if config.dimensions >= len(landmarks):
        raise EmbeddingError(
            f"GNP needs dimensions < number of landmarks "
            f"({config.dimensions} >= {len(landmarks)})"
        )
    inter_landmark = prober.measure_matrix(landmarks)
    landmark_coords = _embed_landmarks(
        inter_landmark,
        config.dimensions,
        config.max_iterations,
        config.landmark_restarts,
        rng,
    )

    pred = np.linalg.norm(
        landmark_coords[:, None, :] - landmark_coords[None, :, :], axis=2
    )
    iu, ju = np.triu_indices(len(landmarks), k=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        rel = np.abs(pred[iu, ju] - inter_landmark[iu, ju]) / np.where(
            inter_landmark[iu, ju] > 0, inter_landmark[iu, ju], 1.0
        )
    fit_error = float(rel.mean()) if rel.size else 0.0

    node_coords = np.empty((len(features.nodes), config.dimensions))
    for row in range(len(features.nodes)):
        node_coords[row] = _embed_node(
            features.matrix[row],
            landmark_coords,
            config.max_iterations,
            rng,
        )
    return GNPEmbedding(
        nodes=features.nodes,
        node_coords=node_coords,
        landmark_coords=landmark_coords,
        landmark_fit_error=fit_error,
    )
