"""Network coordinate embeddings.

* :mod:`repro.coords.gnp` — Global Network Positioning-style
  least-squares Euclidean embedding (the paper's Section 5.2 baseline);
* :mod:`repro.coords.vivaldi` — Vivaldi spring-relaxation coordinates
  (extension; cited by the paper as related work);
* :mod:`repro.coords.virtual_landmarks` — Lipschitz embedding + PCA à la
  Tang & Crovella (extension).
"""

from repro.coords.gnp import GNPEmbedding, embed_gnp
from repro.coords.vivaldi import VivaldiCoordinates
from repro.coords.virtual_landmarks import virtual_landmark_embedding

__all__ = [
    "GNPEmbedding",
    "embed_gnp",
    "VivaldiCoordinates",
    "virtual_landmark_embedding",
]
