"""Vivaldi decentralised network coordinates (extension).

Dabek et al., SIGCOMM 2004 — cited by the paper as related work.  Each
node maintains a D-dimensional coordinate and a confidence weight; on
observing an RTT sample to a peer it nudges its coordinate along the
error gradient, like a relaxing spring network.  Included so ablation
benches can compare a decentralised embedding against GNP and raw
feature vectors for the cache-grouping task.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import EmbeddingError
from repro.probing.prober import Prober
from repro.types import NodeId
from repro.utils.rng import SeedLike, spawn_rng


class VivaldiCoordinates:
    """A Vivaldi coordinate system over a fixed node population."""

    def __init__(
        self,
        nodes: Sequence[NodeId],
        dimensions: int = 3,
        ce: float = 0.25,
        cc: float = 0.25,
        seed: SeedLike = None,
    ) -> None:
        if dimensions < 1:
            raise EmbeddingError("dimensions must be >= 1")
        if not 0 < ce <= 1 or not 0 < cc <= 1:
            raise EmbeddingError("ce and cc must be in (0, 1]")
        nodes = list(nodes)
        if len(nodes) < 2:
            raise EmbeddingError("Vivaldi needs at least two nodes")
        self._nodes: Tuple[NodeId, ...] = tuple(nodes)
        self._index = {n: i for i, n in enumerate(nodes)}
        self._dims = dimensions
        self._ce = ce
        self._cc = cc
        rng = spawn_rng(seed)
        # Small random start breaks the all-at-origin symmetry.
        self._coords = rng.normal(0.0, 1.0, size=(len(nodes), dimensions))
        self._error = np.ones(len(nodes), dtype=float)
        self._rng = rng

    @property
    def nodes(self) -> Tuple[NodeId, ...]:
        return self._nodes

    @property
    def coordinates(self) -> np.ndarray:
        """Current coordinates (copy), row order matching ``nodes``."""
        return self._coords.copy()

    def observe(self, a: NodeId, b: NodeId, rtt_ms: float) -> None:
        """Fold one RTT sample into node ``a``'s coordinate (Vivaldi update)."""
        if rtt_ms < 0:
            raise EmbeddingError(f"rtt cannot be negative: {rtt_ms}")
        i, j = self._row(a), self._row(b)
        diff = self._coords[i] - self._coords[j]
        dist = float(np.linalg.norm(diff))
        if dist == 0.0:
            direction = self._rng.normal(size=self._dims)
            direction /= np.linalg.norm(direction)
            dist = 1e-6
        else:
            direction = diff / dist

        sample_err = abs(dist - rtt_ms) / rtt_ms if rtt_ms > 0 else 0.0
        w = self._error[i] / max(self._error[i] + self._error[j], 1e-12)
        self._error[i] = min(
            1.0, sample_err * self._ce * w + self._error[i] * (1 - self._ce * w)
        )
        delta = self._cc * w
        self._coords[i] += delta * (rtt_ms - dist) * direction

    def run(
        self,
        prober: Prober,
        rounds: int = 20,
        neighbors_per_round: int = 8,
    ) -> None:
        """Drive the system: each round, every node samples random peers."""
        if rounds < 1 or neighbors_per_round < 1:
            raise EmbeddingError("rounds and neighbors_per_round must be >= 1")
        count = len(self._nodes)
        for _ in range(rounds):
            for i, node in enumerate(self._nodes):
                picks = self._rng.choice(
                    count, size=min(neighbors_per_round, count - 1), replace=False
                )
                for j in picks:
                    if int(j) == i:
                        continue
                    peer = self._nodes[int(j)]
                    self.observe(node, peer, prober.measure(node, peer))

    def distance(self, a: NodeId, b: NodeId) -> float:
        """Predicted RTT between two nodes (coordinate L2 distance)."""
        return float(
            np.linalg.norm(self._coords[self._row(a)] - self._coords[self._row(b)])
        )

    def mean_relative_error(self, prober: Prober, samples: int = 200) -> float:
        """Embedding quality: mean |predicted - measured| / measured."""
        count = len(self._nodes)
        errors = []
        for _ in range(samples):
            i, j = self._rng.choice(count, size=2, replace=False)
            a, b = self._nodes[int(i)], self._nodes[int(j)]
            measured = prober.measure(a, b)
            if measured <= 0:
                continue
            errors.append(abs(self.distance(a, b) - measured) / measured)
        if not errors:
            raise EmbeddingError("no valid samples for error estimate")
        return float(np.mean(errors))

    def _row(self, node: NodeId) -> int:
        try:
            return self._index[node]
        except KeyError:
            raise EmbeddingError(f"node {node} not in the Vivaldi system") from None
