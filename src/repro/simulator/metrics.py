"""Simulation metrics collection.

Per-cache and network-wide aggregates of everything the paper measures:
average edge cache latency, hit-rate decomposition (local / group /
origin), cooperation traffic (query messages, peer bytes), and
consistency traffic (invalidation messages), plus latency percentiles
over all counted requests (fixed-bin histogram, O(1) memory).

Zero-denominator convention: ratio accessors over a sub-population that
can legitimately be empty — a single cache's :meth:`CacheStats.hit_rate`
(no requests arrived there) and :meth:`SimulationMetrics.group_hit_rate`
(no misses at all) — return ``0.0``.  Network-wide accessors that are
meaningless before any counted request (``average_latency_ms``,
``hit_rates``, ``stale_serve_fraction``, ``latency_percentile``) raise
:class:`SimulationError`, because calling them on an empty run is a
usage bug rather than a boundary case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.errors import SimulationError
from repro.simulator.latency import ServiceAccount, ServicePath
from repro.types import NodeId
from repro.utils.stats import FixedBinHistogram, OnlineStats


@dataclass
class CacheStats:
    """Mutable per-cache counters."""

    latency: OnlineStats = field(default_factory=OnlineStats)
    local_hits: int = 0
    group_hits: int = 0
    origin_fetches: int = 0
    query_messages: int = 0
    peer_bytes: int = 0
    origin_bytes: int = 0
    invalidations_received: int = 0
    #: requests served from a copy older than the origin's version
    #: (possible under TTL consistency; always 0 under invalidation)
    stale_serves: int = 0
    #: fetched documents deliberately not stored locally because a
    #: nearby group peer holds them (cooperative placement)
    placement_skips: int = 0
    #: requests that arrived while this cache was failed (served by
    #: falling through to the origin)
    requests_while_down: int = 0
    #: origin fetches that first waited out a partition timeout because
    #: this cache was cut off from the origin
    partition_timeouts: int = 0

    @property
    def requests(self) -> int:
        return self.local_hits + self.group_hits + self.origin_fetches

    def hit_rate(self) -> float:
        """Fraction of requests served without touching the origin.

        Returns ``0.0`` for a cache that saw no requests (see the
        module's zero-denominator convention).
        """
        if self.requests == 0:
            return 0.0
        return (self.local_hits + self.group_hits) / self.requests


class SimulationMetrics:
    """Collects per-cache stats and network-wide aggregates."""

    def __init__(self, cache_nodes: Sequence[NodeId]) -> None:
        if not cache_nodes:
            raise SimulationError("metrics need at least one cache")
        self._per_cache: Dict[NodeId, CacheStats] = {
            node: CacheStats() for node in cache_nodes
        }
        self._warmup_skipped = 0
        self._invalidation_messages = 0
        self._latency_hist = FixedBinHistogram()

    # -- recording ------------------------------------------------------

    def record_request(
        self,
        cache: NodeId,
        account: ServiceAccount,
        messages: int,
        size_bytes: int,
        counted: bool,
        stale: bool = False,
    ) -> None:
        """Fold one served request into the stats.

        ``counted=False`` marks warm-up requests: state-changing side
        effects already happened, only the metrics skip them.
        ``stale`` marks a request served from an out-of-date copy.
        """
        stats = self._stats(cache)
        if not counted:
            self._warmup_skipped += 1
            return
        stats.latency.add(account.total_ms)
        self._latency_hist.add(account.total_ms)
        stats.query_messages += messages
        if stale:
            stats.stale_serves += 1
        if account.path is ServicePath.LOCAL_HIT:
            stats.local_hits += 1
        elif account.path is ServicePath.GROUP_HIT:
            stats.group_hits += 1
            stats.peer_bytes += size_bytes
        elif account.path is ServicePath.ORIGIN_FETCH:
            stats.origin_fetches += 1
            stats.origin_bytes += size_bytes
        else:  # pragma: no cover - enum is closed
            raise SimulationError(f"unknown service path {account.path}")

    def record_invalidation(self, cache: NodeId) -> None:
        self._stats(cache).invalidations_received += 1
        self._invalidation_messages += 1

    def absorb_batched(
        self,
        rows: Dict[NodeId, tuple],
        warmup_skipped: int,
        hist_state: tuple,
    ) -> None:
        """Fold the batched event loop's accumulated counters in.

        The batched loop (:mod:`repro.simulator.batched`) accumulates
        per-cache counters and latency moments in flat slots — running
        the exact same arithmetic :meth:`record_request` would, in the
        same order — and folds them in here once at end of run.  Each
        row is ``(lat_count, lat_mean, lat_m2, lat_min, lat_max,
        local_hits, group_hits, origin_fetches, query_messages,
        peer_bytes, origin_bytes, stale_serves, placement_skips,
        requests_while_down, partition_timeouts)``; ``hist_state`` is
        the global latency histogram's
        :meth:`~repro.utils.stats.FixedBinHistogram.restore` payload.
        Counter fields add onto whatever is already recorded (the
        invalidation counters are maintained live at update barriers),
        but the latency accumulators must still be pristine.
        """
        for node, row in rows.items():
            stats = self._stats(node)
            (
                lat_count, lat_mean, lat_m2, lat_min, lat_max,
                local, group, origin, qmsgs, peer_bytes, origin_bytes,
                stale, skips, down, ptimeouts,
            ) = row
            stats.latency.restore(
                lat_count, lat_mean, lat_m2, lat_min, lat_max
            )
            stats.local_hits += local
            stats.group_hits += group
            stats.origin_fetches += origin
            stats.query_messages += qmsgs
            stats.peer_bytes += peer_bytes
            stats.origin_bytes += origin_bytes
            stats.stale_serves += stale
            stats.placement_skips += skips
            stats.requests_while_down += down
            stats.partition_timeouts += ptimeouts
        self._warmup_skipped += warmup_skipped
        self._latency_hist.restore(*hist_state)

    # -- aggregates -------------------------------------------------------

    @property
    def warmup_skipped(self) -> int:
        return self._warmup_skipped

    @property
    def invalidation_messages(self) -> int:
        return self._invalidation_messages

    def cache_stats(self, cache: NodeId) -> CacheStats:
        return self._stats(cache)

    def cache_nodes(self) -> List[NodeId]:
        return list(self._per_cache)

    def total_requests(self) -> int:
        return sum(s.requests for s in self._per_cache.values())

    def average_latency_ms(
        self, caches: Sequence[NodeId] = ()
    ) -> float:
        """Mean request latency over a subset of caches (default: all).

        This is the paper's *average cache latency*: the mean over all
        (counted) requests arriving at the selected caches.
        """
        selected = list(caches) if caches else list(self._per_cache)
        merged = OnlineStats()
        for cache in selected:
            merged = merged.merge(self._stats(cache).latency)
        if merged.count == 0:
            raise SimulationError(
                "no counted requests at the selected caches"
            )
        return merged.mean

    def latency_percentile(self, q: float) -> float:
        """Approximate latency percentile over all counted requests.

        Backed by a fixed-bin histogram (see
        :class:`repro.utils.stats.FixedBinHistogram`), so accuracy is
        bounded by the bin width but memory stays O(1) regardless of
        the request count.
        """
        if self._latency_hist.count == 0:
            raise SimulationError("no counted requests recorded")
        return self._latency_hist.percentile(q)

    def latency_p95_ms(self) -> float:
        """The p95 request latency over all counted requests."""
        return self.latency_percentile(95.0)

    def hit_rates(self) -> Dict[str, float]:
        """Network-wide local/group/origin shares of counted requests."""
        total = self.total_requests()
        if total == 0:
            raise SimulationError("no counted requests recorded")
        local = sum(s.local_hits for s in self._per_cache.values())
        group = sum(s.group_hits for s in self._per_cache.values())
        origin = sum(s.origin_fetches for s in self._per_cache.values())
        return {
            "local": local / total,
            "group": group / total,
            "origin": origin / total,
        }

    def stale_serve_fraction(self) -> float:
        """Fraction of counted requests served from an out-of-date copy."""
        total = self.total_requests()
        if total == 0:
            raise SimulationError("no counted requests recorded")
        stale = sum(s.stale_serves for s in self._per_cache.values())
        return stale / total

    def group_hit_rate(self) -> float:
        """Fraction of local misses resolved within the group.

        Returns ``0.0`` when there were no misses at all (see the
        module's zero-denominator convention).
        """
        group = sum(s.group_hits for s in self._per_cache.values())
        origin = sum(s.origin_fetches for s in self._per_cache.values())
        misses = group + origin
        if misses == 0:
            return 0.0
        return group / misses

    def conservation_holds(self) -> bool:
        """Invariant: hits + group hits + origin fetches == requests."""
        return all(
            s.local_hits + s.group_hits + s.origin_fetches == s.requests
            for s in self._per_cache.values()
        )

    def _stats(self, cache: NodeId) -> CacheStats:
        try:
            return self._per_cache[cache]
        except KeyError:
            raise SimulationError(f"unknown cache {cache}") from None
