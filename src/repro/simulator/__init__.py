"""Discrete event simulator of a cooperative edge cache network.

Models the system the paper evaluates on (Section 5):

* request-log-driven :class:`EdgeCache` instances with utility-based
  document placement and replacement (per "Cache Clouds", ICDCS 2005);
* an :class:`OriginServer` driven by an update log, with server-driven
  invalidation of cached dynamic documents;
* ICP-style cooperative miss handling within each cache group
  (:mod:`repro.simulator.group_proto`);
* a latency model charging network RTTs, transfer times, and processing
  overheads per request (:mod:`repro.simulator.latency`).

The top-level entry point is :func:`repro.simulator.runner.simulate`.
"""

from repro.simulator.events import (
    CacheFailEvent,
    CacheRecoverEvent,
    EventQueue,
    OriginUpdateEvent,
    RequestEvent,
)
from repro.simulator.replacement import (
    LFUPolicy,
    LRUPolicy,
    ReplacementPolicy,
    UtilityPolicy,
    make_policy,
)
from repro.simulator.cache import CachedDocument, EdgeCache
from repro.simulator.origin import OriginServer
from repro.simulator.group_proto import GroupProtocol, LookupOutcome
from repro.simulator.latency import LatencyModel, ServicePath
from repro.simulator.metrics import CacheStats, SimulationMetrics
from repro.simulator.engine import SimulationEngine
from repro.simulator.runner import SimulationResult, simulate

__all__ = [
    "EventQueue",
    "RequestEvent",
    "OriginUpdateEvent",
    "CacheFailEvent",
    "CacheRecoverEvent",
    "ReplacementPolicy",
    "UtilityPolicy",
    "LRUPolicy",
    "LFUPolicy",
    "make_policy",
    "EdgeCache",
    "CachedDocument",
    "OriginServer",
    "GroupProtocol",
    "LookupOutcome",
    "LatencyModel",
    "ServicePath",
    "CacheStats",
    "SimulationMetrics",
    "SimulationEngine",
    "SimulationResult",
    "simulate",
]
