"""Document replacement policies.

The paper's caches "implement utility-based document placement and
replacement schemes" citing Cache Clouds (ICDCS 2005):
:class:`UtilityPolicy` scores each cached document by

    utility = (access_count * last_fetch_cost_ms)
              / (size_bytes * (1 + invalidation_count))

— frequently used documents that are expensive to re-fetch are worth
keeping; large documents that keep getting invalidated by origin
updates are not.  Eviction removes the lowest-utility document.

:class:`LRUPolicy` and :class:`LFUPolicy` are classic baselines for the
replacement-policy ablation bench.

All policies share one interface driven by the cache: ``on_insert``,
``on_access``, ``on_remove``, and ``select_victim``.  The utility and
LFU policies keep a lazily-invalidated min-heap so victim selection is
amortised ``O(log n)`` rather than a linear scan.
"""

from __future__ import annotations

import abc
import heapq
from collections import OrderedDict
from typing import Dict

from repro.errors import SimulationError
from repro.types import DocumentId


class ReplacementPolicy(abc.ABC):
    """Strategy interface for choosing eviction victims."""

    name: str = "abstract"

    @abc.abstractmethod
    def on_insert(
        self,
        doc_id: DocumentId,
        size_bytes: int,
        fetch_cost_ms: float,
        now_ms: float,
    ) -> None:
        """A document entered the cache."""

    @abc.abstractmethod
    def on_access(self, doc_id: DocumentId, now_ms: float) -> None:
        """A cached document served a hit."""

    @abc.abstractmethod
    def on_remove(self, doc_id: DocumentId, invalidated: bool) -> None:
        """A document left the cache (eviction or invalidation)."""

    @abc.abstractmethod
    def select_victim(self) -> DocumentId:
        """The document to evict next; cache must be non-empty."""

    def on_invalidation_feedback(self, doc_id: DocumentId) -> None:
        """A document of ours was invalidated (before removal).

        Utility-based policies use this to learn update rates; the
        default is a no-op.
        """

    @abc.abstractmethod
    def hot_state(self) -> Dict[str, object]:
        """The policy's mutable internals, for inline (batched) driving.

        The batched event loop replicates ``on_insert``/``on_access``/
        ``on_remove``/``select_victim`` as inline operations on these
        very structures, so a policy object stays consistent whether it
        was driven through methods or through the kernel — the
        loop-equivalence tests pin that the resulting evictions are
        bit-identical.  Keys are policy-specific (see each subclass).
        """


class LRUPolicy(ReplacementPolicy):
    """Evict the least recently used document."""

    name = "lru"

    def __init__(self) -> None:
        self._order: "OrderedDict[DocumentId, None]" = OrderedDict()

    def on_insert(
        self,
        doc_id: DocumentId,
        size_bytes: int,
        fetch_cost_ms: float,
        now_ms: float,
    ) -> None:
        if doc_id in self._order:
            raise SimulationError(f"doc {doc_id} inserted twice")
        self._order[doc_id] = None

    def on_access(self, doc_id: DocumentId, now_ms: float) -> None:
        self._require(doc_id)
        self._order.move_to_end(doc_id)

    def on_remove(self, doc_id: DocumentId, invalidated: bool) -> None:
        self._require(doc_id)
        del self._order[doc_id]

    def select_victim(self) -> DocumentId:
        if not self._order:
            raise SimulationError("victim selection on an empty cache")
        return next(iter(self._order))

    def _require(self, doc_id: DocumentId) -> None:
        if doc_id not in self._order:
            raise SimulationError(f"doc {doc_id} not tracked by LRU policy")

    def hot_state(self) -> Dict[str, object]:
        """``{"order"}`` — the recency-ordered ``OrderedDict``."""
        return {"order": self._order}


class _HeapScorePolicy(ReplacementPolicy):
    """Shared machinery: min-heap over a per-document score.

    Subclasses define :meth:`_score`; lower scores are evicted first.
    Heap entries carry a version number and are lazily discarded when
    they no longer match the document's current version (the standard
    stale-entry pattern, keeping updates ``O(log n)``).
    """

    def __init__(self) -> None:
        self._version: Dict[DocumentId, int] = {}
        self._heap: list = []

    @abc.abstractmethod
    def _score(self, doc_id: DocumentId) -> float:
        """Current eviction score of a tracked document (lower = evict)."""

    def _touch(self, doc_id: DocumentId) -> None:
        """Re-push the document with its current score."""
        self._version[doc_id] = self._version.get(doc_id, 0) + 1
        heapq.heappush(
            self._heap,
            (self._score(doc_id), self._version[doc_id], doc_id),
        )

    def _untrack(self, doc_id: DocumentId) -> None:
        del self._version[doc_id]

    def select_victim(self) -> DocumentId:
        while self._heap:
            _score, version, doc_id = self._heap[0]
            if self._version.get(doc_id) == version:
                return doc_id
            heapq.heappop(self._heap)  # stale entry
        raise SimulationError("victim selection on an empty cache")


class LFUPolicy(_HeapScorePolicy):
    """Evict the least frequently used document (ties by insertion)."""

    name = "lfu"

    def __init__(self) -> None:
        super().__init__()
        self._counts: Dict[DocumentId, int] = {}

    def _score(self, doc_id: DocumentId) -> float:
        return float(self._counts[doc_id])

    def on_insert(
        self,
        doc_id: DocumentId,
        size_bytes: int,
        fetch_cost_ms: float,
        now_ms: float,
    ) -> None:
        if doc_id in self._counts:
            raise SimulationError(f"doc {doc_id} inserted twice")
        self._counts[doc_id] = 1
        self._touch(doc_id)

    def on_access(self, doc_id: DocumentId, now_ms: float) -> None:
        if doc_id not in self._counts:
            raise SimulationError(f"doc {doc_id} not tracked by LFU policy")
        self._counts[doc_id] += 1
        self._touch(doc_id)

    def on_remove(self, doc_id: DocumentId, invalidated: bool) -> None:
        if doc_id not in self._counts:
            raise SimulationError(f"doc {doc_id} not tracked by LFU policy")
        del self._counts[doc_id]
        self._untrack(doc_id)

    def hot_state(self) -> Dict[str, object]:
        """``{"counts", "version", "heap"}`` — see ``_HeapScorePolicy``."""
        return {
            "counts": self._counts,
            "version": self._version,
            "heap": self._heap,
        }


class UtilityPolicy(_HeapScorePolicy):
    """Cache Clouds-style utility-based replacement."""

    name = "utility"

    def __init__(self) -> None:
        super().__init__()
        self._access: Dict[DocumentId, int] = {}
        self._size: Dict[DocumentId, int] = {}
        self._fetch_cost: Dict[DocumentId, float] = {}
        self._invalidations: Dict[DocumentId, int] = {}

    def utility_of(self, doc_id: DocumentId) -> float:
        """The document's current utility (exposed for tests/analysis)."""
        if doc_id not in self._access:
            raise SimulationError(f"doc {doc_id} not tracked by utility policy")
        return self._score(doc_id)

    def _score(self, doc_id: DocumentId) -> float:
        accesses = self._access[doc_id]
        cost = self._fetch_cost[doc_id]
        size = self._size[doc_id]
        invalidations = self._invalidations.get(doc_id, 0)
        return accesses * cost / (size * (1.0 + invalidations))

    def on_insert(
        self,
        doc_id: DocumentId,
        size_bytes: int,
        fetch_cost_ms: float,
        now_ms: float,
    ) -> None:
        if doc_id in self._access:
            raise SimulationError(f"doc {doc_id} inserted twice")
        if size_bytes <= 0:
            raise SimulationError(f"doc {doc_id} has size {size_bytes}")
        self._access[doc_id] = 1
        self._size[doc_id] = size_bytes
        # Re-fetch cost is at least a token cost even for free fetches.
        self._fetch_cost[doc_id] = max(fetch_cost_ms, 0.01)
        # Invalidation history survives re-insertion: a document that was
        # repeatedly invalidated remains a poor caching candidate.
        self._invalidations.setdefault(doc_id, 0)
        self._touch(doc_id)

    def on_access(self, doc_id: DocumentId, now_ms: float) -> None:
        if doc_id not in self._access:
            raise SimulationError(f"doc {doc_id} not tracked by utility policy")
        self._access[doc_id] += 1
        self._touch(doc_id)

    def on_invalidation_feedback(self, doc_id: DocumentId) -> None:
        self._invalidations[doc_id] = self._invalidations.get(doc_id, 0) + 1

    def on_remove(self, doc_id: DocumentId, invalidated: bool) -> None:
        if doc_id not in self._access:
            raise SimulationError(f"doc {doc_id} not tracked by utility policy")
        del self._access[doc_id]
        del self._size[doc_id]
        del self._fetch_cost[doc_id]
        self._untrack(doc_id)

    def hot_state(self) -> Dict[str, object]:
        """``{"access", "size", "fetch_cost", "invalidations", "version",
        "heap"}`` — the utility inputs plus the lazy heap."""
        return {
            "access": self._access,
            "size": self._size,
            "fetch_cost": self._fetch_cost,
            "invalidations": self._invalidations,
            "version": self._version,
            "heap": self._heap,
        }


def make_policy(name: str) -> ReplacementPolicy:
    """Instantiate a replacement policy by config name."""
    policies = {
        "utility": UtilityPolicy,
        "lru": LRUPolicy,
        "lfu": LFUPolicy,
    }
    try:
        return policies[name]()
    except KeyError:
        known = ", ".join(sorted(policies))
        raise SimulationError(
            f"unknown replacement policy {name!r}; known: {known}"
        ) from None
