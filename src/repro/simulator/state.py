"""Columnar cache state shared by every cache of one simulation run.

The :class:`CacheStore` is a struct-of-records view of *all* cache
contents: per cache a plain ``doc_id -> [size, stored_at, version]``
record table plus integer used-bytes/capacity columns.  One store is
shared by the whole run, which is what lets the batched event loop
(:mod:`repro.simulator.batched`) mutate cache state directly — no
per-document objects, no per-operation method dispatch — while
:class:`repro.simulator.cache.EdgeCache` stays alive as a thin
per-node *view* over the same records for the legacy loops and for
test/analysis inspection.

Records are plain lists (not dataclasses) because the batched kernel
creates one per admitted document on the hot path; index with the
``REC_*`` constants.  The numpy export helpers materialise the columnar
analysis surface (occupancy, residency, version matrices) on demand.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.types import DocumentId, NodeId

#: record field indices of one stored copy
REC_SIZE = 0
REC_STORED_AT = 1
REC_VERSION = 2


class CacheStore:
    """Struct-of-records storage for the contents of many caches.

    ``docs[node]`` maps each resident document to its mutable
    ``[size_bytes, stored_at_ms, version]`` record; ``used[node]`` and
    ``capacity[node]`` carry the byte accounting.  All three are plain
    dicts keyed by node id so a store works for any id scheme, while
    the engine's dense ``1..N`` ids let the batched kernel re-index
    them into node-indexed lists once per run.
    """

    __slots__ = ("docs", "used", "capacity")

    def __init__(self) -> None:
        self.docs: Dict[NodeId, Dict[DocumentId, List]] = {}
        self.used: Dict[NodeId, int] = {}
        self.capacity: Dict[NodeId, int] = {}

    def register(self, node: NodeId, capacity_bytes: int) -> None:
        """Add one (empty) cache slot; each node registers exactly once."""
        if capacity_bytes <= 0:
            raise SimulationError(
                f"cache {node} capacity must be > 0, got {capacity_bytes}"
            )
        if node in self.docs:
            raise SimulationError(
                f"cache {node} is already registered with this store"
            )
        self.docs[node] = {}
        self.used[node] = 0
        self.capacity[node] = capacity_bytes

    @property
    def nodes(self) -> List[NodeId]:
        """Registered nodes in registration order."""
        return list(self.docs)

    # -- numpy export surface ------------------------------------------

    def used_bytes_array(self, nodes: Sequence[NodeId]) -> np.ndarray:
        """Used bytes per cache as an int64 vector in ``nodes`` order."""
        return np.asarray(
            [self.used[node] for node in nodes], dtype=np.int64
        )

    def occupancy_fractions(self, nodes: Sequence[NodeId]) -> np.ndarray:
        """``used/capacity`` per cache as a float vector in ``nodes`` order."""
        return np.asarray(
            [self.used[node] / self.capacity[node] for node in nodes],
            dtype=float,
        )

    def residency_matrix(
        self, nodes: Sequence[NodeId], num_documents: int
    ) -> np.ndarray:
        """Boolean (cache, document) residency matrix in ``nodes`` order."""
        out = np.zeros((len(nodes), num_documents), dtype=bool)
        for row, node in enumerate(nodes):
            resident = list(self.docs[node])
            if resident:
                out[row, resident] = True
        return out

    def version_matrix(
        self, nodes: Sequence[NodeId], num_documents: int
    ) -> np.ndarray:
        """Stored version per (cache, document); -1 where not resident."""
        out = np.full((len(nodes), num_documents), -1, dtype=np.int64)
        for row, node in enumerate(nodes):
            for doc_id, record in self.docs[node].items():
                out[row, doc_id] = record[REC_VERSION]
        return out
