"""The data-oriented batched event loop (``event_loop="batched"``).

The legacy loops (:mod:`repro.simulator.engine`'s ``"sorted"`` and
``"heap"`` paths) dispatch one Python event object per step through a
handler table, paying object construction, method dispatch, and
per-event metric folds for every request.  This module replaces that
hot path with a *slice kernel* over :class:`~repro.simulator.events.
EventColumns`:

* Requests live as pre-extracted timestamp/cache/doc columns; no
  ``RequestEvent`` objects exist at all.
* The rare *barrier* events (origin updates, failures, recoveries,
  partition edges) split the request stream into causality-safe
  slices: between two barriers no cache fails, no partition moves and
  no origin version changes, so requests are processed in a tight
  loop with every per-run constant bound to a local.
* Cache state is driven inline: the kernel mutates the shared
  :class:`~repro.simulator.state.CacheStore` records and the
  replacement policies' :meth:`~repro.simulator.replacement.
  ReplacementPolicy.hot_state` structures directly, replaying *exactly*
  the operations the method path would have performed (same dict and
  heap mutations, same float expressions, same order).
* Metrics accumulate into flat per-cache slots (Welford recurrence and
  histogram binning inlined with identical arithmetic) and fold into
  :class:`~repro.simulator.metrics.SimulationMetrics` once at end of
  run; instrumented runs buffer trace rows per slice and mirror the
  sampler's next-due tick in a local so observation costs one compare
  per event.
* Barriers themselves run through the engine's legacy handlers — they
  are rare, and reusing the exact handler code on the exact shared
  state is what makes divergence structurally impossible there.

The contract — pinned by ``tests/simulator/test_batched_loop.py`` and
the PR 5 sanitize ledger — is that a batched run is *bit-identical* to
a ``"sorted"`` run: every metric, trace record, sample, and archived
figure byte.  Any optimisation that would change a single float
operation's order does not belong here.

The inline fast path covers the default ``"utility"`` replacement
policy and the ``"beacon"``/``"directory"`` protocols; LRU/LFU and
``"multicast"`` runs take the same slice loop but drive the policy or
lookup through the original (bound-method) code paths, trading a
little speed for zero duplication of rarely-hot logic.
"""

from __future__ import annotations

from heapq import heappop, heappush
from math import inf
from typing import TYPE_CHECKING, Iterator, Sequence, Tuple

from repro.obs.trace import KIND_REQUEST, TraceRecord
from repro.simulator import events as events_module
from repro.simulator.events import OriginUpdateEvent

if TYPE_CHECKING:
    from repro.simulator.engine import SimulationEngine

#: Shared empty holder sequence: the miss path yields it when the
#: directory has no entry, mirroring the empty list the legacy
#: comprehension builds.  A tuple (not a list) so the module-level
#: sharing is immutable by construction — the effect analysis treats
#: module-level mutable containers as shared state.
_NO_HOLDERS: Tuple[int, ...] = ()


def _merged_stream(
    req_ts: list, barriers: tuple, positions: list
) -> Iterator[Tuple[str, float]]:
    """(type name, timestamp) pairs in merged pop order (ledger feed)."""
    lo = 0
    for index, barrier in enumerate(barriers):
        hi = positions[index]
        for j in range(lo, hi):
            yield ("RequestEvent", req_ts[j])
        lo = hi
        yield (type(barrier).__name__, barrier.timestamp_ms)
    for j in range(lo, len(req_ts)):
        yield ("RequestEvent", req_ts[j])


def run_batched(engine: "SimulationEngine") -> int:
    """Process the engine's event columns; returns the event count.

    Mutates the engine's shared state (store, policies, protocol,
    metrics, observer) exactly as the legacy loops would; the engine's
    ``run()`` wraps this with the common throughput/conservation
    postlude.
    """
    columns = engine._columns
    if columns is None or engine._columns_consumed:
        return 0
    engine._columns_consumed = True

    # -- event stream ------------------------------------------------
    req_ts = columns.req_timestamps.tolist()
    req_cache = columns.req_caches.tolist()
    req_doc = columns.req_docs.tolist()
    barriers = columns.barriers
    positions = columns.barrier_positions.tolist()
    total_requests = len(req_ts)
    num_barriers = len(barriers)

    hook = events_module.column_ledger()
    if hook is not None:
        # Sorted runs record the full drained stream before processing;
        # feeding the merged columns up front keeps ledger parity even
        # for runs that fail mid-way.
        hook.record_stream(_merged_stream(req_ts, barriers, positions))

    # -- shared state, bound to locals -------------------------------
    config = engine._config
    network = engine._network
    nodes = network.cache_nodes
    origin_node = network.origin
    size_index = nodes[-1] + 1 if nodes else 1

    store = engine._store
    used = store.used
    caches = engine._caches
    docs_by = [None] * size_index
    cap_by = [0] * size_index
    for node in nodes:
        docs_by[node] = store.docs[node]
        cap_by[node] = caches[node].capacity_bytes

    util_mode = config.cache.replacement_policy == "utility"
    policy_by = [None] * size_index
    acc_by = [None] * size_index
    psz_by = [None] * size_index
    pfc_by = [None] * size_index
    pinv_by = [None] * size_index
    pver_by = [None] * size_index
    heap_by = [None] * size_index
    # Deferred heap entries: the utility policy's (score, version, doc)
    # pushes buffer here and flush into the real heap only when an
    # eviction is about to read it.  Tuple comparison is a total order
    # (per-doc versions make entries distinct), so heap *pop order*
    # depends only on the entry multiset, never on push order — which
    # is what makes the deferral invisible to victim selection.
    pend_by = [None] * size_index
    for node in nodes:
        policy = caches[node].policy
        policy_by[node] = policy
        if util_mode:
            hot = policy.hot_state()
            acc_by[node] = hot["access"]
            psz_by[node] = hot["size"]
            pfc_by[node] = hot["fetch_cost"]
            pinv_by[node] = hot["invalidations"]
            pver_by[node] = hot["version"]
            heap_by[node] = hot["heap"]
            pend_by[node] = []

    protocol = engine._protocol
    proto = protocol.hot_state()
    holders_map = proto["holders"]
    lookup_ms = proto["lookup_ms"]
    partition_timeout_ms = proto["partition_timeout_ms"]
    beacon_mode = proto["mode"] == "beacon"
    directory_mode = proto["mode"] == "directory"
    proto_lookup = protocol.lookup
    proto_holders = protocol.holders_in_group
    group_by = [-1] * size_index
    peers_by = [None] * size_index
    members_by = [None] * size_index
    for node in nodes:
        group_by[node] = proto["group_of"][node]
        peers_by[node] = proto["peers"][node]
        members_by[node] = proto["members_sorted"][node]

    rtt = network.distances.as_array()
    rtt_by = [None] * size_index
    for node in nodes:
        rtt_by[node] = rtt[node].tolist()

    local_ms = config.cache.local_processing_ms
    bandwidth = config.link_bandwidth_bytes_per_ms
    origin_processing = config.origin_processing_ms
    rtt0_by = [0.0] * size_index
    fetch0_by = [0.0] * size_index
    for node in nodes:
        rtt0_by[node] = rtt_by[node][origin_node]
        # Same expression the latency model evaluates per fetch:
        # rtt-to-origin plus flat processing (constant when origin
        # queueing is off, so it can be hoisted out of the loop).
        fetch0_by[node] = rtt_by[node][origin_node] + origin_processing

    origin = engine._origin
    sizes = origin.catalog.sizes.tolist()
    origin_version = [0] * len(sizes)
    origin_version_of = origin.version_of

    ttl_mode = (
        config.consistency_enabled and config.consistency_mode == "ttl"
    )
    ttl_ms = config.ttl_ms
    cooperative = config.cache.cooperative_placement
    placement_threshold = config.cache.placement_rtt_threshold_ms

    down = engine._down
    partition_of = engine._partition_of
    origin_load = engine._origin_load
    queueing = origin_load is not None
    if queueing:
        record_arrival = origin_load.record_arrival
        inflation_factor = origin_load.inflation_factor

    # -- metric accumulators -----------------------------------------
    metrics = engine._metrics
    warmup = engine._warmup_remaining
    lat_by = [None] * size_index
    for node in nodes:
        lat_by[node] = [0, 0.0, 0.0, inf, -inf]
    m_local = [0] * size_index
    m_group = [0] * size_index
    m_origin = [0] * size_index
    m_queries = [0] * size_index
    m_peer_bytes = [0] * size_index
    m_origin_bytes = [0] * size_index
    m_stale = [0] * size_index
    m_skips = [0] * size_index
    m_down = [0] * size_index
    m_ptimeout = [0] * size_index

    hist = metrics._latency_hist
    hist_width = hist.bin_width
    overflow_bin = hist.num_bins - 1
    bins = [0] * hist.num_bins
    hist_count = 0
    hist_sum = 0.0
    hist_min = inf
    hist_max = -inf
    # Local hits all share the constant local-processing latency; its
    # bin is the same every time (binned by the identical rule).
    local_bin = int(local_ms / hist_width)
    if local_bin >= overflow_bin:
        local_bin = overflow_bin

    # -- instrumentation ---------------------------------------------
    observer = engine._observer
    instrumented = engine._instrumented
    trace = observer.trace if instrumented else None
    sampler = observer.sampler if instrumented else None
    trace_buf: list = []
    window_local = window_group = window_origin = 0
    window_totals: list = []
    next_tick = sampler.next_tick_ms if sampler is not None else inf
    sample_gauges = engine._sample_gauges

    handlers = engine._handlers

    # -- the slice loop ----------------------------------------------
    # Each barrier slice is further split at the warm-up boundary so
    # ``counted`` is a loop constant, and iterated with one zip over
    # list slices instead of three indexed loads per event.
    barrier_index = 0
    i = 0
    while True:
        hi = (
            positions[barrier_index]
            if barrier_index < num_barriers
            else total_requests
        )
        lo = i
        while lo < hi:
            if lo < warmup:
                sub_hi = hi if hi <= warmup else warmup
                counted = False
            else:
                sub_hi = hi
                counted = True
            lo_next = sub_hi
            for ts, c, d in zip(
                req_ts[lo:sub_hi],
                req_cache[lo:sub_hi],
                req_doc[lo:sub_hi],
            ):
                if next_tick <= ts:
                    # Flush every sample boundary preceding this event
                    # (mirrors the legacy pre-event flush loop).
                    if window_totals:
                        sampler.observe_batch(
                            window_local, window_group, window_origin,
                            window_totals,
                        )
                        window_local = window_group = window_origin = 0
                        window_totals = []
                    while next_tick <= ts:
                        sampler.flush(next_tick, **sample_gauges(next_tick))
                        next_tick = sampler.next_tick_ms


                if down and c in down:
                    # Down cache: client falls through to the origin
                    # directly (no group help, nothing cached).
                    m_down[c] += 1
                    size = sizes[d]
                    query = 0.0
                    if partition_of and (
                        partition_of.get(c) != partition_of.get(origin_node)
                    ):
                        query = query + partition_timeout_ms
                        m_ptimeout[c] += 1
                    if queueing:
                        record_arrival(ts)
                        fetch = (
                            rtt0_by[c]
                            + origin_processing * inflation_factor(ts)
                        )
                    else:
                        fetch = fetch0_by[c]
                    transfer = size / bandwidth
                    total = local_ms + query + fetch + transfer
                    if counted:
                        slot = lat_by[c]
                        n = slot[0] + 1
                        slot[0] = n
                        delta = total - slot[1]
                        mean = slot[1] + delta / n
                        slot[1] = mean
                        slot[2] += delta * (total - mean)
                        if total < slot[3]:
                            slot[3] = total
                        if total > slot[4]:
                            slot[4] = total
                        bin_index = int(total / hist_width)
                        if bin_index >= overflow_bin:
                            bin_index = overflow_bin
                        bins[bin_index] += 1
                        hist_count += 1
                        hist_sum += total
                        if total < hist_min:
                            hist_min = total
                        if total > hist_max:
                            hist_max = total
                        m_origin[c] += 1
                        m_origin_bytes[c] += size
                    if sampler is not None:
                        window_origin += 1
                        window_totals.append(total)
                    if trace is not None:
                        trace_buf.append((
                            ts, c, d, "origin_fetch", total, query, fetch,
                            transfer, 0, size, counted, False,
                        ))
                    continue

                docs_c = docs_by[c]
                record = docs_c.get(d)
                if record is not None and ttl_mode and (
                    ts - record[1] > ttl_ms
                ):
                    # TTL lapsed: drop the copy before it serves anything.
                    if util_mode:
                        used[c] -= record[0]
                        del docs_c[d]
                        del acc_by[c][d]
                        del psz_by[c][d]
                        del pfc_by[c][d]
                        del pver_by[c][d]
                        by_group = holders_map.get(d)
                        if by_group:
                            held = by_group.get(group_by[c])
                            if held is not None:
                                held.discard(c)
                                if not held:
                                    del by_group[group_by[c]]
                            if not by_group:
                                del holders_map[d]
                    else:
                        caches[c].expire(d)
                    record = None

                if record is not None:
                    # ---- local hit ----
                    if util_mode:
                        acc_c = acc_by[c]
                        accesses = acc_c[d] + 1
                        acc_c[d] = accesses
                        pver_c = pver_by[c]
                        version = pver_c[d] + 1
                        pver_c[d] = version
                        pend_by[c].append((
                            accesses * pfc_by[c][d]
                            / (psz_by[c][d] * (1.0 + pinv_by[c][d])),
                            version,
                            d,
                        ))
                    else:
                        policy_by[c].on_access(d, ts)
                    stale = record[2] < origin_version[d]
                    if counted:
                        slot = lat_by[c]
                        n = slot[0] + 1
                        slot[0] = n
                        delta = local_ms - slot[1]
                        mean = slot[1] + delta / n
                        slot[1] = mean
                        slot[2] += delta * (local_ms - mean)
                        if local_ms < slot[3]:
                            slot[3] = local_ms
                        if local_ms > slot[4]:
                            slot[4] = local_ms
                        bins[local_bin] += 1
                        hist_count += 1
                        hist_sum += local_ms
                        if local_ms < hist_min:
                            hist_min = local_ms
                        if local_ms > hist_max:
                            hist_max = local_ms
                        m_local[c] += 1
                        if stale:
                            m_stale[c] += 1
                    if sampler is not None:
                        window_local += 1
                        window_totals.append(local_ms)
                    if trace is not None:
                        trace_buf.append((
                            ts, c, d, "local_hit", local_ms, 0.0, 0.0, 0.0,
                            0, 0, counted, stale,
                        ))
                    continue

                # ---- local miss: cooperative lookup ----
                size = sizes[d]
                rtt_c = rtt_by[c]
                peers = peers_by[c]
                hit = False
                holder = None
                if not peers:
                    query = 0.0
                    messages = 0
                elif beacon_mode or directory_mode:
                    if down or partition_of:
                        # Degraded path (rare): the full protocol filter
                        # over down/partitioned holders.
                        holders: Sequence[int] = proto_holders(c, d)
                        if directory_mode:
                            query = lookup_ms
                            messages = 2
                        else:
                            members = members_by[c]
                            beacon = members[
                                (d * 2654435761) % len(members)
                            ]
                            if beacon == c:
                                query = lookup_ms + 0.0
                                messages = 0
                            else:
                                query = lookup_ms + rtt_c[beacon]
                                messages = 2
                                if down and beacon in down:
                                    # The beacon is the only member who
                                    # knows the holders: the query
                                    # times out.
                                    messages = 1
                                    holders = _NO_HOLDERS
                                elif partition_of and (
                                    partition_of.get(c)
                                    != partition_of.get(beacon)
                                ):
                                    query = (
                                        lookup_ms + partition_timeout_ms
                                    )
                                    messages = 1
                                    holders = _NO_HOLDERS
                        if holders:
                            best = holders[0]
                            best_rtt = rtt_c[best]
                            for k in range(1, len(holders)):
                                candidate = holders[k]
                                candidate_rtt = rtt_c[candidate]
                                if candidate_rtt < best_rtt:
                                    best_rtt = candidate_rtt
                                    best = candidate
                            hit = True
                            holder = best
                    else:
                        # Clean path: every group member is reachable,
                        # so the first-min scan runs straight over the
                        # holder set — same strict-less order as the
                        # protocol's filtered list, no allocation.
                        if directory_mode:
                            query = lookup_ms
                            messages = 2
                        else:
                            members = members_by[c]
                            beacon = members[
                                (d * 2654435761) % len(members)
                            ]
                            if beacon == c:
                                query = lookup_ms + 0.0
                                messages = 0
                            else:
                                query = lookup_ms + rtt_c[beacon]
                                messages = 2
                        by_group = holders_map.get(d)
                        if by_group is not None:
                            held = by_group.get(group_by[c])
                            if held is not None:
                                best = -1
                                best_rtt = inf
                                for h in held:
                                    if h != c:
                                        candidate_rtt = rtt_c[h]
                                        if candidate_rtt < best_rtt:
                                            best_rtt = candidate_rtt
                                            best = h
                                if best >= 0:
                                    hit = True
                                    holder = best
                else:
                    # Multicast (and any future mode): the full method.
                    result = proto_lookup(c, d)
                    query = result.query_ms
                    messages = result.messages
                    if result.holder is not None:
                        hit = True
                        holder = result.holder

                if hit and ttl_mode:
                    # A holder found by the directory may itself have
                    # expired under TTL; re-check before fetching from it.
                    docs_h = docs_by[holder]
                    held_record = docs_h.get(d)
                    if held_record is not None and (
                        ts - held_record[1] > ttl_ms
                    ):
                        if util_mode:
                            used[holder] -= held_record[0]
                            del docs_h[d]
                            del acc_by[holder][d]
                            del psz_by[holder][d]
                            del pfc_by[holder][d]
                            del pver_by[holder][d]
                            by_group = holders_map.get(d)
                            if by_group:
                                held = by_group.get(group_by[holder])
                                if held is not None:
                                    held.discard(holder)
                                    if not held:
                                        del by_group[group_by[holder]]
                                if not by_group:
                                    del holders_map[d]
                        else:
                            caches[holder].expire(d)
                    if d not in docs_h:
                        hit = False
                        holder = None

                if hit:
                    fetch = rtt_c[holder]
                    transfer = size / bandwidth
                    total = local_ms + query + fetch + transfer
                    fetched_version = docs_by[holder][d][2]
                    path_value = "group_hit"
                else:
                    if partition_of and (
                        partition_of.get(c) != partition_of.get(origin_node)
                    ):
                        query = query + partition_timeout_ms
                        m_ptimeout[c] += 1
                    if queueing:
                        record_arrival(ts)
                        fetch = (
                            rtt0_by[c]
                            + origin_processing * inflation_factor(ts)
                        )
                    else:
                        fetch = fetch0_by[c]
                    transfer = size / bandwidth
                    total = local_ms + query + fetch + transfer
                    fetched_version = origin_version[d]
                    path_value = "origin_fetch"

                # ---- placement ----
                if cooperative and hit and (
                    rtt_c[holder] <= placement_threshold
                ):
                    m_skips[c] += 1
                else:
                    fetch_cost = fetch + transfer
                    if util_mode:
                        admitted = False
                        cap_c = cap_by[c]
                        if size <= cap_c:
                            acc_c = acc_by[c]
                            psz_c = psz_by[c]
                            pfc_c = pfc_by[c]
                            pver_c = pver_by[c]
                            heap_c = heap_by[c]
                            group_c = group_by[c]
                            if used[c] + size > cap_c:
                                # Eviction will read the heap: flush
                                # the deferred entries first.
                                pend_c = pend_by[c]
                                if pend_c:
                                    for entry in pend_c:
                                        heappush(heap_c, entry)
                                    del pend_c[:]
                            while used[c] + size > cap_c:
                                # Lazy-heap victim selection: pop stale
                                # entries, evict the live minimum.
                                while True:
                                    top = heap_c[0]
                                    victim = top[2]
                                    if pver_c.get(victim) == top[1]:
                                        break
                                    heappop(heap_c)
                                victim_record = docs_c.pop(victim)
                                used[c] -= victim_record[0]
                                del acc_c[victim]
                                del psz_c[victim]
                                del pfc_c[victim]
                                del pver_c[victim]
                                by_group = holders_map.get(victim)
                                if by_group:
                                    held = by_group.get(group_c)
                                    if held is not None:
                                        held.discard(c)
                                        if not held:
                                            del by_group[group_c]
                                    if not by_group:
                                        del holders_map[victim]
                            docs_c[d] = [size, ts, fetched_version]
                            used[c] += size
                            acc_c[d] = 1
                            psz_c[d] = size
                            # Re-fetch cost is at least a token cost even
                            # for free fetches (policy on_insert rule).
                            cost = (
                                fetch_cost if fetch_cost > 0.01 else 0.01
                            )
                            pfc_c[d] = cost
                            invalidations = pinv_by[c].setdefault(d, 0)
                            version = pver_c.get(d, 0) + 1
                            pver_c[d] = version
                            pend_by[c].append((
                                1 * cost / (size * (1.0 + invalidations)),
                                version,
                                d,
                            ))
                            admitted = True
                    else:
                        admitted = caches[c].admit(
                            d, size, fetch_cost, ts, fetched_version
                        )
                    if admitted:
                        by_group = holders_map.get(d)
                        if by_group is None:
                            holders_map[d] = by_group = {}
                        held = by_group.get(group_by[c])
                        if held is None:
                            by_group[group_by[c]] = held = set()
                        held.add(c)

                stale = fetched_version < origin_version[d]
                if counted:
                    slot = lat_by[c]
                    n = slot[0] + 1
                    slot[0] = n
                    delta = total - slot[1]
                    mean = slot[1] + delta / n
                    slot[1] = mean
                    slot[2] += delta * (total - mean)
                    if total < slot[3]:
                        slot[3] = total
                    if total > slot[4]:
                        slot[4] = total
                    bin_index = int(total / hist_width)
                    if bin_index >= overflow_bin:
                        bin_index = overflow_bin
                    bins[bin_index] += 1
                    hist_count += 1
                    hist_sum += total
                    if total < hist_min:
                        hist_min = total
                    if total > hist_max:
                        hist_max = total
                    if messages:
                        m_queries[c] += messages
                    if stale:
                        m_stale[c] += 1
                    if hit:
                        m_group[c] += 1
                        m_peer_bytes[c] += size
                    else:
                        m_origin[c] += 1
                        m_origin_bytes[c] += size
                if sampler is not None:
                    if hit:
                        window_group += 1
                    else:
                        window_origin += 1
                    window_totals.append(total)
                if trace is not None:
                    trace_buf.append((
                        ts, c, d, path_value, total, query, fetch,
                        transfer, messages, size, counted, stale,
                    ))

            lo = lo_next
        i = hi
        if barrier_index >= num_barriers:
            break

        # ---- barrier event: legacy handler on the shared state ----
        barrier = barriers[barrier_index]
        barrier_index += 1
        barrier_ts = barrier.timestamp_ms
        if next_tick <= barrier_ts:
            if window_totals:
                sampler.observe_batch(
                    window_local, window_group, window_origin,
                    window_totals,
                )
                window_local = window_group = window_origin = 0
                window_totals = []
            while next_tick <= barrier_ts:
                sampler.flush(next_tick, **sample_gauges(next_tick))
                next_tick = sampler.next_tick_ms
        if trace is not None and trace_buf:
            # The handler may append its own trace record; flush the
            # buffered request rows first to keep JSONL order exact.
            trace.record_many([
                TraceRecord(
                    kind=KIND_REQUEST, timestamp_ms=row[0],
                    cache=row[1], doc_id=row[2], path=row[3],
                    total_ms=row[4], query_ms=row[5], fetch_ms=row[6],
                    transfer_ms=row[7], messages=row[8],
                    size_bytes=row[9], counted=row[10], stale=row[11],
                )
                for row in trace_buf
            ])
            trace_buf = []
        handlers[type(barrier)](barrier)
        if type(barrier) is OriginUpdateEvent:
            origin_version[barrier.doc_id] = origin_version_of(
                barrier.doc_id
            )

    # -- postlude ----------------------------------------------------
    if total_requests:
        if num_barriers and positions[-1] == total_requests:
            last_ts = barriers[-1].timestamp_ms
        else:
            last_ts = req_ts[-1]
    elif num_barriers:  # pragma: no cover - workloads require requests
        last_ts = barriers[-1].timestamp_ms
    else:  # pragma: no cover - workloads require requests
        last_ts = 0.0

    if trace is not None and trace_buf:
        trace.record_many([
            TraceRecord(
                kind=KIND_REQUEST, timestamp_ms=row[0], cache=row[1],
                doc_id=row[2], path=row[3], total_ms=row[4],
                query_ms=row[5], fetch_ms=row[6], transfer_ms=row[7],
                messages=row[8], size_bytes=row[9], counted=row[10],
                stale=row[11],
            )
            for row in trace_buf
        ])
        trace_buf = []
    if sampler is not None:
        if window_totals:
            sampler.observe_batch(
                window_local, window_group, window_origin, window_totals
            )
        sampler.finalize(last_ts, **sample_gauges(last_ts))

    if util_mode:
        # Leave the policies' heaps holding every entry (the deferred
        # buffers are a loop-internal detail, not post-run state).
        for node in nodes:
            pend_node = pend_by[node]
            if pend_node:
                heap_node = heap_by[node]
                for entry in pend_node:
                    heappush(heap_node, entry)
                del pend_node[:]

    engine._processed_requests = total_requests

    rows = {}
    for node in nodes:
        slot = lat_by[node]
        rows[node] = (
            slot[0], slot[1], slot[2], slot[3], slot[4],
            m_local[node], m_group[node], m_origin[node],
            m_queries[node], m_peer_bytes[node], m_origin_bytes[node],
            m_stale[node], m_skips[node], m_down[node],
            m_ptimeout[node],
        )
    metrics.absorb_batched(
        rows,
        min(warmup, total_requests),
        (bins, hist_count, hist_sum, hist_min, hist_max),
    )
    return total_requests + num_barriers
