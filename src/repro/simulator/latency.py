"""Per-request latency accounting.

The edge cache latency of a request is ``T_S - T_A`` (paper Section 4):
the time between arrival at the edge cache and the moment the cache can
serve it.  :class:`LatencyModel` decomposes that time per service path:

* **local hit** — local processing only;
* **group hit** — local processing + query phase (see
  :mod:`repro.simulator.group_proto`) + one RTT to the chosen holder for
  the fetch + transfer time;
* **origin fetch** — local processing + query phase (if the cache has
  peers) + one RTT to the origin + origin processing + transfer time.

Transfer time is ``size / bandwidth``; propagation and transmission are
charged separately, which is the standard store-and-forward first-order
model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.config import SimulationConfig
from repro.errors import SimulationError
from repro.topology.network import EdgeCacheNetwork
from repro.types import NodeId


class ServicePath(enum.Enum):
    """Where a request was ultimately served from."""

    LOCAL_HIT = "local_hit"
    GROUP_HIT = "group_hit"
    ORIGIN_FETCH = "origin_fetch"


@dataclass(frozen=True)
class ServiceAccount:
    """Latency breakdown of one served request (all in ms)."""

    path: ServicePath
    total_ms: float
    query_ms: float
    fetch_ms: float
    transfer_ms: float

    def __post_init__(self) -> None:
        if self.total_ms < 0:
            raise SimulationError(f"negative total latency {self.total_ms}")


class LatencyModel:
    """Computes :class:`ServiceAccount` values for one network/config."""

    def __init__(
        self, network: EdgeCacheNetwork, config: SimulationConfig
    ) -> None:
        config.validate()
        self._network = network
        self._config = config
        # Hot-path shortcuts: the raw RTT matrix (node ids on the
        # per-request path were validated at engine construction) and
        # the flat per-request constants.
        self._rtt_ms = network.distances.as_array()
        self._origin_id = network.origin
        self._local_ms = config.cache.local_processing_ms
        self._bandwidth = config.link_bandwidth_bytes_per_ms

    def transfer_ms(self, size_bytes: int) -> float:
        """Transmission time of a document over the modelled link."""
        if size_bytes < 0:
            raise SimulationError(f"negative size {size_bytes}")
        return size_bytes / self._bandwidth

    def local_hit(self) -> ServiceAccount:
        return ServiceAccount(
            path=ServicePath.LOCAL_HIT,
            total_ms=self._local_ms,
            query_ms=0.0,
            fetch_ms=0.0,
            transfer_ms=0.0,
        )

    def group_hit(
        self,
        cache: NodeId,
        holder: NodeId,
        size_bytes: int,
        query_ms: float,
    ) -> ServiceAccount:
        fetch = float(self._rtt_ms[cache, holder])
        transfer = self.transfer_ms(size_bytes)
        total = self._local_ms + query_ms + fetch + transfer
        return ServiceAccount(
            path=ServicePath.GROUP_HIT,
            total_ms=total,
            query_ms=query_ms,
            fetch_ms=fetch,
            transfer_ms=transfer,
        )

    def origin_fetch(
        self,
        cache: NodeId,
        size_bytes: int,
        query_ms: float,
        processing_ms: Optional[float] = None,
    ) -> ServiceAccount:
        """Origin-fetch account; ``processing_ms`` overrides the flat
        configured processing time (used by the origin-queueing model)."""
        if processing_ms is None:
            processing_ms = self._config.origin_processing_ms
        if processing_ms < 0:
            raise SimulationError(
                f"processing_ms must be >= 0, got {processing_ms}"
            )
        fetch = float(self._rtt_ms[cache, self._origin_id]) + processing_ms
        transfer = self.transfer_ms(size_bytes)
        total = self._local_ms + query_ms + fetch + transfer
        return ServiceAccount(
            path=ServicePath.ORIGIN_FETCH,
            total_ms=total,
            query_ms=query_ms,
            fetch_ms=fetch,
            transfer_ms=transfer,
        )
