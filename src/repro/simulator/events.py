"""Simulation events and the time-ordered event queue.

Two event kinds drive the simulation, mirroring the paper's setup
("caches are driven by request-log files, while the origin server reads
continuously from an update log file"):

* :class:`RequestEvent` — a client request arrives at an edge cache;
* :class:`OriginUpdateEvent` — the origin updates a document.

Ties are broken by event priority (updates before requests at the same
timestamp, so a request sees the freshest state) and then by insertion
order, which keeps runs fully deterministic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import SimulationError
from repro.types import DocumentId, NodeId, SimMs


@dataclass(frozen=True)
class RequestEvent:
    """A client request arriving at an edge cache."""

    timestamp_ms: SimMs
    cache_node: NodeId
    doc_id: DocumentId
    priority: int = field(default=1, init=False, repr=False)


@dataclass(frozen=True)
class OriginUpdateEvent:
    """An origin-side document update."""

    timestamp_ms: SimMs
    doc_id: DocumentId
    priority: int = field(default=0, init=False, repr=False)


@dataclass(frozen=True)
class CacheFailEvent:
    """A cache crashes: contents lost, node unavailable until recovery.

    Failures sort before requests at the same timestamp so a request
    never hits a cache that failed "at the same moment".
    """

    timestamp_ms: SimMs
    cache_node: NodeId
    priority: int = field(default=0, init=False, repr=False)


@dataclass(frozen=True)
class CacheRecoverEvent:
    """A failed cache rejoins, empty."""

    timestamp_ms: SimMs
    cache_node: NodeId
    priority: int = field(default=0, init=False, repr=False)


@dataclass(frozen=True)
class PartitionStartEvent:
    """A set of nodes is cut off from everything outside the set.

    Partitioned caches keep their contents and keep serving local hits,
    but cooperative queries and origin fetches across the cut time out.
    Sorts with the other fault events (priority 0) so a request at the
    same timestamp already sees the partition.
    """

    timestamp_ms: SimMs
    nodes: Tuple[NodeId, ...]
    partition_id: int
    priority: int = field(default=0, init=False, repr=False)


@dataclass(frozen=True)
class PartitionEndEvent:
    """The partition heals; the node set rejoins the main component."""

    timestamp_ms: SimMs
    nodes: Tuple[NodeId, ...]
    priority: int = field(default=0, init=False, repr=False)


Event = Union[
    RequestEvent,
    OriginUpdateEvent,
    CacheFailEvent,
    CacheRecoverEvent,
    PartitionStartEvent,
    PartitionEndEvent,
]


class EventQueue:
    """A deterministic min-heap of simulation events.

    Ordering key: ``(timestamp_ms, priority, insertion_sequence)``.
    Popping never goes backwards in time; pushing an event earlier than
    the last popped timestamp raises :class:`SimulationError` (the
    engine never schedules into the past).
    """

    def __init__(self) -> None:
        self._heap: List[tuple] = []
        self._sequence = 0
        self._last_popped_ms: float = -float("inf")

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, event: Event) -> None:
        """Insert an event; must not precede the last popped timestamp."""
        if event.timestamp_ms < 0:
            raise SimulationError(
                f"event timestamp must be >= 0, got {event.timestamp_ms}"
            )
        if event.timestamp_ms < self._last_popped_ms:
            raise SimulationError(
                f"cannot schedule into the past: {event.timestamp_ms} < "
                f"{self._last_popped_ms}"
            )
        heapq.heappush(
            self._heap,
            (event.timestamp_ms, event.priority, self._sequence, event),
        )
        self._sequence += 1

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        timestamp, _priority, _seq, event = heapq.heappop(self._heap)
        self._last_popped_ms = timestamp
        return event

    def drain_sorted(self) -> List[Event]:
        """Remove and return *all* events in pop order, in one shot.

        The engine knows every event up front and never schedules into
        the future, so the per-event heap discipline is pure overhead:
        one ``sort`` over the ``(timestamp, priority, sequence)`` keys
        yields exactly the sequence ``pop`` would produce.  Afterwards
        the queue is empty and ``now_ms`` reports the final timestamp,
        the same state a pop-until-empty loop leaves behind.
        """
        ordered = sorted(self._heap)
        self._heap.clear()
        if ordered:
            self._last_popped_ms = ordered[-1][0]
        return [entry[3] for entry in ordered]

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next event, or None when empty."""
        if not self._heap:
            return None
        return self._heap[0][0]

    @property
    def now_ms(self) -> SimMs:
        """Timestamp of the most recently popped event (sim clock).

        0.0 until the first pop — including for a queue that has had
        events pushed but not yet popped — and thereafter the last
        popped timestamp, even once the queue is exhausted.
        """
        if self._last_popped_ms == -float("inf"):
            return 0.0
        return self._last_popped_ms


@dataclass(frozen=True)
class EventColumns:
    """The merged event stream in columnar form (batched loop input).

    Requests — by far the bulk of any workload — live as three parallel
    numpy columns sorted by timestamp (stable, so ties keep workload
    order, exactly like the queue's insertion-sequence tie-break).
    The rare *barrier* events (origin updates, cache failures and
    recoveries, partition edges — everything with priority 0) stay as
    ordinary event objects, sorted stably by timestamp in push order.

    ``barrier_positions[i]`` is the index of the first request that
    must be processed *after* barrier ``i``: barriers carry priority 0
    and requests priority 1, so at an equal timestamp the barrier goes
    first, which is exactly ``searchsorted(..., side="left")``.  The
    requests between two consecutive barrier positions form one
    *causality-safe slice*: no cache fails, no partition moves, and no
    origin version changes inside it.
    """

    req_timestamps: np.ndarray
    req_caches: np.ndarray
    req_docs: np.ndarray
    barriers: Tuple[Event, ...]
    barrier_positions: np.ndarray

    @property
    def num_requests(self) -> int:
        return int(self.req_timestamps.size)

    @property
    def num_events(self) -> int:
        return self.num_requests + len(self.barriers)


def build_event_columns(
    requests: Sequence[Any],
    barrier_events: Sequence[Event],
) -> EventColumns:
    """Lower request records plus barrier events to :class:`EventColumns`.

    ``requests`` is the workload's request log (records with
    ``timestamp_ms``/``cache_node``/``doc_id``, already validated
    non-negative); ``barrier_events`` must be given in the same order
    the legacy loop would have pushed them, so the stable timestamp
    sort reproduces the queue's insertion-sequence tie-break.
    """
    req_ts = np.asarray(
        [r.timestamp_ms for r in requests], dtype=np.float64
    )
    req_cache = np.asarray(
        [r.cache_node for r in requests], dtype=np.int64
    )
    req_doc = np.asarray([r.doc_id for r in requests], dtype=np.int64)
    return columns_from_arrays(req_ts, req_cache, req_doc, barrier_events)


def columns_from_arrays(
    req_ts: np.ndarray,
    req_cache: np.ndarray,
    req_doc: np.ndarray,
    barrier_events: Sequence[Event],
) -> EventColumns:
    """Assemble :class:`EventColumns` from pre-extracted request columns."""
    if not (req_ts.size == req_cache.size == req_doc.size):
        raise SimulationError(
            "request columns disagree on length: "
            f"{req_ts.size}/{req_cache.size}/{req_doc.size}"
        )
    # Workloads are generated time-sorted; only re-order when a caller
    # hands us a shuffled log (kind="stable" keeps ties in log order,
    # matching the queue's insertion-sequence tie-break).
    if req_ts.size and np.any(np.diff(req_ts) < 0):
        order = np.argsort(req_ts, kind="stable")
        req_ts = req_ts[order]
        req_cache = req_cache[order]
        req_doc = req_doc[order]
    for event in barrier_events:
        if event.timestamp_ms < 0:
            raise SimulationError(
                f"event timestamp must be >= 0, got {event.timestamp_ms}"
            )
        if event.priority != 0:
            raise SimulationError(
                f"barrier events must have priority 0, got {event!r}"
            )
    barriers = tuple(
        sorted(barrier_events, key=lambda e: e.timestamp_ms)
    )
    positions = np.searchsorted(
        req_ts,
        np.asarray([b.timestamp_ms for b in barriers], dtype=np.float64),
        side="left",
    ).astype(np.int64)
    return EventColumns(
        req_timestamps=req_ts,
        req_caches=req_cache,
        req_docs=req_doc,
        barriers=barriers,
        barrier_positions=positions,
    )


#: The event-stream ledger hook installed by ``repro.sanitize``
#: (duck-typed: ``record_stream(pairs)`` with ``(type_name,
#: timestamp_ms)`` pairs in merged event order).  The batched loop has
#: no per-event queue pops to patch, so it feeds the draw ledger
#: through this hook instead; None — the overwhelmingly common case —
#: costs one global read per run, and this module never imports the
#: sanitizer.
_COLUMN_LEDGER: Optional[Any] = None


def set_column_ledger(hook: Optional[Any]) -> Optional[Any]:
    """Install (or clear, with None) the column-stream ledger hook.

    Returns the previously-installed hook so callers can restore it.
    """
    global _COLUMN_LEDGER  # noqa: PLW0603 - sanitizer-installed hook slot
    previous = _COLUMN_LEDGER
    _COLUMN_LEDGER = hook
    return previous


def column_ledger() -> Optional[Any]:
    """The currently-installed column-stream ledger hook, if any."""
    return _COLUMN_LEDGER
