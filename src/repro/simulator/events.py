"""Simulation events and the time-ordered event queue.

Two event kinds drive the simulation, mirroring the paper's setup
("caches are driven by request-log files, while the origin server reads
continuously from an update log file"):

* :class:`RequestEvent` — a client request arrives at an edge cache;
* :class:`OriginUpdateEvent` — the origin updates a document.

Ties are broken by event priority (updates before requests at the same
timestamp, so a request sees the freshest state) and then by insertion
order, which keeps runs fully deterministic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.errors import SimulationError
from repro.types import DocumentId, NodeId


@dataclass(frozen=True)
class RequestEvent:
    """A client request arriving at an edge cache."""

    timestamp_ms: float
    cache_node: NodeId
    doc_id: DocumentId
    priority: int = field(default=1, init=False, repr=False)


@dataclass(frozen=True)
class OriginUpdateEvent:
    """An origin-side document update."""

    timestamp_ms: float
    doc_id: DocumentId
    priority: int = field(default=0, init=False, repr=False)


@dataclass(frozen=True)
class CacheFailEvent:
    """A cache crashes: contents lost, node unavailable until recovery.

    Failures sort before requests at the same timestamp so a request
    never hits a cache that failed "at the same moment".
    """

    timestamp_ms: float
    cache_node: NodeId
    priority: int = field(default=0, init=False, repr=False)


@dataclass(frozen=True)
class CacheRecoverEvent:
    """A failed cache rejoins, empty."""

    timestamp_ms: float
    cache_node: NodeId
    priority: int = field(default=0, init=False, repr=False)


@dataclass(frozen=True)
class PartitionStartEvent:
    """A set of nodes is cut off from everything outside the set.

    Partitioned caches keep their contents and keep serving local hits,
    but cooperative queries and origin fetches across the cut time out.
    Sorts with the other fault events (priority 0) so a request at the
    same timestamp already sees the partition.
    """

    timestamp_ms: float
    nodes: Tuple[NodeId, ...]
    partition_id: int
    priority: int = field(default=0, init=False, repr=False)


@dataclass(frozen=True)
class PartitionEndEvent:
    """The partition heals; the node set rejoins the main component."""

    timestamp_ms: float
    nodes: Tuple[NodeId, ...]
    priority: int = field(default=0, init=False, repr=False)


Event = Union[
    RequestEvent,
    OriginUpdateEvent,
    CacheFailEvent,
    CacheRecoverEvent,
    PartitionStartEvent,
    PartitionEndEvent,
]


class EventQueue:
    """A deterministic min-heap of simulation events.

    Ordering key: ``(timestamp_ms, priority, insertion_sequence)``.
    Popping never goes backwards in time; pushing an event earlier than
    the last popped timestamp raises :class:`SimulationError` (the
    engine never schedules into the past).
    """

    def __init__(self) -> None:
        self._heap: List[tuple] = []
        self._sequence = 0
        self._last_popped_ms: float = -float("inf")

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, event: Event) -> None:
        """Insert an event; must not precede the last popped timestamp."""
        if event.timestamp_ms < 0:
            raise SimulationError(
                f"event timestamp must be >= 0, got {event.timestamp_ms}"
            )
        if event.timestamp_ms < self._last_popped_ms:
            raise SimulationError(
                f"cannot schedule into the past: {event.timestamp_ms} < "
                f"{self._last_popped_ms}"
            )
        heapq.heappush(
            self._heap,
            (event.timestamp_ms, event.priority, self._sequence, event),
        )
        self._sequence += 1

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        timestamp, _priority, _seq, event = heapq.heappop(self._heap)
        self._last_popped_ms = timestamp
        return event

    def drain_sorted(self) -> List[Event]:
        """Remove and return *all* events in pop order, in one shot.

        The engine knows every event up front and never schedules into
        the future, so the per-event heap discipline is pure overhead:
        one ``sort`` over the ``(timestamp, priority, sequence)`` keys
        yields exactly the sequence ``pop`` would produce.  Afterwards
        the queue is empty and ``now_ms`` reports the final timestamp,
        the same state a pop-until-empty loop leaves behind.
        """
        ordered = sorted(self._heap)
        self._heap.clear()
        if ordered:
            self._last_popped_ms = ordered[-1][0]
        return [entry[3] for entry in ordered]

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next event, or None when empty."""
        if not self._heap:
            return None
        return self._heap[0][0]

    @property
    def now_ms(self) -> float:
        """Timestamp of the most recently popped event (sim clock).

        0.0 until the first pop — including for a queue that has had
        events pushed but not yet popped — and thereafter the last
        popped timestamp, even once the queue is exhausted.
        """
        if self._last_popped_ms == -float("inf"):
            return 0.0
        return self._last_popped_ms
