"""Simulation events and the time-ordered event queue.

Two event kinds drive the simulation, mirroring the paper's setup
("caches are driven by request-log files, while the origin server reads
continuously from an update log file"):

* :class:`RequestEvent` — a client request arrives at an edge cache;
* :class:`OriginUpdateEvent` — the origin updates a document.

Ties are broken by event priority (updates before requests at the same
timestamp, so a request sees the freshest state) and then by insertion
order, which keeps runs fully deterministic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.errors import SimulationError
from repro.types import DocumentId, NodeId


@dataclass(frozen=True)
class RequestEvent:
    """A client request arriving at an edge cache."""

    timestamp_ms: float
    cache_node: NodeId
    doc_id: DocumentId
    priority: int = field(default=1, init=False, repr=False)


@dataclass(frozen=True)
class OriginUpdateEvent:
    """An origin-side document update."""

    timestamp_ms: float
    doc_id: DocumentId
    priority: int = field(default=0, init=False, repr=False)


@dataclass(frozen=True)
class CacheFailEvent:
    """A cache crashes: contents lost, node unavailable until recovery.

    Failures sort before requests at the same timestamp so a request
    never hits a cache that failed "at the same moment".
    """

    timestamp_ms: float
    cache_node: NodeId
    priority: int = field(default=0, init=False, repr=False)


@dataclass(frozen=True)
class CacheRecoverEvent:
    """A failed cache rejoins, empty."""

    timestamp_ms: float
    cache_node: NodeId
    priority: int = field(default=0, init=False, repr=False)


Event = Union[
    RequestEvent, OriginUpdateEvent, CacheFailEvent, CacheRecoverEvent
]


class EventQueue:
    """A deterministic min-heap of simulation events.

    Ordering key: ``(timestamp_ms, priority, insertion_sequence)``.
    Popping never goes backwards in time; pushing an event earlier than
    the last popped timestamp raises :class:`SimulationError` (the
    engine never schedules into the past).
    """

    def __init__(self) -> None:
        self._heap: List[tuple] = []
        self._sequence = 0
        self._last_popped_ms: float = -float("inf")

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, event: Event) -> None:
        """Insert an event; must not precede the last popped timestamp."""
        if event.timestamp_ms < 0:
            raise SimulationError(
                f"event timestamp must be >= 0, got {event.timestamp_ms}"
            )
        if event.timestamp_ms < self._last_popped_ms:
            raise SimulationError(
                f"cannot schedule into the past: {event.timestamp_ms} < "
                f"{self._last_popped_ms}"
            )
        heapq.heappush(
            self._heap,
            (event.timestamp_ms, event.priority, self._sequence, event),
        )
        self._sequence += 1

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        timestamp, _priority, _seq, event = heapq.heappop(self._heap)
        self._last_popped_ms = timestamp
        return event

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next event, or None when empty."""
        if not self._heap:
            return None
        return self._heap[0][0]

    @property
    def now_ms(self) -> float:
        """Timestamp of the most recently popped event (sim clock)."""
        return self._last_popped_ms if self._heap or self._sequence else 0.0
