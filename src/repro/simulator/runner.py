"""High-level simulation entry point: :func:`simulate`.

Bundles engine construction and execution into one call and returns a
:class:`SimulationResult` exposing the paper's metrics directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.config import SimulationConfig
from repro.core.groups import GroupingResult
from repro.errors import SimulationError
from repro.faults.schedule import FaultSchedule
from repro.obs.observer import Observer
from repro.obs.sampler import TimeSeries
from repro.obs.trace import TraceRecord
from repro.simulator.engine import SimulationEngine
from repro.simulator.metrics import SimulationMetrics
from repro.topology.network import EdgeCacheNetwork
from repro.types import NodeId
from repro.workload.ibm_synthetic import Workload


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulation run.

    ``observer`` is present only for instrumented runs; the
    :meth:`timeseries` and :attr:`trace` accessors surface its sampled
    series and trace records directly.
    """

    metrics: SimulationMetrics = field(repr=False)
    grouping: GroupingResult = field(repr=False)
    network: EdgeCacheNetwork = field(repr=False)
    observer: Optional[Observer] = field(default=None, repr=False)

    def timeseries(self) -> TimeSeries:
        """The sampled time series of an instrumented run."""
        if self.observer is None or self.observer.sampler is None:
            raise SimulationError(
                "no time series: run simulate() with an Observer carrying "
                "a MetricsSampler"
            )
        return self.observer.sampler.series()

    @property
    def trace(self) -> List[TraceRecord]:
        """The trace records of an instrumented run (oldest first)."""
        if self.observer is None or self.observer.trace is None:
            raise SimulationError(
                "no trace: run simulate() with an Observer carrying a "
                "TraceCollector"
            )
        return self.observer.trace.records()

    def average_latency_ms(self, caches: Sequence[NodeId] = ()) -> float:
        """The paper's *average cache latency* (optionally for a subset)."""
        return self.metrics.average_latency_ms(caches)

    def latency_nearest_origin(self, count: int = 50) -> float:
        """Average latency of the ``count`` caches nearest the origin.

        Figure 3 plots this for the 50 nearest caches.
        """
        return self.metrics.average_latency_ms(
            self.network.caches_nearest_origin(count)
        )

    def latency_farthest_origin(self, count: int = 50) -> float:
        """Average latency of the ``count`` caches farthest from the origin."""
        return self.metrics.average_latency_ms(
            self.network.caches_farthest_origin(count)
        )

    def hit_rates(self) -> dict:
        return self.metrics.hit_rates()

    def group_hit_rate(self) -> float:
        return self.metrics.group_hit_rate()

    def stale_serve_fraction(self) -> float:
        """Fraction of requests served from out-of-date copies."""
        return self.metrics.stale_serve_fraction()


def simulate(
    network: EdgeCacheNetwork,
    grouping: GroupingResult,
    workload: Workload,
    config: Optional[SimulationConfig] = None,
    group_protocol_mode: str = "beacon",
    failures: Sequence = (),
    observer: Optional[Observer] = None,
    event_loop: Optional[str] = None,
    faults: Optional["FaultSchedule"] = None,
) -> SimulationResult:
    """Run the cooperative edge cache network simulation to completion.

    ``event_loop=None`` resolves to
    :data:`repro.simulator.engine.DEFAULT_EVENT_LOOP` (the batched
    columnar loop); pass ``"sorted"`` or ``"heap"`` for the legacy
    per-event-object loops.

    >>> from repro.topology import build_network
    >>> from repro.core.groups import singleton_groups
    >>> from repro.workload import generate_workload
    >>> from repro.config import WorkloadConfig, DocumentConfig
    >>> net = build_network(num_caches=4, seed=3)
    >>> wl = generate_workload(
    ...     net.cache_nodes,
    ...     WorkloadConfig(
    ...         documents=DocumentConfig(num_documents=50),
    ...         requests_per_cache=40,
    ...     ),
    ...     seed=3,
    ... )
    >>> result = simulate(net, singleton_groups(net.cache_nodes), wl)
    >>> result.average_latency_ms() > 0
    True
    """
    engine = SimulationEngine(
        network,
        grouping,
        workload,
        config=config,
        group_protocol_mode=group_protocol_mode,
        failures=failures,
        observer=observer,
        event_loop=event_loop,
        faults=faults,
    )
    metrics = engine.run()
    return SimulationResult(
        metrics=metrics,
        grouping=grouping,
        network=network,
        observer=observer,
    )
