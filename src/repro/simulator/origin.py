"""The origin server: document versions and server-driven invalidation.

The origin holds the authoritative copy of every document.  Each update
from the update log bumps the document's version; consistency
maintenance (when enabled) immediately notifies all caches holding the
document, which drop their now-stale copies.  The notification fan-out
is counted as consistency traffic.

Simplification vs. a wire-accurate model: invalidations take effect
instantaneously rather than after one-way network delay.  The paper's
metrics (latency, interaction cost) do not charge invalidation latency
to clients, so this only shifts a vanishing fraction of hits; the
*count* of invalidation messages — the cooperative-freshness cost — is
preserved exactly.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import SimulationError
from repro.types import DocumentId
from repro.workload.documents import DocumentCatalog


class OriginServer:
    """Authoritative document store driven by the update log."""

    def __init__(self, catalog: DocumentCatalog) -> None:
        self._catalog = catalog
        self._versions: Dict[DocumentId, int] = {}
        self._updates_applied = 0

    @property
    def catalog(self) -> DocumentCatalog:
        return self._catalog

    @property
    def updates_applied(self) -> int:
        return self._updates_applied

    def version_of(self, doc_id: DocumentId) -> int:
        """Current version of a document (0 = never updated)."""
        self._check(doc_id)
        return self._versions.get(doc_id, 0)

    def size_of(self, doc_id: DocumentId) -> int:
        self._check(doc_id)
        return self._catalog.size_of(doc_id)

    def apply_update(self, doc_id: DocumentId) -> int:
        """Apply one update-log record; returns the new version."""
        self._check(doc_id)
        if not self._catalog.is_dynamic(doc_id):
            raise SimulationError(
                f"update log targets static document {doc_id}"
            )
        new_version = self._versions.get(doc_id, 0) + 1
        self._versions[doc_id] = new_version
        self._updates_applied += 1
        return new_version

    def _check(self, doc_id: DocumentId) -> None:
        if not 0 <= doc_id < len(self._catalog):
            raise SimulationError(
                f"unknown document {doc_id} "
                f"(catalog size {len(self._catalog)})"
            )
