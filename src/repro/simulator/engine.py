"""The discrete event simulation engine.

Wires together the caches, origin server, group protocol, latency model
and metrics, then processes the merged request/update event stream in
timestamp order.  The engine itself is deliberately thin: each
subsystem owns its state, the engine owns only the clock and the
per-event control flow.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Union

import numpy as np

from repro.config import SimulationConfig
from repro.core.groups import GroupingResult
from repro.errors import SimulationError
from repro.faults.schedule import FaultSchedule
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.obs.profiling import perf_seconds
from repro.simulator.batched import run_batched
from repro.simulator.cache import EdgeCache
from repro.simulator.events import (
    CacheFailEvent,
    CacheRecoverEvent,
    Event,
    EventColumns,
    EventQueue,
    OriginUpdateEvent,
    PartitionEndEvent,
    PartitionStartEvent,
    RequestEvent,
    columns_from_arrays,
)
from repro.simulator.group_proto import GroupProtocol, LookupOutcome
from repro.simulator.latency import LatencyModel
from repro.simulator.metrics import SimulationMetrics
from repro.simulator.origin import OriginServer
from repro.simulator.origin_load import OriginLoadTracker
from repro.simulator.replacement import make_policy
from repro.simulator.state import CacheStore
from repro.topology.network import EdgeCacheNetwork
from repro.types import NodeId
from repro.workload.ibm_synthetic import Workload

#: Event loop used when the caller passes ``event_loop=None``.  The
#: batched loop (:mod:`repro.simulator.batched`) is bit-identical to
#: ``"sorted"`` on every metric, trace, and figure — pinned by the
#: loop-equivalence tests — so it is safe as the default; tests
#: monkeypatch this constant to pit the loops against each other.
DEFAULT_EVENT_LOOP = "batched"

#: Cumulative events processed by every engine run in this process.
#: Updated once per completed run (never inside the hot loop), it lets
#: the scheduler's worker telemetry attribute events/s to each task
#: without attaching an observer — see repro.runtime.telemetry.
_EVENTS_TOTAL = 0


def events_total() -> int:
    """Cumulative events processed by this process's engines.

    Telemetry only: deltas of this counter around a work unit give the
    unit's event count; the value never feeds back into simulation.
    """
    return _EVENTS_TOTAL


def absorb_events(count: int) -> None:
    """Fold a worker's event-count delta into this process's counter.

    :meth:`repro.runtime.scheduler.TaskScheduler.map` calls this while
    reassembling pool results, so the parent's :func:`events_total`
    after a parallel map matches what a serial run would report.  This
    is the registered merge-back hook for ``_EVENTS_TOTAL`` — see
    ``repro.lint.effects.MERGE_BACK_REGISTRY`` (the
    ``shared-mutable-global`` rule flags task-reachable counters
    without one).
    """
    global _EVENTS_TOTAL  # noqa: PLW0603 - the sanctioned merge-back site
    _EVENTS_TOTAL += int(count)


class SimulationEngine:
    """One simulation run over a fixed network, grouping, and workload."""

    def __init__(
        self,
        network: EdgeCacheNetwork,
        grouping: GroupingResult,
        workload: Workload,
        config: Optional[SimulationConfig] = None,
        group_protocol_mode: str = "beacon",
        failures: Sequence[Union[CacheFailEvent, CacheRecoverEvent]] = (),
        observer: Optional[Observer] = None,
        event_loop: Optional[str] = None,
        faults: Optional[FaultSchedule] = None,
    ) -> None:
        if event_loop is None:
            event_loop = DEFAULT_EVENT_LOOP
        if event_loop not in ("sorted", "heap", "batched"):
            raise SimulationError(
                f"unknown event loop {event_loop!r} "
                f"(expected 'sorted', 'heap', or 'batched')"
            )
        self._event_loop = event_loop
        self._config = config or SimulationConfig()
        # Single gate for all instrumentation: when no instrument is
        # attached the per-event overhead is one cached boolean check.
        self._observer = observer if observer is not None else NULL_OBSERVER
        self._instrumented = self._observer.active
        self._config.validate()
        self._network = network
        self._workload = workload

        grouped = set(grouping.all_members)
        expected = set(network.cache_nodes)
        if grouped != expected:
            raise SimulationError(
                "grouping must cover exactly the network's caches: "
                f"{len(grouped)} grouped vs {len(expected)} in network"
            )

        self._origin = OriginServer(workload.catalog)
        # Failed caches, shared with the protocol so lookups never
        # target them.
        self._down: Set[NodeId] = set()
        # Active partitions (node -> partition id), shared with the
        # protocol so cooperative lookups never cross a cut.
        self._partition_of: Dict[NodeId, int] = {}
        self._fault_schedule = faults
        if faults is not None:
            faults.validate()
            self._partition_timeout_ms = faults.partition_timeout_ms
        else:
            self._partition_timeout_ms = 500.0
        self._protocol = GroupProtocol(
            network,
            grouping,
            group_lookup_ms=self._config.group_lookup_ms,
            mode=group_protocol_mode,
            unavailable=self._down,
            partition_of=self._partition_of,
            partition_timeout_ms=self._partition_timeout_ms,
        )
        self._latency = LatencyModel(network, self._config)
        self._metrics = SimulationMetrics(network.cache_nodes)
        self._origin_load: Optional[OriginLoadTracker] = None
        if self._config.origin_queueing:
            self._origin_load = OriginLoadTracker(
                capacity_rps=self._config.origin_capacity_rps,
                window_ms=self._config.origin_load_window_ms,
            )

        capacity = max(
            1,
            int(
                self._config.cache.capacity_fraction
                * workload.catalog.total_bytes
            ),
        )
        # One struct-of-records store shared by every cache of the run
        # (the batched loop drives its records directly; the per-node
        # EdgeCache objects are thin views).
        self._store = CacheStore()
        self._caches: Dict[NodeId, EdgeCache] = {
            node: EdgeCache(
                node=node,
                capacity_bytes=capacity,
                policy=make_policy(self._config.cache.replacement_policy),
                on_evict=self._protocol.drop_copy,
                store=self._store,
            )
            for node in network.cache_nodes
        }

        self._events = EventQueue()
        self._columns: Optional[EventColumns] = None
        self._columns_consumed = False
        if event_loop == "batched":
            # Columnar request stream: no RequestEvent objects at all.
            # The membership check matches the legacy per-push check,
            # reporting the first offender in workload order.
            req_ts, req_cache, req_doc = workload.request_columns()
            if req_cache.size:
                member = np.isin(
                    req_cache,
                    np.fromiter(self._caches, dtype=np.int64),
                )
                if not member.all():
                    bad = int(req_cache[int(np.argmax(~member))])
                    raise SimulationError(
                        f"request targets cache {bad} which is "
                        f"not in the network"
                    )
        else:
            for request in workload.requests:
                if request.cache_node not in self._caches:
                    raise SimulationError(
                        f"request targets cache {request.cache_node} "
                        f"which is not in the network"
                    )
                self._events.push(
                    RequestEvent(
                        timestamp_ms=request.timestamp_ms,
                        cache_node=request.cache_node,
                        doc_id=request.doc_id,
                    )
                )
        # Barrier events, in legacy push order (updates, failures,
        # faults) so the columns' stable timestamp sort reproduces the
        # queue's insertion-sequence tie-break.
        barrier_events: List[Event] = []
        for update in workload.updates:
            barrier_events.append(
                OriginUpdateEvent(
                    timestamp_ms=update.timestamp_ms, doc_id=update.doc_id
                )
            )
        for failure in failures:
            if failure.cache_node not in self._caches:
                raise SimulationError(
                    f"failure event targets unknown cache "
                    f"{failure.cache_node}"
                )
            barrier_events.append(failure)
        if faults is not None:
            for fault_event in faults.events():
                if isinstance(
                    fault_event, (PartitionStartEvent, PartitionEndEvent)
                ):
                    for node in fault_event.nodes:
                        if (
                            node not in self._caches
                            and node != network.origin
                        ):
                            raise SimulationError(
                                f"partition names unknown node {node} "
                                f"(not a cache or the origin)"
                            )
                elif fault_event.cache_node not in self._caches:
                    raise SimulationError(
                        f"fault schedule targets unknown cache "
                        f"{fault_event.cache_node}"
                    )
                barrier_events.append(fault_event)
        if event_loop == "batched":
            self._columns = columns_from_arrays(
                req_ts, req_cache, req_doc, barrier_events
            )
        else:
            for event in barrier_events:
                self._events.push(event)

        total_requests = len(workload.requests)
        self._warmup_remaining = int(
            self._config.warmup_fraction * total_requests
        )
        self._processed_requests = 0

        # Exact-type handler table: the event union is closed, so a
        # single dict lookup replaces the isinstance chain in run().
        self._handlers = {
            RequestEvent: self._handle_request,
            OriginUpdateEvent: self._handle_update,
            CacheFailEvent: self._handle_fail,
            CacheRecoverEvent: self._handle_recover,
            PartitionStartEvent: self._handle_partition_start,
            PartitionEndEvent: self._handle_partition_end,
        }

    @property
    def metrics(self) -> SimulationMetrics:
        return self._metrics

    @property
    def protocol(self) -> GroupProtocol:
        return self._protocol

    @property
    def origin(self) -> OriginServer:
        return self._origin

    def cache(self, node: NodeId) -> EdgeCache:
        try:
            return self._caches[node]
        except KeyError:
            raise SimulationError(f"unknown cache {node}") from None

    @property
    def observer(self) -> Observer:
        return self._observer

    def run(self) -> SimulationMetrics:
        """Process every event; returns the collected metrics.

        The default ``"batched"`` path (see :mod:`repro.simulator.
        batched`) runs the columnar slice kernel — no event objects for
        requests at all.  ``"sorted"`` pre-merges the request, update,
        and failure streams into one timestamp-sorted array — valid
        because every event is known up front and nothing is ever
        scheduled into the future — and dispatches through the per-type
        handler table.  ``"heap"`` keeps the classic per-event ``heapq``
        pop.  All three orders are identical by construction
        (regression-tested bit-for-bit); the legacy paths remain as the
        measurement baseline and paranoia fallback.
        """
        # Wall clock is profiling-only here: it feeds throughput
        # reporting, never event timestamps or simulated behaviour.
        started = perf_seconds()
        if self._event_loop == "batched":
            events_processed = run_batched(self)
        else:
            events_processed = self._run_event_objects()
        global _EVENTS_TOTAL  # noqa: PLW0603 - merged counter, see absorb_events
        _EVENTS_TOTAL += events_processed
        if self._observer is not NULL_OBSERVER:
            # Any caller-supplied observer gets throughput numbers, even
            # one with no per-request instruments (manifest-only runs).
            self._observer.note_throughput(
                events_processed, perf_seconds() - started
            )
        if not self._metrics.conservation_holds():
            raise SimulationError("request conservation violated")
        return self._metrics

    def _run_event_objects(self) -> int:
        """The legacy per-event-object loops ("sorted" and "heap")."""
        sampler = self._observer.sampler if self._instrumented else None
        handlers = self._handlers
        events_processed = 0
        now = 0.0
        if self._event_loop == "sorted":
            pending = iter(self._events.drain_sorted())
        else:
            pending = self._heap_order()
        for event in pending:
            events_processed += 1
            now = event.timestamp_ms
            if sampler is not None:
                # Flush every sample boundary that precedes this event,
                # so sample times align with simulated (not host) time.
                tick = sampler.next_due(now)
                while tick is not None:
                    sampler.flush(tick, **self._sample_gauges(tick))
                    tick = sampler.next_due(now)
            handler = handlers.get(type(event))
            if handler is None:  # pragma: no cover - event union is closed
                raise SimulationError(f"unknown event {event!r}")
            handler(event)
        if sampler is not None:
            sampler.finalize(now, **self._sample_gauges(now))
        return events_processed

    def _heap_order(self):
        """Yield events via per-event heap pops (the legacy loop body)."""
        while self._events:
            yield self._events.pop()

    def _sample_gauges(self, now_ms: float) -> Dict[str, float]:
        """Point-in-time gauges attached to each flushed sample."""
        utilisation = 0.0
        if self._origin_load is not None:
            utilisation = self._origin_load.utilisation(now_ms)
        occupancy = sum(
            c.used_bytes / c.capacity_bytes for c in self._caches.values()
        ) / len(self._caches)
        return {
            "origin_utilisation": utilisation,
            "cache_occupancy": occupancy,
        }

    # -- event handlers ---------------------------------------------------

    def _handle_request(self, event: RequestEvent) -> None:
        cache = self.cache(event.cache_node)
        doc_id = event.doc_id
        now = event.timestamp_ms
        size = self._origin.size_of(doc_id)

        counted = self._warmup_remaining <= self._processed_requests
        self._processed_requests += 1

        if cache.node in self._down:
            # The edge cache is unreachable; the client falls through to
            # the origin directly (no group help, nothing cached).
            stats = self._metrics.cache_stats(cache.node)
            stats.requests_while_down += 1
            account = self._origin_account(
                cache.node, size, query_ms=0.0, now_ms=now
            )
            self._metrics.record_request(
                cache.node, account, messages=0, size_bytes=size,
                counted=counted,
            )
            if self._instrumented:
                self._observer.on_request(
                    now, cache.node, doc_id, account, 0, size,
                    counted, False,
                )
            return

        self._expire_if_due(cache, doc_id, now)
        if cache.holds(doc_id):
            entry = cache.access(doc_id, now)
            account = self._latency.local_hit()
            stale = entry.version < self._origin.version_of(doc_id)
            self._metrics.record_request(
                cache.node, account, messages=0, size_bytes=0,
                counted=counted, stale=stale,
            )
            if self._instrumented:
                self._observer.on_request(
                    now, cache.node, doc_id, account, 0, 0, counted, stale,
                )
            return

        lookup = self._protocol.lookup(cache.node, doc_id)
        if lookup.outcome is LookupOutcome.GROUP_HIT:
            assert lookup.holder is not None
            # A holder found by the directory may itself have expired
            # under TTL consistency; re-check before fetching from it.
            holder_cache = self.cache(lookup.holder)
            self._expire_if_due(holder_cache, doc_id, now)
            if not holder_cache.holds(doc_id):
                lookup = self._degrade_to_miss(lookup)

        if lookup.outcome is LookupOutcome.GROUP_HIT:
            assert lookup.holder is not None
            account = self._latency.group_hit(
                cache.node, lookup.holder, size, query_ms=lookup.query_ms
            )
            fetched_version = self.cache(lookup.holder).entry(doc_id).version
        else:
            account = self._origin_account(
                cache.node, size, query_ms=lookup.query_ms, now_ms=now
            )
            fetched_version = self._origin.version_of(doc_id)

        fetch_cost = account.fetch_ms + account.transfer_ms
        if self._skip_placement(cache.node, lookup):
            self._metrics.cache_stats(cache.node).placement_skips += 1
        else:
            admitted = cache.admit(
                doc_id,
                size,
                fetch_cost_ms=fetch_cost,
                now_ms=now,
                version=fetched_version,
            )
            if admitted:
                self._protocol.record_copy(cache.node, doc_id)
        stale = fetched_version < self._origin.version_of(doc_id)
        self._metrics.record_request(
            cache.node,
            account,
            messages=lookup.messages,
            size_bytes=size,
            counted=counted,
            stale=stale,
        )
        if self._instrumented:
            self._observer.on_request(
                now, cache.node, doc_id, account, lookup.messages, size,
                counted, stale,
            )

    def _origin_account(
        self, cache_node: NodeId, size: int, query_ms: float, now_ms: float
    ):
        """Origin-fetch latency account, congestion-aware when enabled.

        A cache partitioned away from the origin first waits out the
        partition timeout before the fetch succeeds (modelling the
        retry over a backup path once the primary times out).
        """
        if self._partition_of and not self._protocol.reachable(
            cache_node, self._network.origin
        ):
            query_ms += self._partition_timeout_ms
            self._metrics.cache_stats(cache_node).partition_timeouts += 1
        processing = None
        if self._origin_load is not None:
            self._origin_load.record_arrival(now_ms)
            processing = (
                self._config.origin_processing_ms
                * self._origin_load.inflation_factor(now_ms)
            )
        return self._latency.origin_fetch(
            cache_node, size, query_ms=query_ms, processing_ms=processing
        )

    @property
    def origin_load(self) -> Optional[OriginLoadTracker]:
        """The congestion tracker (None unless origin_queueing is on)."""
        return self._origin_load

    def _skip_placement(self, cache_node: NodeId, lookup) -> bool:
        """Cooperative placement: skip storing after a near-peer hit."""
        cache_config = self._config.cache
        if not cache_config.cooperative_placement:
            return False
        if lookup.outcome is not LookupOutcome.GROUP_HIT:
            return False
        assert lookup.holder is not None
        return (
            self._network.rtt(cache_node, lookup.holder)
            <= cache_config.placement_rtt_threshold_ms
        )

    def _expire_if_due(self, cache: EdgeCache, doc_id, now_ms: float) -> None:
        """Drop a TTL-expired copy before it can serve anything."""
        if (
            not self._config.consistency_enabled
            or self._config.consistency_mode != "ttl"
            or not cache.holds(doc_id)
        ):
            return
        entry = cache.entry(doc_id)
        if now_ms - entry.stored_at_ms > self._config.ttl_ms:
            cache.expire(doc_id)

    @staticmethod
    def _degrade_to_miss(lookup):
        """Re-shape a stale GROUP_HIT lookup into a GROUP_MISS."""
        from repro.simulator.group_proto import LookupResult

        return LookupResult(
            outcome=LookupOutcome.GROUP_MISS,
            holder=None,
            query_ms=lookup.query_ms,
            messages=lookup.messages,
        )

    def _handle_fail(self, event: CacheFailEvent) -> None:
        """Crash a cache: contents lost, directory cleaned, node down."""
        cache = self.cache(event.cache_node)
        if event.cache_node in self._down:
            raise SimulationError(
                f"cache {event.cache_node} failed while already down"
            )
        for doc_id in list(cache.stored_ids()):
            cache.expire(doc_id)  # eviction callback cleans the directory
        self._down.add(event.cache_node)
        if self._instrumented:
            self._observer.on_cache_fail(
                event.timestamp_ms, event.cache_node
            )

    def _handle_recover(self, event: CacheRecoverEvent) -> None:
        """A failed cache rejoins, empty."""
        if event.cache_node not in self._down:
            raise SimulationError(
                f"cache {event.cache_node} recovered but was not down"
            )
        self._down.discard(event.cache_node)
        if self._instrumented:
            self._observer.on_cache_recover(
                event.timestamp_ms, event.cache_node
            )

    def _handle_partition_start(self, event: PartitionStartEvent) -> None:
        """A node set splits off; overlapping partitions are rejected."""
        for node in event.nodes:
            if node in self._partition_of:
                raise SimulationError(
                    f"node {node} is already in partition "
                    f"{self._partition_of[node]}"
                )
            self._partition_of[node] = event.partition_id
        if self._instrumented:
            self._observer.on_partition_start(
                event.timestamp_ms, event.nodes
            )

    def _handle_partition_end(self, event: PartitionEndEvent) -> None:
        """The partition heals; its nodes rejoin the main component."""
        for node in event.nodes:
            if node not in self._partition_of:
                raise SimulationError(
                    f"node {node} left a partition it was never in"
                )
            del self._partition_of[node]
        if self._instrumented:
            self._observer.on_partition_end(event.timestamp_ms, event.nodes)

    def _handle_update(self, event: OriginUpdateEvent) -> None:
        self._origin.apply_update(event.doc_id)
        if self._instrumented:
            self._observer.on_origin_update(event.timestamp_ms, event.doc_id)
        if (
            not self._config.consistency_enabled
            or self._config.consistency_mode != "invalidate"
        ):
            return
        # Server-driven invalidation: every cache holding the document
        # drops its stale copy (see repro.simulator.origin for the
        # immediacy simplification).
        for holder in list(self._protocol.all_holders(event.doc_id)):
            if self._partition_of and not self._protocol.reachable(
                holder, self._network.origin
            ):
                # The invalidation cannot cross the cut; the partitioned
                # holder keeps (and may serve) its stale copy.
                continue
            dropped = self.cache(holder).invalidate(event.doc_id)
            if dropped:
                self._metrics.record_invalidation(holder)
