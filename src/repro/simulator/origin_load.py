"""Origin load tracking and congestion-dependent processing time.

When ``SimulationConfig.origin_queueing`` is on, the origin's per-request
processing time inflates with its recent load: with arrival rate λ
(estimated over a sliding window) and capacity μ, the M/M/1 mean
response factor is ``1 / (1 - ρ)`` for utilisation ``ρ = λ/μ``, clamped
below saturation.  Cooperative caching's origin-offload benefit — one
of the paper's three motivations for cache cooperation — then shows up
directly in the latency numbers.
"""

from __future__ import annotations

from collections import deque

from repro.errors import SimulationError
from repro.types import MS_PER_S

#: Utilisation clamp: past this the queue model would diverge; a real
#: origin degrades (sheds load / queues unboundedly), which we cap as a
#: large-but-finite inflation factor.
MAX_UTILISATION = 0.95


class OriginLoadTracker:
    """Sliding-window arrival counter with an M/M/1 inflation factor."""

    def __init__(self, capacity_rps: float, window_ms: float) -> None:
        if capacity_rps <= 0:
            raise SimulationError("capacity_rps must be > 0")
        if window_ms <= 0:
            raise SimulationError("window_ms must be > 0")
        self._capacity_per_ms = capacity_rps / MS_PER_S
        self._window_ms = window_ms
        self._arrivals: deque = deque()
        self._peak_utilisation = 0.0

    def record_arrival(self, now_ms: float) -> None:
        """Note one origin fetch at ``now_ms`` (non-decreasing times)."""
        if self._arrivals and now_ms < self._arrivals[-1]:
            raise SimulationError(
                f"arrival at {now_ms} precedes last at {self._arrivals[-1]}"
            )
        self._arrivals.append(now_ms)
        self._evict(now_ms)

    def utilisation(self, now_ms: float) -> float:
        """Current ρ = (windowed arrival rate) / capacity, clamped."""
        self._evict(now_ms)
        rate_per_ms = len(self._arrivals) / self._window_ms
        rho = min(rate_per_ms / self._capacity_per_ms, MAX_UTILISATION)
        if rho > self._peak_utilisation:
            self._peak_utilisation = rho
        return rho

    def inflation_factor(self, now_ms: float) -> float:
        """The 1/(1-ρ) processing-time multiplier (≥ 1)."""
        return 1.0 / (1.0 - self.utilisation(now_ms))

    @property
    def peak_utilisation(self) -> float:
        """Highest utilisation observed so far (for reporting)."""
        return self._peak_utilisation

    def _evict(self, now_ms: float) -> None:
        cutoff = now_ms - self._window_ms
        while self._arrivals and self._arrivals[0] < cutoff:
            self._arrivals.popleft()
