"""The :class:`EdgeCache`: bounded storage with pluggable replacement.

An edge cache stores document copies up to a byte capacity.  Insertion
evicts victims (chosen by the replacement policy) until the new
document fits; documents larger than the whole cache are simply not
admitted (served pass-through), which matches standard proxy behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import SimulationError
from repro.simulator.replacement import ReplacementPolicy
from repro.types import DocumentId, NodeId


@dataclass
class CachedDocument:
    """One stored copy: size plus bookkeeping for metrics/consistency."""

    doc_id: DocumentId
    size_bytes: int
    stored_at_ms: float
    version: int


class EdgeCache:
    """Bounded document store owned by one edge cache node."""

    def __init__(
        self,
        node: NodeId,
        capacity_bytes: int,
        policy: ReplacementPolicy,
        on_evict: Optional[Callable[[NodeId, DocumentId], None]] = None,
    ) -> None:
        if capacity_bytes <= 0:
            raise SimulationError(
                f"cache {node} capacity must be > 0, got {capacity_bytes}"
            )
        self._node = node
        self._capacity = capacity_bytes
        self._policy = policy
        self._store: Dict[DocumentId, CachedDocument] = {}
        self._used = 0
        # Callback lets the group directory track copies without the
        # cache knowing about groups.
        self._on_evict = on_evict

    # -- inspection ----------------------------------------------------

    @property
    def node(self) -> NodeId:
        return self._node

    @property
    def capacity_bytes(self) -> int:
        return self._capacity

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def document_count(self) -> int:
        return len(self._store)

    def holds(self, doc_id: DocumentId) -> bool:
        return doc_id in self._store

    def entry(self, doc_id: DocumentId) -> CachedDocument:
        try:
            return self._store[doc_id]
        except KeyError:
            raise SimulationError(
                f"cache {self._node} does not hold doc {doc_id}"
            ) from None

    def stored_ids(self) -> List[DocumentId]:
        return list(self._store)

    # -- operations ----------------------------------------------------

    def access(self, doc_id: DocumentId, now_ms: float) -> CachedDocument:
        """Serve a local hit; updates replacement bookkeeping."""
        entry = self.entry(doc_id)
        self._policy.on_access(doc_id, now_ms)
        return entry

    def admit(
        self,
        doc_id: DocumentId,
        size_bytes: int,
        fetch_cost_ms: float,
        now_ms: float,
        version: int,
    ) -> bool:
        """Try to store a fetched document; returns False if inadmissible.

        Evicts according to the policy until the document fits.  A
        document already present is refreshed in place (version bump,
        access credit) with no extra space accounting.
        """
        if size_bytes <= 0:
            raise SimulationError(
                f"cannot admit doc {doc_id} with size {size_bytes}"
            )
        if doc_id in self._store:
            entry = self._store[doc_id]
            entry.version = version
            entry.stored_at_ms = now_ms
            self._policy.on_access(doc_id, now_ms)
            return True
        if size_bytes > self._capacity:
            return False
        while self._used + size_bytes > self._capacity:
            victim = self._policy.select_victim()
            self._remove(victim, invalidated=False)
        self._store[doc_id] = CachedDocument(
            doc_id=doc_id,
            size_bytes=size_bytes,
            stored_at_ms=now_ms,
            version=version,
        )
        self._used += size_bytes
        self._policy.on_insert(doc_id, size_bytes, fetch_cost_ms, now_ms)
        return True

    def expire(self, doc_id: DocumentId) -> bool:
        """Drop a copy whose TTL lapsed (no invalidation feedback).

        Unlike :meth:`invalidate`, expiry is a local timer decision and
        carries no signal about the document's update rate, so the
        replacement policy is not notified of an invalidation.
        """
        if doc_id not in self._store:
            return False
        self._remove(doc_id, invalidated=False)
        return True

    def invalidate(self, doc_id: DocumentId) -> bool:
        """Drop a document because the origin updated it.

        Returns True if a copy was actually dropped.  The policy gets
        invalidation feedback first so utility-based replacement learns
        the document's update rate.
        """
        if doc_id not in self._store:
            return False
        self._policy.on_invalidation_feedback(doc_id)
        self._remove(doc_id, invalidated=True)
        return True

    def _remove(self, doc_id: DocumentId, invalidated: bool) -> None:
        entry = self._store.pop(doc_id)
        self._used -= entry.size_bytes
        if self._used < 0:
            raise SimulationError(
                f"cache {self._node} accounting went negative"
            )
        self._policy.on_remove(doc_id, invalidated=invalidated)
        if self._on_evict is not None:
            self._on_evict(self._node, doc_id)
