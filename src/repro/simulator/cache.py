"""The :class:`EdgeCache`: bounded storage with pluggable replacement.

An edge cache stores document copies up to a byte capacity.  Insertion
evicts victims (chosen by the replacement policy) until the new
document fits; documents larger than the whole cache are simply not
admitted (served pass-through), which matches standard proxy behaviour.

Storage lives in a :class:`repro.simulator.state.CacheStore` — a
struct-of-records table shared by every cache of a run — and the
``EdgeCache`` is a thin per-node view over it.  The legacy event loops
drive caches through the methods below; the batched loop mutates the
same store records directly (see :mod:`repro.simulator.batched`), so
both worlds observe identical state through this one API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import SimulationError
from repro.simulator.replacement import ReplacementPolicy
from repro.simulator.state import (
    REC_SIZE,
    REC_STORED_AT,
    REC_VERSION,
    CacheStore,
)
from repro.types import DocumentId, NodeId


@dataclass
class CachedDocument:
    """One stored copy: size plus bookkeeping for metrics/consistency.

    A transient snapshot of the underlying store record — read it, don't
    mutate it (mutations would not reach the store).
    """

    doc_id: DocumentId
    size_bytes: int
    stored_at_ms: float
    version: int


class EdgeCache:
    """Bounded document store owned by one edge cache node."""

    def __init__(
        self,
        node: NodeId,
        capacity_bytes: int,
        policy: ReplacementPolicy,
        on_evict: Optional[Callable[[NodeId, DocumentId], None]] = None,
        store: Optional[CacheStore] = None,
    ) -> None:
        self._node = node
        self._policy = policy
        # Callback lets the group directory track copies without the
        # cache knowing about groups.
        self._on_evict = on_evict
        self._state = store if store is not None else CacheStore()
        self._state.register(node, capacity_bytes)
        self._capacity = capacity_bytes
        # Bound alias of this node's record table — the hot-path handle.
        self._docs: Dict[DocumentId, List] = self._state.docs[node]

    # -- inspection ----------------------------------------------------

    @property
    def node(self) -> NodeId:
        return self._node

    @property
    def capacity_bytes(self) -> int:
        return self._capacity

    @property
    def used_bytes(self) -> int:
        return self._state.used[self._node]

    @property
    def document_count(self) -> int:
        return len(self._docs)

    @property
    def policy(self) -> ReplacementPolicy:
        """The replacement policy driving this cache's evictions."""
        return self._policy

    @property
    def store(self) -> CacheStore:
        """The shared columnar store this cache is a view over."""
        return self._state

    def holds(self, doc_id: DocumentId) -> bool:
        return doc_id in self._docs

    def entry(self, doc_id: DocumentId) -> CachedDocument:
        try:
            record = self._docs[doc_id]
        except KeyError:
            raise SimulationError(
                f"cache {self._node} does not hold doc {doc_id}"
            ) from None
        return CachedDocument(
            doc_id=doc_id,
            size_bytes=record[REC_SIZE],
            stored_at_ms=record[REC_STORED_AT],
            version=record[REC_VERSION],
        )

    def stored_ids(self) -> List[DocumentId]:
        return list(self._docs)

    # -- operations ----------------------------------------------------

    def access(self, doc_id: DocumentId, now_ms: float) -> CachedDocument:
        """Serve a local hit; updates replacement bookkeeping."""
        entry = self.entry(doc_id)
        self._policy.on_access(doc_id, now_ms)
        return entry

    def admit(
        self,
        doc_id: DocumentId,
        size_bytes: int,
        fetch_cost_ms: float,
        now_ms: float,
        version: int,
    ) -> bool:
        """Try to store a fetched document; returns False if inadmissible.

        Evicts according to the policy until the document fits.  A
        document already present is refreshed in place (version bump,
        access credit) with no extra space accounting.
        """
        if size_bytes <= 0:
            raise SimulationError(
                f"cannot admit doc {doc_id} with size {size_bytes}"
            )
        record = self._docs.get(doc_id)
        if record is not None:
            record[REC_VERSION] = version
            record[REC_STORED_AT] = now_ms
            self._policy.on_access(doc_id, now_ms)
            return True
        if size_bytes > self._capacity:
            return False
        used = self._state.used
        node = self._node
        while used[node] + size_bytes > self._capacity:
            victim = self._policy.select_victim()
            self._remove(victim, invalidated=False)
        self._docs[doc_id] = [size_bytes, now_ms, version]
        used[node] += size_bytes
        self._policy.on_insert(doc_id, size_bytes, fetch_cost_ms, now_ms)
        return True

    def expire(self, doc_id: DocumentId) -> bool:
        """Drop a copy whose TTL lapsed (no invalidation feedback).

        Unlike :meth:`invalidate`, expiry is a local timer decision and
        carries no signal about the document's update rate, so the
        replacement policy is not notified of an invalidation.
        """
        if doc_id not in self._docs:
            return False
        self._remove(doc_id, invalidated=False)
        return True

    def invalidate(self, doc_id: DocumentId) -> bool:
        """Drop a document because the origin updated it.

        Returns True if a copy was actually dropped.  The policy gets
        invalidation feedback first so utility-based replacement learns
        the document's update rate.
        """
        if doc_id not in self._docs:
            return False
        self._policy.on_invalidation_feedback(doc_id)
        self._remove(doc_id, invalidated=True)
        return True

    def _remove(self, doc_id: DocumentId, invalidated: bool) -> None:
        record = self._docs.pop(doc_id)
        used = self._state.used
        used[self._node] -= record[REC_SIZE]
        if used[self._node] < 0:
            raise SimulationError(
                f"cache {self._node} accounting went negative"
            )
        self._policy.on_remove(doc_id, invalidated=invalidated)
        if self._on_evict is not None:
            self._on_evict(self._node, doc_id)
