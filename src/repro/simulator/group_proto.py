"""Cooperative group protocol: directory tracking and miss handling.

Within a cache group, a local miss triggers cooperation ("possibly by
contacting other caches in the group or the origin server").  Three
query models are provided:

* ``"beacon"`` (default) — per-document hash-based lookup, the Cache
  Clouds mechanism of the paper's reference [7] whose "utility-based
  document placement and replacement" the simulated caches implement.
  Each document hashes to a *beacon* member of the group which tracks
  the document's in-group holders.  A local miss costs one RTT to the
  beacon (zero when the requester is the beacon), then on a group hit
  one more RTT to the nearest holder plus transfer.  Every miss
  therefore pays a cost that grows with the group's spread — the
  efficiency side of the paper's trade-off — while hits get cheaper as
  groups gain members — the effectiveness side.
* ``"multicast"`` (ICP-style) — the requesting cache multicasts the
  query to all peers.  On a group hit it proceeds on the nearest
  holder's positive reply; on a group-wide miss it must wait for *all*
  negative replies (one RTT to the farthest peer).  Harsher on
  spread-out groups than the beacon scheme.
* ``"directory"`` — an idealised zero-distance group directory answers
  in a fixed ``group_lookup_ms``; used by ablations to isolate how much
  of the SL/SDSL benefit survives without any distance-dependent
  lookup penalty.

The :class:`GroupProtocol` also maintains the copy directory (which
caches hold which document) kept exact via cache eviction callbacks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.core.groups import GroupingResult
from repro.errors import SimulationError
from repro.topology.network import EdgeCacheNetwork
from repro.types import DocumentId, NodeId


class LookupOutcome(enum.Enum):
    """How a group lookup resolved."""

    NO_PEERS = "no_peers"          # singleton group: nothing to ask
    GROUP_HIT = "group_hit"        # a peer holds the document
    GROUP_MISS = "group_miss"      # all peers answered negative


@dataclass(frozen=True)
class LookupResult:
    """Outcome of one cooperative lookup."""

    outcome: LookupOutcome
    #: the peer to fetch from on a GROUP_HIT, else None
    holder: Optional[NodeId]
    #: time spent on the query phase (ms)
    query_ms: float
    #: number of query/response messages exchanged
    messages: int


class GroupProtocol:
    """Directory plus query-cost model for one grouping of one network."""

    def __init__(
        self,
        network: EdgeCacheNetwork,
        grouping: GroupingResult,
        group_lookup_ms: float = 0.3,
        mode: str = "beacon",
        unavailable: Optional[Set[NodeId]] = None,
        partition_of: Optional[Dict[NodeId, int]] = None,
        partition_timeout_ms: float = 500.0,
    ) -> None:
        if mode not in ("beacon", "multicast", "directory"):
            raise SimulationError(f"unknown group protocol mode {mode!r}")
        if group_lookup_ms < 0:
            raise SimulationError("group_lookup_ms must be >= 0")
        self._network = network
        self._grouping = grouping
        self._lookup_ms = group_lookup_ms
        self._mode = mode
        # The raw RTT matrix, read directly on the per-request hot path
        # (node ids are validated once at construction; the checked
        # DistanceMatrix API costs ~3x per lookup).
        self._rtt_ms = network.distances.as_array()
        # Shared, caller-mutated set of currently-failed caches; lookups
        # never return them and beacons hosted on them cannot answer.
        self._unavailable: Set[NodeId] = (
            unavailable if unavailable is not None else set()
        )
        # Shared, caller-mutated map node -> active partition id.  Two
        # nodes can talk iff they map to the same partition (both
        # unpartitioned nodes map to None via .get).  Empty = no
        # partition active, and every check below short-circuits.
        self._partition_of: Dict[NodeId, int] = (
            partition_of if partition_of is not None else {}
        )
        if partition_timeout_ms < 0:
            raise SimulationError("partition_timeout_ms must be >= 0")
        self._partition_timeout_ms = partition_timeout_ms

        self._peers: Dict[NodeId, List[NodeId]] = {}
        self._max_peer_rtt: Dict[NodeId, float] = {}
        self._members_sorted: Dict[NodeId, List[NodeId]] = {}
        for group in grouping.groups:
            members = sorted(group.members)
            for member in group.members:
                peers = group.peers_of(member)
                self._peers[member] = peers
                self._members_sorted[member] = members
                if peers:
                    self._max_peer_rtt[member] = float(
                        self._rtt_ms[member][peers].max()
                    )
                else:
                    self._max_peer_rtt[member] = 0.0

        # doc -> group id -> holders.  Scoped per group because lookups
        # never cross group boundaries.
        self._holders: Dict[DocumentId, Dict[int, Set[NodeId]]] = {}
        self._group_of: Dict[NodeId, int] = grouping.membership()

    @property
    def mode(self) -> str:
        return self._mode

    def hot_state(self) -> Dict[str, object]:
        """The protocol's mutable internals, for inline (batched) driving.

        The batched event loop replicates ``lookup``/``record_copy``/
        ``drop_copy`` as inline operations on these very structures
        (the loop-equivalence tests pin bit-identical outcomes), so the
        protocol object stays consistent whether it was driven through
        methods or through the kernel.  ``holders``, ``unavailable``
        and ``partition_of`` are the live shared objects — mutate only
        by replaying the exact method semantics.
        """
        return {
            "holders": self._holders,
            "group_of": self._group_of,
            "peers": self._peers,
            "members_sorted": self._members_sorted,
            "max_peer_rtt": self._max_peer_rtt,
            "unavailable": self._unavailable,
            "partition_of": self._partition_of,
            "lookup_ms": self._lookup_ms,
            "partition_timeout_ms": self._partition_timeout_ms,
            "mode": self._mode,
            "rtt_ms": self._rtt_ms,
        }

    def peers_of(self, cache: NodeId) -> List[NodeId]:
        """Group peers of one cache (empty for singleton groups)."""
        try:
            return self._peers[cache]
        except KeyError:
            raise SimulationError(f"cache {cache} is not grouped") from None

    def max_peer_rtt(self, cache: NodeId) -> float:
        """RTT to the farthest group peer (0 for singleton groups)."""
        return self._max_peer_rtt[cache]

    # -- directory maintenance ----------------------------------------

    def record_copy(self, cache: NodeId, doc_id: DocumentId) -> None:
        """A cache stored a copy of a document."""
        group = self._require_group(cache)
        self._holders.setdefault(doc_id, {}).setdefault(group, set()).add(cache)

    def drop_copy(self, cache: NodeId, doc_id: DocumentId) -> None:
        """A cache dropped its copy (eviction or invalidation).

        Idempotent: inadmissible documents were never recorded.
        """
        group = self._require_group(cache)
        by_group = self._holders.get(doc_id)
        if not by_group:
            return
        holders = by_group.get(group)
        if holders is not None:
            holders.discard(cache)
            if not holders:
                del by_group[group]
        if not by_group:
            del self._holders[doc_id]

    def holders_in_group(
        self, cache: NodeId, doc_id: DocumentId
    ) -> List[NodeId]:
        """Available group peers of ``cache`` currently holding ``doc_id``."""
        group = self._require_group(cache)
        holders = self._holders.get(doc_id, {}).get(group, set())
        out = [
            h for h in holders
            if h != cache and h not in self._unavailable
        ]
        if self._partition_of:
            side = self._partition_of.get(cache)
            out = [h for h in out if self._partition_of.get(h) == side]
        return out

    def reachable(self, a: NodeId, b: NodeId) -> bool:
        """True when no active partition separates the two nodes."""
        if not self._partition_of:
            return True
        return self._partition_of.get(a) == self._partition_of.get(b)

    def all_holders(self, doc_id: DocumentId) -> List[NodeId]:
        """Every cache network-wide holding the document (for invalidation)."""
        by_group = self._holders.get(doc_id, {})
        out: List[NodeId] = []
        for holders in by_group.values():
            out.extend(holders)
        return out

    # -- cooperative lookup --------------------------------------------

    def lookup(self, cache: NodeId, doc_id: DocumentId) -> LookupResult:
        """Resolve a local miss through the group (see module docstring)."""
        peers = self.peers_of(cache)
        if not peers:
            return LookupResult(
                outcome=LookupOutcome.NO_PEERS,
                holder=None,
                query_ms=0.0,
                messages=0,
            )

        holders = self.holders_in_group(cache, doc_id)
        rtt_row = self._rtt_ms[cache]
        if self._mode == "directory":
            query_ms = self._lookup_ms
            messages = 2  # directory request + reply
        elif self._mode == "beacon":
            beacon = self.beacon_of(cache, doc_id)
            # Asking yourself is free; otherwise one round trip to the
            # hash-designated beacon member.
            query_ms = self._lookup_ms + (
                0.0 if beacon == cache else float(rtt_row[beacon])
            )
            messages = 0 if beacon == cache else 2
            if beacon != cache and beacon in self._unavailable:
                # The only member who knows the holders is down: the
                # query times out (one wasted round trip) and the miss
                # path is taken even if live holders exist.
                return LookupResult(
                    outcome=LookupOutcome.GROUP_MISS,
                    holder=None,
                    query_ms=query_ms,
                    messages=1,  # the unanswered query
                )
            if beacon != cache and not self.reachable(cache, beacon):
                # The beacon is alive but on the other side of a
                # partition: the query never returns and the requester
                # waits out the full partition timeout before falling
                # back to the origin.
                return LookupResult(
                    outcome=LookupOutcome.GROUP_MISS,
                    holder=None,
                    query_ms=self._lookup_ms + self._partition_timeout_ms,
                    messages=1,  # the unanswered query
                )
        else:  # multicast
            live_peers = [p for p in peers if p not in self._unavailable]
            if self._partition_of:
                reachable_live = [
                    p for p in live_peers if self.reachable(cache, p)
                ]
            else:
                reachable_live = live_peers
            if holders:
                # Proceed on the nearest holder's positive reply
                # (holders_in_group already filtered out peers across
                # the partition).
                query_ms = self._lookup_ms + self._nearest_rtt(
                    rtt_row, holders
                )[1]
            else:
                # Must collect every reachable live peer's negative
                # reply before giving up (down peers simply never
                # answer; we charge the live-peer wait, not a timeout).
                # Partitioned live peers *do* cost a timeout: the
                # requester cannot tell a slow reply from a cut link.
                query_ms = self._lookup_ms
                if reachable_live:
                    query_ms += max(
                        float(rtt_row[p]) for p in reachable_live
                    )
                if len(reachable_live) != len(live_peers):
                    query_ms = max(
                        query_ms,
                        self._lookup_ms + self._partition_timeout_ms,
                    )
            # queries + live replies (partitioned peers never reply)
            messages = len(peers) + len(reachable_live)

        if holders:
            nearest, _ = self._nearest_rtt(rtt_row, holders)
            return LookupResult(
                outcome=LookupOutcome.GROUP_HIT,
                holder=nearest,
                query_ms=query_ms,
                messages=messages,
            )
        return LookupResult(
            outcome=LookupOutcome.GROUP_MISS,
            holder=None,
            query_ms=query_ms,
            messages=messages,
        )

    @staticmethod
    def _nearest_rtt(rtt_row, candidates):
        """The first-minimum candidate and its RTT from a raw matrix row.

        Semantics match ``min(candidates, key=rtt)``: strict-less
        comparison, first winner on ties — so swapping this in keeps
        results bit-identical to the checked-API implementation.
        """
        best = candidates[0]
        best_rtt = rtt_row[best]
        for candidate in candidates[1:]:
            rtt = rtt_row[candidate]
            if rtt < best_rtt:
                best_rtt = rtt
                best = candidate
        return best, float(best_rtt)

    def beacon_of(self, cache: NodeId, doc_id: DocumentId) -> NodeId:
        """The group member designated beacon for a document.

        Deterministic hash of the document id over the sorted member
        list (Cache Clouds' dynamic-hashing cooperation), so every
        member agrees on the beacon without communication.
        """
        members = self._members_sorted.get(cache)
        if members is None:
            raise SimulationError(f"cache {cache} is not grouped")
        # Knuth multiplicative hash keeps beacons well spread even for
        # consecutive document ids.
        index = (doc_id * 2654435761) % len(members)
        return members[index]

    def _require_group(self, cache: NodeId) -> int:
        try:
            return self._group_of[cache]
        except KeyError:
            raise SimulationError(f"cache {cache} is not grouped") from None
