"""Declarative fault timelines for the simulator.

A :class:`FaultSchedule` lists everything that goes wrong during one
simulation run: cache crash/recover times and network partitions (a set
of nodes — possibly including the origin — cut off from everything
outside the set for a time window).  :meth:`FaultSchedule.events`
lowers the timeline into engine events, so schedules ride the same
deterministic event queue as requests and updates.

:func:`random_fault_schedule` generates a seeded schedule from
content-keyed :class:`repro.utils.rng.RngFactory` streams — the
workhorse of the resilience property tests and sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.errors import SimulationError
from repro.types import NodeId
from repro.utils.rng import RngFactory
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class PartitionSpec:
    """One partition window: ``nodes`` split off during [start, end)."""

    start_ms: float
    end_ms: float
    nodes: Tuple[NodeId, ...]

    def validate(self) -> None:
        check_non_negative("partition start_ms", self.start_ms,
                           exc=SimulationError)
        if not self.end_ms > self.start_ms:
            raise SimulationError(
                f"partition end_ms must be > start_ms, got "
                f"[{self.start_ms}, {self.end_ms}]"
            )
        if not self.nodes:
            raise SimulationError(
                "a partition needs at least one node in its node set"
            )
        if len(set(self.nodes)) != len(self.nodes):
            raise SimulationError(
                f"partition node set has duplicates: {self.nodes}"
            )
        for node in self.nodes:
            check_non_negative("partition node id", node, exc=SimulationError)


@dataclass(frozen=True)
class FaultSchedule:
    """Everything that goes wrong during one simulation run."""

    #: (fail_ms, cache) pairs — the cache crashes, losing its contents
    crashes: Tuple[Tuple[float, NodeId], ...] = ()
    #: (recover_ms, cache) pairs — the cache rejoins, empty
    recoveries: Tuple[Tuple[float, NodeId], ...] = ()
    partitions: Tuple[PartitionSpec, ...] = ()
    #: wait charged when a query crosses a partition and times out (ms)
    partition_timeout_ms: float = 500.0

    def validate(self) -> None:
        """Raise :class:`repro.errors.SimulationError` on bad timelines."""
        check_positive("partition_timeout_ms", self.partition_timeout_ms,
                       exc=SimulationError)
        for when, node in (*self.crashes, *self.recoveries):
            check_non_negative("fault event time", when, exc=SimulationError)
            check_non_negative("fault event cache id", node,
                               exc=SimulationError)
        for spec in self.partitions:
            spec.validate()

    def is_empty(self) -> bool:
        return not (self.crashes or self.recoveries or self.partitions)

    def events(self) -> List[object]:
        """Lower the timeline into engine events (validated first)."""
        # Imported here, not at module level: the simulator package
        # imports this module (engine takes a FaultSchedule), so a
        # top-level import would be circular.
        from repro.simulator.events import (
            CacheFailEvent,
            CacheRecoverEvent,
            PartitionEndEvent,
            PartitionStartEvent,
        )

        self.validate()
        out: List[object] = []
        for when, node in self.crashes:
            out.append(CacheFailEvent(timestamp_ms=when, cache_node=node))
        for when, node in self.recoveries:
            out.append(CacheRecoverEvent(timestamp_ms=when, cache_node=node))
        for index, spec in enumerate(self.partitions):
            out.append(PartitionStartEvent(
                timestamp_ms=spec.start_ms,
                nodes=spec.nodes,
                partition_id=index + 1,
            ))
            out.append(PartitionEndEvent(
                timestamp_ms=spec.end_ms, nodes=spec.nodes
            ))
        return out


def random_fault_schedule(
    cache_nodes: Sequence[NodeId],
    duration_ms: float,
    rng_factory: RngFactory,
    crash_fraction: float = 0.25,
    partition_count: int = 1,
    partition_size: int = 2,
    partition_timeout_ms: float = 500.0,
) -> FaultSchedule:
    """A seeded crash/recover + partition timeline over ``cache_nodes``.

    Roughly ``crash_fraction`` of the caches crash at a random time and
    recover later in the run; ``partition_count`` windows each cut
    ``partition_size`` caches off from the rest.  All draws come from
    content-keyed streams of a ``"fault-schedule"`` fork, so the same
    (nodes, duration, factory) always yields the same schedule.
    """
    if duration_ms <= 0:
        raise SimulationError(
            f"duration_ms must be > 0, got {duration_ms}"
        )
    nodes = list(cache_nodes)
    factory = rng_factory.fork("fault-schedule")
    crash_rng = factory.stream("crashes")
    crashes: List[Tuple[float, NodeId]] = []
    recoveries: List[Tuple[float, NodeId]] = []
    crash_count = int(round(crash_fraction * len(nodes)))
    if crash_count:
        picks = crash_rng.choice(len(nodes), size=crash_count, replace=False)
        for i in sorted(int(p) for p in picks):
            fail_at = float(crash_rng.uniform(0.0, duration_ms * 0.6))
            recover_at = float(
                crash_rng.uniform(fail_at + 1.0, duration_ms * 0.95)
            )
            crashes.append((fail_at, nodes[i]))
            recoveries.append((recover_at, nodes[i]))

    part_rng = factory.stream("partitions")
    partitions: List[PartitionSpec] = []
    crashed_ids = {node for _, node in crashes}
    # Partition only never-crashed caches so windows cannot overlap a
    # node's down time (the engine treats both as exclusive states).
    candidates = [n for n in nodes if n not in crashed_ids]
    size = min(partition_size, len(candidates))
    if size:
        for index in range(partition_count):
            picks = part_rng.choice(len(candidates), size=size, replace=False)
            members = tuple(
                candidates[int(p)] for p in sorted(int(q) for q in picks)
            )
            lo = duration_ms * index / max(partition_count, 1)
            hi = duration_ms * (index + 1) / max(partition_count, 1)
            start = float(part_rng.uniform(lo, (lo + hi) / 2))
            end = float(part_rng.uniform(start + 1.0, hi))
            partitions.append(
                PartitionSpec(start_ms=start, end_ms=end, nodes=members)
            )

    return FaultSchedule(
        crashes=tuple(crashes),
        recoveries=tuple(recoveries),
        partitions=tuple(partitions),
        partition_timeout_ms=partition_timeout_ms,
    )


def merge_fault_events(
    schedule: "FaultSchedule",
    extra_failures: Iterable[object] = (),
) -> List[object]:
    """Schedule events plus any caller-supplied raw failure events."""
    return [*schedule.events(), *extra_failures]
