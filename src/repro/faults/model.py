"""The runtime :class:`FaultModel`: seeded draws plus liveness state.

One model instance accompanies one GF-Coordinator run.  It answers the
prober's per-probe questions (is this pair blackholed?  was this probe
lost?) and tracks which nodes are currently crashed.

Determinism contract: every random draw comes from a content-keyed
stream of a forked :class:`repro.utils.rng.RngFactory` — loss draws for
the pair ``(a, b)`` always come from the stream ``"loss/a-b"``, and the
landmark-crash pick from ``"landmark-crash"``.  Streams are keyed by
*content*, not call order, so the same faults hit the same probes no
matter how work is interleaved (serial and ``jobs=N`` runs match
bit-for-bit).  The model never touches the prober's own noise stream,
which is what keeps a fault-free probe sequence identical to a run
without any model attached.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set, Tuple

import numpy as np

from repro.errors import ProbingError
from repro.faults.config import FaultConfig
from repro.landmarks.base import LandmarkSet
from repro.types import Ms, NodeId
from repro.utils.rng import RngFactory


class FaultModel:
    """Seeded fault draws and crash state for one formation run."""

    def __init__(self, config: FaultConfig, rng_factory: RngFactory) -> None:
        config.validate()
        self._config = config
        # Fork once so fault draws can never perturb (or be perturbed
        # by) the coordinator's probe/landmark/kmeans streams.
        self._factory = rng_factory.fork("faults")
        self._down: Set[NodeId] = set()
        self._blackholes: FrozenSet[Tuple[NodeId, NodeId]] = frozenset(
            (min(a, b), max(a, b)) for a, b in config.blackhole_pairs
        )
        self._slow: Dict[Tuple[NodeId, NodeId], float] = {
            (min(a, b), max(a, b)): float(factor)
            for a, b, factor in config.slow_links
        }

    @property
    def config(self) -> FaultConfig:
        return self._config

    # -- liveness -------------------------------------------------------

    @property
    def crashed_nodes(self) -> FrozenSet[NodeId]:
        return frozenset(self._down)

    def is_down(self, node: NodeId) -> bool:
        return node in self._down

    def crash(self, node: NodeId) -> None:
        """Mark a node crashed: every probe touching it is lost."""
        self._down.add(node)

    def recover(self, node: NodeId) -> None:
        self._down.discard(node)

    def crash_landmarks(self, landmarks: LandmarkSet) -> Tuple[NodeId, ...]:
        """Crash ``config.crashed_landmarks`` cache landmarks.

        Models the "landmark dies right after selection" scenario: the
        victims are drawn from the ``"landmark-crash"`` stream over the
        selected cache landmarks (the origin is the coordinator itself
        and never crashes).  Returns the crashed nodes.
        """
        count = self._config.crashed_landmarks
        if count == 0:
            return ()
        candidates = list(landmarks.cache_landmarks)
        if count > len(candidates):
            raise ProbingError(
                f"cannot crash {count} landmarks: only "
                f"{len(candidates)} cache landmarks were selected"
            )
        rng = self._factory.stream("landmark-crash")
        picks = rng.choice(len(candidates), size=count, replace=False)
        crashed = tuple(candidates[int(i)] for i in sorted(picks))
        for node in crashed:
            self.crash(node)
        return crashed

    # -- per-probe queries ----------------------------------------------

    def pair_blocked(self, source: NodeId, target: NodeId) -> bool:
        """True when no probe between the pair can ever succeed."""
        if source in self._down or target in self._down:
            return True
        key = (min(source, target), max(source, target))
        return key in self._blackholes

    def link_factor(self, source: NodeId, target: NodeId) -> float:
        """Multiplier applied to observed RTTs on this link."""
        key = (min(source, target), max(source, target))
        return self._slow.get(key, 1.0)

    def loss_stream(self, source: NodeId, target: NodeId) -> np.random.Generator:
        """The content-keyed loss/retry stream for one ordered pair."""
        return self._factory.stream(f"loss/{source}-{target}")

    def backoff_ms(self, attempt: int) -> Ms:
        """Capped exponential backoff before retry ``attempt`` (1-based)."""
        base = self._config.backoff_base_ms
        return float(min(base * (2 ** (attempt - 1)),
                         self._config.backoff_cap_ms))
