"""Deterministic fault injection for probing and simulation.

Measurement-side faults (probe loss, blackholes, slow links, landmark
crashes) are declared by :class:`FaultConfig` and executed by
:class:`FaultModel`; simulation-side timelines (cache crash/recover,
partitions) by :class:`FaultSchedule`.  All randomness flows through
content-keyed :class:`repro.utils.rng.RngFactory` streams.
"""

from repro.faults.config import FaultConfig
from repro.faults.model import FaultModel
from repro.faults.schedule import (
    FaultSchedule,
    PartitionSpec,
    merge_fault_events,
    random_fault_schedule,
)

__all__ = [
    "FaultConfig",
    "FaultModel",
    "FaultSchedule",
    "PartitionSpec",
    "merge_fault_events",
    "random_fault_schedule",
]
