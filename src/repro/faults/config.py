"""Fault-injection configuration for the group-formation pipeline.

:class:`FaultConfig` declares *measurement-side* faults: per-probe loss,
blackholed probe pairs, slow links, and landmarks crashing right after
selection.  Simulation-side faults (cache crash/recover timelines and
network partitions) live in :class:`repro.faults.schedule.FaultSchedule`.

The config is pure data — all randomness is drawn later by
:class:`repro.faults.model.FaultModel` from content-keyed
:class:`repro.utils.rng.RngFactory` streams, so a given config + root
seed is bit-reproducible.  A config whose :meth:`is_noop` is True must
never change any measurement: callers skip the fault layer entirely in
that case, which is what keeps zero-fault runs byte-identical to runs
without a fault model at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ProbingError
from repro.types import Ms, NodeId
from repro.utils.validation import (
    check_fraction,
    check_in_range,
    check_non_negative,
    check_positive,
)


@dataclass(frozen=True)
class FaultConfig:
    """Measurement-side fault parameters (validated, all-zero by default)."""

    #: probability that one individual probe message is lost
    probe_loss_rate: float = 0.0
    #: simulated wait charged for each probe that never returns (ms).
    #: Sized to edge-RTT scale (a few × the largest expected RTT): a
    #: retried slot's end-to-end timing includes this wait, so an
    #: outsized timeout would make any loss saturate the measurement.
    probe_timeout_ms: Ms = 500.0
    #: bounded retries per lost probe before the slot gives up
    max_retries: int = 2
    #: first retry backoff (ms); doubles per retry up to the cap
    backoff_base_ms: Ms = 50.0
    #: ceiling on one retry's backoff delay (ms)
    backoff_cap_ms: Ms = 1000.0
    #: unordered node pairs whose probes are always lost
    blackhole_pairs: Tuple[Tuple[NodeId, NodeId], ...] = ()
    #: (node_a, node_b, factor >= 1) triples inflating observed RTTs
    slow_links: Tuple[Tuple[NodeId, NodeId, float], ...] = ()
    #: cache landmarks crashed immediately after selection (failover test)
    crashed_landmarks: int = 0
    #: minimum fraction of valid feature entries for a landmark column
    #: to count as reachable (below it, the landmark is replaced)
    quorum: float = 0.5
    #: bound on landmark replacement attempts during one formation
    max_landmark_replacements: int = 8

    def validate(self) -> None:
        """Raise :class:`repro.errors.ProbingError` on bad parameters."""
        check_fraction("probe_loss_rate", self.probe_loss_rate,
                       exc=ProbingError)
        check_positive("probe_timeout_ms", self.probe_timeout_ms,
                       exc=ProbingError)
        check_non_negative("max_retries", self.max_retries, exc=ProbingError)
        check_non_negative("backoff_base_ms", self.backoff_base_ms,
                           exc=ProbingError)
        check_in_range("backoff_cap_ms", self.backoff_cap_ms,
                       self.backoff_base_ms, float("inf"), exc=ProbingError)
        for pair in self.blackhole_pairs:
            if len(pair) != 2 or pair[0] == pair[1]:
                raise ProbingError(
                    f"blackhole_pairs entries must be two distinct node "
                    f"ids, got {pair!r}"
                )
            for node in pair:
                check_non_negative("blackhole_pairs node", node,
                                   exc=ProbingError)
        for link in self.slow_links:
            if len(link) != 3 or link[0] == link[1]:
                raise ProbingError(
                    f"slow_links entries must be (node_a, node_b, factor) "
                    f"with distinct nodes, got {link!r}"
                )
            check_in_range("slow_links factor", link[2], 1.0, float("inf"),
                           exc=ProbingError)
        check_non_negative("crashed_landmarks", self.crashed_landmarks,
                           exc=ProbingError)
        check_fraction("quorum", self.quorum, exc=ProbingError)
        check_positive("max_landmark_replacements",
                       self.max_landmark_replacements, exc=ProbingError)

    def is_noop(self) -> bool:
        """True when this config can never alter a measurement."""
        return (
            self.probe_loss_rate == 0.0
            and not self.blackhole_pairs
            and not self.slow_links
            and self.crashed_landmarks == 0
        )
