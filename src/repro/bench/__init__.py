"""Benchmark subsystem: measure, persist, compare, and gate throughput.

``repro bench run`` measures engine (and optionally full-suite)
throughput into a versioned JSON result; ``repro bench compare`` diffs
two results; ``repro bench gate`` fails (exit 1) when any shared
throughput metric drops by more than the tolerance relative to a
committed baseline (``benchmarks/baselines/``).  See
``docs/performance.md`` and :mod:`repro.bench.core`.

Like the sanitizer, nothing on the simulator/experiment hot path
imports this package — benchmarking a run costs nothing unless
explicitly requested.
"""

from repro.bench.core import (
    BENCH_FORMAT_VERSION,
    DEFAULT_SCENARIO,
    DEFAULT_TOLERANCE,
    LARGE_SCENARIO,
    SMALL_SCENARIO,
    BenchCheck,
    BenchResult,
    BenchScenario,
    GateReport,
    compare_bench,
    gate_bench,
    load_bench,
    run_bench,
    run_engine_bench,
    run_suite_bench,
    save_bench,
    scenario_by_name,
)

__all__ = [
    "BENCH_FORMAT_VERSION",
    "DEFAULT_SCENARIO",
    "DEFAULT_TOLERANCE",
    "LARGE_SCENARIO",
    "SMALL_SCENARIO",
    "BenchCheck",
    "BenchResult",
    "BenchScenario",
    "GateReport",
    "compare_bench",
    "gate_bench",
    "load_bench",
    "run_bench",
    "run_engine_bench",
    "run_suite_bench",
    "save_bench",
    "scenario_by_name",
]
