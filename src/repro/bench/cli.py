"""The ``repro bench`` subcommands.

::

    repro bench run     [--scenario default|small] [--rounds N]
                        [--label L] [--suite] [--suite-jobs 1,2]
                        [--out PATH] [--registry DIR]
    repro bench compare BASELINE CANDIDATE [--format json]
    repro bench gate    --baseline PATH [--candidate PATH]
                        [--tolerance F] [--out PATH] [--format json]

``gate`` without ``--candidate`` measures a fresh result using the
baseline's own scenario, so CI needs exactly one committed file::

    repro bench gate --baseline benchmarks/baselines/BENCH_engine_main.json \\
        --tolerance 0.6

Exit codes mirror ``repro lint``/``sanitize``: ``0`` pass, ``1`` a
throughput metric regressed beyond the tolerance, ``2`` usage error
(unreadable/incomparable results).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import Optional, TextIO

from repro.bench.core import (
    DEFAULT_TOLERANCE,
    BenchResult,
    GateReport,
    compare_bench,
    gate_bench,
    load_bench,
    run_bench,
    save_bench,
    scenario_by_name,
)
from repro.errors import BenchmarkError
from repro.utils.tables import Table


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the ``bench`` subcommands to a (sub)parser."""
    sub = parser.add_subparsers(dest="bench_command", required=True)

    run = sub.add_parser(
        "run", help="measure engine (and optionally suite) throughput"
    )
    run.add_argument("--scenario", default="default",
                     choices=["default", "small", "large"])
    run.add_argument("--extra-scenarios", default="", metavar="A,B",
                     help="comma-separated named scenarios measured "
                          "alongside the primary one (e.g. large)")
    run.add_argument("--rounds", type=int, metavar="N",
                     help="best-of-N timing rounds (default: scenario's)")
    run.add_argument("--label", default="local")
    run.add_argument("--suite", action="store_true",
                     help="also measure full-suite wall clock + events/s "
                          "(slow: two complete suite runs)")
    run.add_argument("--suite-jobs", default="1,2", metavar="N,M",
                     help="jobs levels for --suite (default 1,2)")
    run.add_argument("--out", metavar="PATH",
                     help="write the result JSON here")
    run.add_argument("--registry", metavar="DIR",
                     help="also append the result to the run registry "
                          "at DIR (default: $REPRO_REGISTRY)")

    cmp_ = sub.add_parser(
        "compare", help="diff two bench results' throughput metrics"
    )
    cmp_.add_argument("baseline")
    cmp_.add_argument("candidate")
    cmp_.add_argument("--format", choices=["text", "json"], default="text",
                      dest="output_format")

    gate = sub.add_parser(
        "gate",
        help="fail (exit 1) when the candidate regresses vs the baseline",
    )
    gate.add_argument("--baseline", required=True, metavar="PATH")
    gate.add_argument("--candidate", metavar="PATH",
                      help="pre-measured candidate; omitted = measure "
                           "fresh with the baseline's scenario")
    gate.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                      metavar="F",
                      help=f"relative drop treated as a regression "
                           f"(default {DEFAULT_TOLERANCE})")
    gate.add_argument("--out", metavar="PATH",
                      help="also write the (fresh) candidate result here")
    gate.add_argument("--format", choices=["text", "json"], default="text",
                      dest="output_format")


def _parse_jobs_list(spec: str) -> list:
    try:
        levels = [int(part) for part in spec.split(",") if part.strip()]
    except ValueError:
        raise BenchmarkError(
            f"--suite-jobs expects N,M,... got {spec!r}"
        ) from None
    if not levels or any(level < 1 for level in levels):
        raise BenchmarkError(
            f"--suite-jobs levels must be >= 1, got {spec!r}"
        )
    return levels


def _cmd_run(args: argparse.Namespace, out: TextIO) -> int:
    scenario = scenario_by_name(args.scenario)
    if args.rounds is not None:
        scenario = dataclasses.replace(scenario, rounds=args.rounds)
    extras = {
        name.strip(): scenario_by_name(name.strip())
        for name in args.extra_scenarios.split(",")
        if name.strip()
    }
    result = run_bench(
        scenario=scenario,
        label=args.label,
        include_suite=args.suite,
        suite_jobs=_parse_jobs_list(args.suite_jobs),
        extra_scenarios=extras,
    )
    print(render_bench_text(result), file=out)
    if args.out:
        save_bench(result, args.out)
        print(f"wrote {args.out}", file=out)
    _maybe_register(args, result)
    return 0


def _maybe_register(args: argparse.Namespace, result: BenchResult) -> None:
    from repro.obs.registry import resolve_registry

    registry = resolve_registry(getattr(args, "registry", None))
    if registry is None:
        return
    from repro.obs.manifest import RunManifest

    manifest = RunManifest(label=f"bench:{result.label}")
    manifest.created_unix = result.created_unix
    manifest.config = {
        "scenario": result.scenario.to_dict(),
        "cores": result.cores,
    }
    manifest.run_stats = dict(result.metrics())
    manifest.run_stats["events"] = result.engine.get("events", 0.0)
    registry.append(manifest, kind="bench")


def render_bench_text(result: BenchResult) -> str:
    """Human-readable bench result."""
    lines = [
        f"bench {result.label}: scenario "
        f"{result.scenario.to_dict()} on {result.cores} core(s)"
    ]
    table = Table(["metric", "value"], float_format="{:.1f}")
    for name in sorted(result.engine):
        table.add_row([f"engine.{name}", result.engine[name]])
    for extra in sorted(result.scenarios):
        engine = result.scenarios[extra].get("engine") or {}
        for name in sorted(engine):
            table.add_row([f"scenario.{extra}.{name}", engine[name]])
    for level in sorted(result.suite):
        for name in sorted(result.suite[level]):
            table.add_row(
                [f"suite.{level}.{name}", result.suite[level][name]]
            )
    lines.append(table.render())
    return "\n".join(lines)


def render_gate_text(report: GateReport) -> str:
    """Human-readable comparison/gate report."""
    lines = [
        f"baseline {report.baseline_label} vs candidate "
        f"{report.candidate_label} (tolerance "
        f"{100.0 * report.tolerance:.0f}%)"
    ]
    table = Table(["metric", "baseline", "candidate", "ratio", "status"])
    for check in report.checks:
        status = "REGRESSED" if check.regressed(report.tolerance) else "ok"
        table.add_row([
            check.name, f"{check.baseline:.1f}", f"{check.candidate:.1f}",
            f"{check.ratio:.3f}", status,
        ])
    lines.append(table.render())
    if report.skipped:
        lines.append(
            f"skipped (measured on one side only): "
            f"{', '.join(report.skipped)}"
        )
    if report.regressions:
        names = ", ".join(c.name for c in report.regressions)
        lines.append(f"FAIL: {len(report.regressions)} regression(s): {names}")
    else:
        lines.append("PASS: no metric regressed beyond the tolerance")
    return "\n".join(lines)


def render_gate_json(report: GateReport) -> str:
    """Machine-readable comparison/gate report."""
    payload = {
        "baseline": report.baseline_label,
        "candidate": report.candidate_label,
        "tolerance": report.tolerance,
        "passed": report.passed,
        "checks": [
            {
                "name": c.name,
                "baseline": c.baseline,
                "candidate": c.candidate,
                "ratio": c.ratio,
                "regressed": c.regressed(report.tolerance),
            }
            for c in report.checks
        ],
        "skipped": list(report.skipped),
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _cmd_compare(args: argparse.Namespace, out: TextIO) -> int:
    baseline = load_bench(args.baseline)
    candidate = load_bench(args.candidate)
    report = compare_bench(baseline, candidate)
    if args.output_format == "json":
        out.write(render_gate_json(report))
    else:
        print(render_gate_text(report), file=out)
    return 0


def _cmd_gate(args: argparse.Namespace, out: TextIO) -> int:
    baseline = load_bench(args.baseline)
    if args.candidate:
        candidate = load_bench(args.candidate)
    else:
        candidate = run_bench(
            scenario=baseline.scenario, label="gate-candidate",
            extra_scenarios={
                name: baseline.extra_scenario(name)
                for name in sorted(baseline.scenarios)
            },
        )
        if args.out:
            save_bench(candidate, args.out)
            print(f"wrote {args.out}", file=out)
    report = gate_bench(baseline, candidate, tolerance=args.tolerance)
    if args.output_format == "json":
        out.write(render_gate_json(report))
    else:
        print(render_gate_text(report), file=out)
    return 0 if report.passed else 1


def run_bench_cli(
    args: argparse.Namespace,
    stdout: Optional[TextIO] = None,
    stderr: Optional[TextIO] = None,
) -> int:
    """Execute ``repro bench`` for parsed ``args``; returns exit code."""
    out: TextIO = stdout if stdout is not None else sys.stdout
    err: TextIO = stderr if stderr is not None else sys.stderr
    handlers = {
        "run": _cmd_run,
        "compare": _cmd_compare,
        "gate": _cmd_gate,
    }
    try:
        return handlers[args.bench_command](args, out)
    except BenchmarkError as exc:
        print(f"error: {exc}", file=err)
        return 2
