"""Benchmark measurement, persistence, comparison, and gating.

This formalises the ad-hoc ``BENCH_engine.json`` emitter into a
subsystem: a :class:`BenchScenario` pins every input the measurement
depends on (so two results are comparable exactly when their scenarios
— and hence event counts — match), :func:`run_bench` measures engine
throughput (plain / instrumented / legacy-heap loops, best-of-N
rounds) and optionally full-suite throughput per jobs level, and
:func:`gate_bench` turns a baseline + candidate pair into a pass/fail
decision with a relative tolerance for machine variance.

Committed baselines live under ``benchmarks/baselines/``; the CI
``perf-smoke`` job runs ``repro bench gate`` against them with a
generous threshold so only real regressions (not runner noise) fail
the build.  Suite throughput is measured through the worker-telemetry
layer (``run_suite(worker_perf=True)``), which is what makes
*events/s-per-core* reportable: the scheduler attributes engine events
to tasks, and the suite aggregate divides by the jobs level.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import BenchmarkError
from repro.obs.profiling import perf_seconds

PathLike = Union[str, Path]

#: Format 2 adds the optional ``scenarios`` mapping (named extra
#: scenarios measured alongside the primary one); format-1 files load
#: unchanged with no extras.
BENCH_FORMAT_VERSION = 2

_READABLE_FORMAT_VERSIONS = (1, 2)

#: Default relative throughput drop treated as a regression.  An
#: events/s metric below ``(1 - tolerance) x baseline`` fails the gate;
#: CI passes a larger value to absorb shared-runner variance.
DEFAULT_TOLERANCE = 0.15


@dataclass(frozen=True)
class BenchScenario:
    """Every input the engine measurement depends on.

    The workload/cache knobs default to the library defaults that were
    implicitly in effect before they became scenario fields, so older
    baselines (which omit them) keep their exact event counts.
    """

    num_caches: int = 100
    network_seed: int = 5
    num_documents: int = 300
    requests_per_cache: int = 100
    workload_seed: int = 9
    rounds: int = 3
    zipf_alpha: float = 0.9
    dynamic_fraction: float = 0.6
    update_interarrival_ms: float = 400.0
    capacity_fraction: float = 0.1
    #: 1 = one cooperative group of everything; N > 1 partitions the
    #: caches round-robin into N groups.
    num_groups: int = 1
    #: ``"all"`` measures the plain, instrumented, and heap loops;
    #: ``"plain"`` measures only the default loop (used by the large
    #: scenario, where three full 1M-event sweeps would dominate CI).
    measure: str = "all"

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "BenchScenario":
        coerced: Dict[str, Any] = {}
        try:
            for spec in dataclasses.fields(cls):
                if spec.name not in payload:
                    continue
                value = payload[spec.name]
                if spec.type in ("int", int):
                    coerced[spec.name] = int(value)
                elif spec.type in ("float", float):
                    coerced[spec.name] = float(value)
                else:
                    coerced[spec.name] = str(value)
            return cls(**coerced)
        except (TypeError, ValueError) as exc:
            raise BenchmarkError(
                f"malformed bench scenario: {payload!r}"
            ) from exc


#: The canonical scenario (matches the committed seed baseline's
#: 10,076-event single-group run on the 100-cache seed-5 network).
DEFAULT_SCENARIO = BenchScenario()

#: A fast scenario for tests and quick local sanity checks.
SMALL_SCENARIO = BenchScenario(
    num_caches=30, num_documents=80, requests_per_cache=30, rounds=1
)

#: The 1M-event steady-state scenario: a hot, mostly-static corpus on a
#: 100-cache network split into ten groups, sized so caches warm up and
#: the loop spends its time in the request hot path rather than cold
#: misses.  This is the ``plain_events_per_sec`` number the 500k-events/s
#: target tracks; the heap/instrumented sweeps are skipped
#: (``measure="plain"``) to keep the CI gate affordable.
LARGE_SCENARIO = BenchScenario(
    num_caches=100,
    num_documents=150,
    requests_per_cache=10_000,
    rounds=2,
    zipf_alpha=1.2,
    dynamic_fraction=0.1,
    update_interarrival_ms=2_000.0,
    capacity_fraction=1.0,
    num_groups=10,
    measure="plain",
)

_SCENARIOS = {
    "default": DEFAULT_SCENARIO,
    "small": SMALL_SCENARIO,
    "large": LARGE_SCENARIO,
}


def scenario_by_name(name: str) -> BenchScenario:
    """Resolve a named scenario (``default``, ``small``, or ``large``)."""
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise BenchmarkError(
            f"unknown bench scenario {name!r}; "
            f"known: {', '.join(sorted(_SCENARIOS))}"
        ) from None


@dataclass
class BenchResult:
    """One benchmark measurement (or a loaded baseline)."""

    label: str
    scenario: BenchScenario = field(default_factory=BenchScenario)
    cores: int = 1
    # Run metadata only — the stamp never feeds back into measurement.
    created_unix: float = field(default_factory=time.time)  # repro-lint: allow[sim-wallclock]
    #: events, plain/instrumented/heap events_per_sec
    engine: Dict[str, float] = field(default_factory=dict)
    #: per jobs level: wall_s, events, events_per_sec, events_per_sec_per_core
    suite: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: named extra scenarios: name -> {"scenario": {...}, "engine": {...}}
    scenarios: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def metrics(self) -> Dict[str, float]:
        """Flat ``name -> value`` view of every gated throughput metric."""
        flat = {
            f"engine.{name}": float(value)
            for name, value in self.engine.items()
            if name.endswith("_per_sec")
        }
        for level in sorted(self.suite):
            for name, value in self.suite[level].items():
                if name.endswith("_per_sec") or name.endswith("_per_core"):
                    flat[f"suite.{level}.{name}"] = float(value)
        for extra in sorted(self.scenarios):
            engine = self.scenarios[extra].get("engine") or {}
            for name, value in engine.items():
                if name.endswith("_per_sec"):
                    flat[f"scenario.{extra}.{name}"] = float(value)
        return flat

    def extra_scenario(self, name: str) -> BenchScenario:
        """The recorded definition of one named extra scenario."""
        try:
            payload = self.scenarios[name]
        except KeyError:
            raise BenchmarkError(
                f"bench result {self.label!r} has no extra scenario "
                f"{name!r}"
            ) from None
        return BenchScenario.from_dict(payload.get("scenario") or {})

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format_version": BENCH_FORMAT_VERSION,
            "kind": "bench_result",
            "label": self.label,
            "created_unix": self.created_unix,
            "cores": self.cores,
            "scenario": self.scenario.to_dict(),
            "engine": dict(self.engine),
            "suite": {k: dict(v) for k, v in self.suite.items()},
            "scenarios": {
                name: {
                    "scenario": dict(payload.get("scenario") or {}),
                    "engine": dict(payload.get("engine") or {}),
                }
                for name, payload in self.scenarios.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "BenchResult":
        try:
            return cls(
                label=str(payload.get("label", "")),
                scenario=BenchScenario.from_dict(
                    payload.get("scenario") or {}
                ),
                cores=int(payload.get("cores", 1)),
                created_unix=float(payload.get("created_unix", 0.0)),
                engine={
                    str(k): float(v)
                    for k, v in (payload.get("engine") or {}).items()
                },
                suite={
                    str(level): {
                        str(k): float(v) for k, v in stats.items()
                    }
                    for level, stats in (payload.get("suite") or {}).items()
                },
                scenarios={
                    str(name): {
                        "scenario": dict(entry.get("scenario") or {}),
                        "engine": {
                            str(k): float(v)
                            for k, v in (entry.get("engine") or {}).items()
                        },
                    }
                    for name, entry in (
                        payload.get("scenarios") or {}
                    ).items()
                },
            )
        except (TypeError, ValueError, AttributeError) as exc:
            raise BenchmarkError(
                f"malformed bench result payload: {exc}"
            ) from exc


def save_bench(result: BenchResult, path: PathLike) -> None:
    """Write a bench result to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_bench(path: PathLike) -> BenchResult:
    """Read a bench result (or a trajectory artifact embedding one).

    Accepts both the native ``bench_result`` format and the CI
    trajectory artifact (``BENCH_engine.json``), whose ``bench`` key
    embeds a result — so ``repro bench compare`` works directly on
    either file.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise BenchmarkError(f"cannot read bench result {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BenchmarkError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise BenchmarkError(f"{path} is not a bench result")
    if payload.get("kind") != "bench_result" and "bench" in payload:
        payload = payload["bench"]
    if payload.get("kind") != "bench_result":
        raise BenchmarkError(
            f"{path} is not a bench result (kind="
            f"{payload.get('kind')!r})"
        )
    version = payload.get("format_version")
    if version not in _READABLE_FORMAT_VERSIONS:
        raise BenchmarkError(
            f"{path} has bench format version {version}, "
            f"expected one of {_READABLE_FORMAT_VERSIONS}"
        )
    return BenchResult.from_dict(payload)


# -- measurement --------------------------------------------------------


def _best_of(fn: Any, rounds: int) -> float:
    """Minimum wall seconds over ``rounds`` runs of ``fn``."""
    best = float("inf")
    for _ in range(max(1, rounds)):
        start = perf_seconds()
        fn()
        best = min(best, perf_seconds() - start)
    return best


def _build_bench_testbed(
    scenario: BenchScenario,
) -> Tuple[Any, Any, Any, Any]:
    from repro.config import (
        CacheConfig,
        DocumentConfig,
        SimulationConfig,
        WorkloadConfig,
    )
    from repro.core.groups import (
        GroupingResult,
        groups_from_labels,
        single_group,
    )
    from repro.topology import build_network
    from repro.workload import generate_workload

    network = build_network(
        num_caches=scenario.num_caches, seed=scenario.network_seed
    )
    workload = generate_workload(
        network.cache_nodes,
        WorkloadConfig(
            documents=DocumentConfig(
                num_documents=scenario.num_documents,
                dynamic_fraction=scenario.dynamic_fraction,
            ),
            requests_per_cache=scenario.requests_per_cache,
            zipf_alpha=scenario.zipf_alpha,
            mean_update_interarrival_ms=scenario.update_interarrival_ms,
        ),
        seed=scenario.workload_seed,
    )
    if scenario.num_groups <= 1:
        grouping = single_group(network.cache_nodes)
    else:
        grouping = GroupingResult(
            scheme="bench-round-robin",
            groups=groups_from_labels(
                network.cache_nodes,
                [
                    node % scenario.num_groups
                    for node in network.cache_nodes
                ],
            ),
        )
    config = SimulationConfig(
        cache=CacheConfig(capacity_fraction=scenario.capacity_fraction)
    )
    return network, workload, grouping, config


def run_engine_bench(scenario: BenchScenario) -> Dict[str, float]:
    """Measure event-loop throughput for one scenario.

    Returns ``events`` (loop length — the comparability anchor) and
    best-of-``rounds`` events/s for the default batched loop and — for
    ``measure="all"`` scenarios — the fully instrumented loop (trace +
    sampler) and the legacy heap loop.
    """
    from repro.obs import MetricsSampler, Observer, TraceCollector
    from repro.simulator import simulate

    network, workload, grouping, config = _build_bench_testbed(scenario)

    # The event count is the workload's requests plus its update
    # barriers — a pure function of the scenario, counted without
    # paying for an extra instrumented run.
    events = len(workload.requests) + len(workload.updates)

    t_plain = _best_of(
        lambda: simulate(network, grouping, workload, config=config),
        scenario.rounds,
    )
    metrics = {
        "events": float(events),
        "plain_events_per_sec": events / t_plain,
    }
    if scenario.measure == "plain":
        return metrics
    t_heap = _best_of(
        lambda: simulate(
            network, grouping, workload, config=config,
            event_loop="heap",
        ),
        scenario.rounds,
    )
    t_instrumented = _best_of(
        lambda: simulate(
            network, grouping, workload, config=config,
            observer=Observer(
                trace=TraceCollector(capacity=10_000),
                sampler=MetricsSampler(interval_ms=1_000.0),
            ),
        ),
        scenario.rounds,
    )
    metrics["instrumented_events_per_sec"] = events / t_instrumented
    metrics["heap_events_per_sec"] = events / t_heap
    return metrics


def run_suite_bench(
    jobs_levels: Sequence[int] = (1, 2),
    figures: Optional[Sequence[str]] = None,
    repetitions: Optional[int] = None,
) -> Dict[str, Dict[str, float]]:
    """Measure full-suite wall clock and events/s per jobs level.

    Each level runs the suite fresh (testbed cache reset) under worker
    telemetry, so the aggregate event count comes from the scheduler's
    per-task accounting; ``events_per_sec_per_core`` divides by the
    jobs level — the scaling number the ROADMAP's sharded-simulation
    arc tracks.
    """
    import tempfile

    from repro.experiments.suite import run_suite
    from repro.runtime import reset_cache

    levels: Dict[str, Dict[str, float]] = {}
    with tempfile.TemporaryDirectory(prefix="bench-testbed-") as cache_dir:
        for jobs in jobs_levels:
            reset_cache()
            start = perf_seconds()
            run = run_suite(
                figures=figures, repetitions=repetitions, jobs=jobs,
                worker_perf=True,
                # Share built testbeds across worker processes via the
                # disk tier: without it every forked worker rebuilds the
                # figure's networks/workloads from scratch, which is what
                # collapsed the measured events/s-per-core at jobs >= 2
                # (see docs/performance.md).
                cache_dir=cache_dir,
            )
            wall_s = perf_seconds() - start
            manifests = run.manifests.values()
            events = sum(
                manifest.run_stats.get("worker_events", 0.0)
                for manifest in manifests
            )
            levels[f"jobs{jobs}"] = {
                "wall_s": wall_s,
                "events": events,
                "events_per_sec": events / wall_s if wall_s else 0.0,
                "events_per_sec_per_core": (
                    events / wall_s / jobs if wall_s else 0.0
                ),
                # Cache effectiveness context (not gated: no _per_sec
                # suffix).
                "testbed_cache_hits": sum(
                    m.run_stats.get("testbed_cache_hits", 0.0)
                    for m in manifests
                ),
                "testbed_cache_misses": sum(
                    m.run_stats.get("testbed_cache_misses", 0.0)
                    for m in manifests
                ),
            }
    reset_cache()
    return levels


def run_bench(
    scenario: BenchScenario = DEFAULT_SCENARIO,
    label: str = "local",
    include_suite: bool = False,
    suite_jobs: Sequence[int] = (1, 2),
    extra_scenarios: Optional[Dict[str, BenchScenario]] = None,
) -> BenchResult:
    """Measure one full bench result (engine, optionally suite).

    ``extra_scenarios`` maps names to additional scenarios measured
    after the primary one; each is recorded with its full definition so
    a later gate can re-measure it from the baseline file alone.
    """
    result = BenchResult(
        label=label,
        scenario=scenario,
        cores=os.cpu_count() or 1,
        engine=run_engine_bench(scenario),
    )
    for name, extra in (extra_scenarios or {}).items():
        result.scenarios[name] = {
            "scenario": extra.to_dict(),
            "engine": run_engine_bench(extra),
        }
    if include_suite:
        result.suite = run_suite_bench(jobs_levels=suite_jobs)
    return result


# -- comparison and gating ----------------------------------------------


@dataclass(frozen=True)
class BenchCheck:
    """One gated metric: baseline vs candidate."""

    name: str
    baseline: float
    candidate: float

    @property
    def ratio(self) -> float:
        """candidate / baseline (1.0 = unchanged, < 1 = slower)."""
        return self.candidate / self.baseline if self.baseline else 0.0

    def regressed(self, tolerance: float) -> bool:
        return self.ratio < 1.0 - tolerance


@dataclass(frozen=True)
class GateReport:
    """Outcome of gating a candidate against a baseline."""

    baseline_label: str
    candidate_label: str
    tolerance: float
    checks: Tuple[BenchCheck, ...]
    skipped: Tuple[str, ...] = ()

    @property
    def regressions(self) -> List[BenchCheck]:
        return [c for c in self.checks if c.regressed(self.tolerance)]

    @property
    def passed(self) -> bool:
        return bool(self.checks) and not self.regressions


def compare_bench(
    baseline: BenchResult, candidate: BenchResult, tolerance: float =
    DEFAULT_TOLERANCE,
) -> GateReport:
    """Compare every throughput metric present in both results.

    Metrics only one side measured are listed as skipped, so a
    baseline without suite numbers still gates the engine.
    """
    base_metrics = baseline.metrics()
    cand_metrics = candidate.metrics()
    shared = sorted(set(base_metrics) & set(cand_metrics))
    skipped = sorted(set(base_metrics) ^ set(cand_metrics))
    checks = tuple(
        BenchCheck(
            name=name,
            baseline=base_metrics[name],
            candidate=cand_metrics[name],
        )
        for name in shared
    )
    return GateReport(
        baseline_label=baseline.label,
        candidate_label=candidate.label,
        tolerance=tolerance,
        checks=checks,
        skipped=tuple(skipped),
    )


def gate_bench(
    baseline: BenchResult,
    candidate: BenchResult,
    tolerance: float = DEFAULT_TOLERANCE,
) -> GateReport:
    """Gate a candidate against a baseline; raises when incomparable.

    Comparability means the same scenario — anchored by the measured
    event count, which is a pure function of the scenario inputs.
    """
    base_events = baseline.engine.get("events")
    cand_events = candidate.engine.get("events")
    if base_events is not None and cand_events is not None \
            and base_events != cand_events:
        raise BenchmarkError(
            f"bench results are not comparable: baseline processed "
            f"{base_events:.0f} events, candidate {cand_events:.0f} "
            f"(different scenarios — re-baseline instead of gating)"
        )
    for name in set(baseline.scenarios) & set(candidate.scenarios):
        base_extra = (baseline.scenarios[name].get("engine") or {}).get(
            "events"
        )
        cand_extra = (candidate.scenarios[name].get("engine") or {}).get(
            "events"
        )
        if base_extra is not None and cand_extra is not None \
                and base_extra != cand_extra:
            raise BenchmarkError(
                f"bench results are not comparable: scenario {name!r} "
                f"processed {base_extra:.0f} events in the baseline, "
                f"{cand_extra:.0f} in the candidate (different "
                f"definitions — re-baseline instead of gating)"
            )
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    report = compare_bench(baseline, candidate, tolerance=tolerance)
    if not report.checks:
        raise BenchmarkError(
            "bench results share no throughput metrics to gate on"
        )
    return report
