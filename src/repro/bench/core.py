"""Benchmark measurement, persistence, comparison, and gating.

This formalises the ad-hoc ``BENCH_engine.json`` emitter into a
subsystem: a :class:`BenchScenario` pins every input the measurement
depends on (so two results are comparable exactly when their scenarios
— and hence event counts — match), :func:`run_bench` measures engine
throughput (plain / instrumented / legacy-heap loops, best-of-N
rounds) and optionally full-suite throughput per jobs level, and
:func:`gate_bench` turns a baseline + candidate pair into a pass/fail
decision with a relative tolerance for machine variance.

Committed baselines live under ``benchmarks/baselines/``; the CI
``perf-smoke`` job runs ``repro bench gate`` against them with a
generous threshold so only real regressions (not runner noise) fail
the build.  Suite throughput is measured through the worker-telemetry
layer (``run_suite(worker_perf=True)``), which is what makes
*events/s-per-core* reportable: the scheduler attributes engine events
to tasks, and the suite aggregate divides by the jobs level.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import BenchmarkError
from repro.obs.profiling import perf_seconds

PathLike = Union[str, Path]

BENCH_FORMAT_VERSION = 1

#: Default relative throughput drop treated as a regression.  An
#: events/s metric below ``(1 - tolerance) x baseline`` fails the gate;
#: CI passes a larger value to absorb shared-runner variance.
DEFAULT_TOLERANCE = 0.15


@dataclass(frozen=True)
class BenchScenario:
    """Every input the engine measurement depends on."""

    num_caches: int = 100
    network_seed: int = 5
    num_documents: int = 300
    requests_per_cache: int = 100
    workload_seed: int = 9
    rounds: int = 3

    def to_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "BenchScenario":
        known = {f.name for f in dataclasses.fields(cls)}
        try:
            return cls(**{k: int(v) for k, v in payload.items() if k in known})
        except (TypeError, ValueError) as exc:
            raise BenchmarkError(
                f"malformed bench scenario: {payload!r}"
            ) from exc


#: The canonical scenario (matches the committed seed baseline's
#: 10,076-event single-group run on the 100-cache seed-5 network).
DEFAULT_SCENARIO = BenchScenario()

#: A fast scenario for tests and quick local sanity checks.
SMALL_SCENARIO = BenchScenario(
    num_caches=30, num_documents=80, requests_per_cache=30, rounds=1
)

_SCENARIOS = {"default": DEFAULT_SCENARIO, "small": SMALL_SCENARIO}


def scenario_by_name(name: str) -> BenchScenario:
    """Resolve a named scenario (``default`` or ``small``)."""
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise BenchmarkError(
            f"unknown bench scenario {name!r}; "
            f"known: {', '.join(sorted(_SCENARIOS))}"
        ) from None


@dataclass
class BenchResult:
    """One benchmark measurement (or a loaded baseline)."""

    label: str
    scenario: BenchScenario = field(default_factory=BenchScenario)
    cores: int = 1
    # Run metadata only — the stamp never feeds back into measurement.
    created_unix: float = field(default_factory=time.time)  # repro-lint: allow[sim-wallclock]
    #: events, plain/instrumented/heap events_per_sec
    engine: Dict[str, float] = field(default_factory=dict)
    #: per jobs level: wall_s, events, events_per_sec, events_per_sec_per_core
    suite: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def metrics(self) -> Dict[str, float]:
        """Flat ``name -> value`` view of every gated throughput metric."""
        flat = {
            f"engine.{name}": float(value)
            for name, value in self.engine.items()
            if name.endswith("_per_sec")
        }
        for level in sorted(self.suite):
            for name, value in self.suite[level].items():
                if name.endswith("_per_sec") or name.endswith("_per_core"):
                    flat[f"suite.{level}.{name}"] = float(value)
        return flat

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format_version": BENCH_FORMAT_VERSION,
            "kind": "bench_result",
            "label": self.label,
            "created_unix": self.created_unix,
            "cores": self.cores,
            "scenario": self.scenario.to_dict(),
            "engine": dict(self.engine),
            "suite": {k: dict(v) for k, v in self.suite.items()},
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "BenchResult":
        try:
            return cls(
                label=str(payload.get("label", "")),
                scenario=BenchScenario.from_dict(
                    payload.get("scenario") or {}
                ),
                cores=int(payload.get("cores", 1)),
                created_unix=float(payload.get("created_unix", 0.0)),
                engine={
                    str(k): float(v)
                    for k, v in (payload.get("engine") or {}).items()
                },
                suite={
                    str(level): {
                        str(k): float(v) for k, v in stats.items()
                    }
                    for level, stats in (payload.get("suite") or {}).items()
                },
            )
        except (TypeError, ValueError) as exc:
            raise BenchmarkError(
                f"malformed bench result payload: {exc}"
            ) from exc


def save_bench(result: BenchResult, path: PathLike) -> None:
    """Write a bench result to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_bench(path: PathLike) -> BenchResult:
    """Read a bench result (or a trajectory artifact embedding one).

    Accepts both the native ``bench_result`` format and the CI
    trajectory artifact (``BENCH_engine.json``), whose ``bench`` key
    embeds a result — so ``repro bench compare`` works directly on
    either file.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise BenchmarkError(f"cannot read bench result {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BenchmarkError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise BenchmarkError(f"{path} is not a bench result")
    if payload.get("kind") != "bench_result" and "bench" in payload:
        payload = payload["bench"]
    if payload.get("kind") != "bench_result":
        raise BenchmarkError(
            f"{path} is not a bench result (kind="
            f"{payload.get('kind')!r})"
        )
    version = payload.get("format_version")
    if version != BENCH_FORMAT_VERSION:
        raise BenchmarkError(
            f"{path} has bench format version {version}, "
            f"expected {BENCH_FORMAT_VERSION}"
        )
    return BenchResult.from_dict(payload)


# -- measurement --------------------------------------------------------


def _best_of(fn: Any, rounds: int) -> float:
    """Minimum wall seconds over ``rounds`` runs of ``fn``."""
    best = float("inf")
    for _ in range(max(1, rounds)):
        start = perf_seconds()
        fn()
        best = min(best, perf_seconds() - start)
    return best


def _build_bench_testbed(scenario: BenchScenario) -> Tuple[Any, Any, Any]:
    from repro.config import DocumentConfig, WorkloadConfig
    from repro.core.groups import single_group
    from repro.topology import build_network
    from repro.workload import generate_workload

    network = build_network(
        num_caches=scenario.num_caches, seed=scenario.network_seed
    )
    workload = generate_workload(
        network.cache_nodes,
        WorkloadConfig(
            documents=DocumentConfig(
                num_documents=scenario.num_documents
            ),
            requests_per_cache=scenario.requests_per_cache,
        ),
        seed=scenario.workload_seed,
    )
    grouping = single_group(network.cache_nodes)
    return network, workload, grouping


def run_engine_bench(scenario: BenchScenario) -> Dict[str, float]:
    """Measure event-loop throughput for one scenario.

    Returns ``events`` (loop length — the comparability anchor) and
    best-of-``rounds`` events/s for the default sorted loop, the fully
    instrumented loop (trace + sampler), and the legacy heap loop.
    """
    from repro.obs import MetricsSampler, Observer, TraceCollector
    from repro.simulator import simulate

    network, workload, grouping = _build_bench_testbed(scenario)

    counter = Observer()
    simulate(network, grouping, workload, observer=counter)
    events = int(counter.run_stats["events"])

    t_plain = _best_of(
        lambda: simulate(network, grouping, workload), scenario.rounds
    )
    t_heap = _best_of(
        lambda: simulate(
            network, grouping, workload, event_loop="heap"
        ),
        scenario.rounds,
    )
    t_instrumented = _best_of(
        lambda: simulate(
            network, grouping, workload,
            observer=Observer(
                trace=TraceCollector(capacity=10_000),
                sampler=MetricsSampler(interval_ms=1_000.0),
            ),
        ),
        scenario.rounds,
    )
    return {
        "events": float(events),
        "plain_events_per_sec": events / t_plain,
        "instrumented_events_per_sec": events / t_instrumented,
        "heap_events_per_sec": events / t_heap,
    }


def run_suite_bench(
    jobs_levels: Sequence[int] = (1, 2),
    figures: Optional[Sequence[str]] = None,
    repetitions: Optional[int] = None,
) -> Dict[str, Dict[str, float]]:
    """Measure full-suite wall clock and events/s per jobs level.

    Each level runs the suite fresh (testbed cache reset) under worker
    telemetry, so the aggregate event count comes from the scheduler's
    per-task accounting; ``events_per_sec_per_core`` divides by the
    jobs level — the scaling number the ROADMAP's sharded-simulation
    arc tracks.
    """
    from repro.experiments.suite import run_suite
    from repro.runtime import reset_cache

    levels: Dict[str, Dict[str, float]] = {}
    for jobs in jobs_levels:
        reset_cache()
        start = perf_seconds()
        run = run_suite(
            figures=figures, repetitions=repetitions, jobs=jobs,
            worker_perf=True,
        )
        wall_s = perf_seconds() - start
        manifests = run.manifests.values()
        events = sum(
            manifest.run_stats.get("worker_events", 0.0)
            for manifest in manifests
        )
        levels[f"jobs{jobs}"] = {
            "wall_s": wall_s,
            "events": events,
            "events_per_sec": events / wall_s if wall_s else 0.0,
            "events_per_sec_per_core": (
                events / wall_s / jobs if wall_s else 0.0
            ),
            # Cache effectiveness context (not gated: no _per_sec suffix).
            "testbed_cache_hits": sum(
                m.run_stats.get("testbed_cache_hits", 0.0)
                for m in manifests
            ),
            "testbed_cache_misses": sum(
                m.run_stats.get("testbed_cache_misses", 0.0)
                for m in manifests
            ),
        }
    reset_cache()
    return levels


def run_bench(
    scenario: BenchScenario = DEFAULT_SCENARIO,
    label: str = "local",
    include_suite: bool = False,
    suite_jobs: Sequence[int] = (1, 2),
) -> BenchResult:
    """Measure one full bench result (engine, optionally suite)."""
    result = BenchResult(
        label=label,
        scenario=scenario,
        cores=os.cpu_count() or 1,
        engine=run_engine_bench(scenario),
    )
    if include_suite:
        result.suite = run_suite_bench(jobs_levels=suite_jobs)
    return result


# -- comparison and gating ----------------------------------------------


@dataclass(frozen=True)
class BenchCheck:
    """One gated metric: baseline vs candidate."""

    name: str
    baseline: float
    candidate: float

    @property
    def ratio(self) -> float:
        """candidate / baseline (1.0 = unchanged, < 1 = slower)."""
        return self.candidate / self.baseline if self.baseline else 0.0

    def regressed(self, tolerance: float) -> bool:
        return self.ratio < 1.0 - tolerance


@dataclass(frozen=True)
class GateReport:
    """Outcome of gating a candidate against a baseline."""

    baseline_label: str
    candidate_label: str
    tolerance: float
    checks: Tuple[BenchCheck, ...]
    skipped: Tuple[str, ...] = ()

    @property
    def regressions(self) -> List[BenchCheck]:
        return [c for c in self.checks if c.regressed(self.tolerance)]

    @property
    def passed(self) -> bool:
        return bool(self.checks) and not self.regressions


def compare_bench(
    baseline: BenchResult, candidate: BenchResult, tolerance: float =
    DEFAULT_TOLERANCE,
) -> GateReport:
    """Compare every throughput metric present in both results.

    Metrics only one side measured are listed as skipped, so a
    baseline without suite numbers still gates the engine.
    """
    base_metrics = baseline.metrics()
    cand_metrics = candidate.metrics()
    shared = sorted(set(base_metrics) & set(cand_metrics))
    skipped = sorted(set(base_metrics) ^ set(cand_metrics))
    checks = tuple(
        BenchCheck(
            name=name,
            baseline=base_metrics[name],
            candidate=cand_metrics[name],
        )
        for name in shared
    )
    return GateReport(
        baseline_label=baseline.label,
        candidate_label=candidate.label,
        tolerance=tolerance,
        checks=checks,
        skipped=tuple(skipped),
    )


def gate_bench(
    baseline: BenchResult,
    candidate: BenchResult,
    tolerance: float = DEFAULT_TOLERANCE,
) -> GateReport:
    """Gate a candidate against a baseline; raises when incomparable.

    Comparability means the same scenario — anchored by the measured
    event count, which is a pure function of the scenario inputs.
    """
    base_events = baseline.engine.get("events")
    cand_events = candidate.engine.get("events")
    if base_events is not None and cand_events is not None \
            and base_events != cand_events:
        raise BenchmarkError(
            f"bench results are not comparable: baseline processed "
            f"{base_events:.0f} events, candidate {cand_events:.0f} "
            f"(different scenarios — re-baseline instead of gating)"
        )
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    report = compare_bench(baseline, candidate, tolerance=tolerance)
    if not report.checks:
        raise BenchmarkError(
            "bench results share no throughput metrics to gate on"
        )
    return report
