"""Topology and network statistics.

Operator-facing summaries of a generated edge cache network: RTT
distribution shape, server-distance spread, and how well the placement
matches the paper's density assumptions.  The ``repro network`` CLI
prints these.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TopologyError
from repro.topology.network import EdgeCacheNetwork


@dataclass(frozen=True)
class NetworkStats:
    """RTT-level summary of an edge cache network."""

    num_caches: int
    mean_pairwise_rtt_ms: float
    median_pairwise_rtt_ms: float
    diameter_ms: float
    mean_server_distance_ms: float
    min_server_distance_ms: float
    max_server_distance_ms: float
    median_nearest_peer_rtt_ms: float

    def __str__(self) -> str:
        return (
            f"caches={self.num_caches} "
            f"pairwise-rtt mean={self.mean_pairwise_rtt_ms:.1f} "
            f"median={self.median_pairwise_rtt_ms:.1f} "
            f"diameter={self.diameter_ms:.1f} | "
            f"server-dist {self.min_server_distance_ms:.1f}.."
            f"{self.max_server_distance_ms:.1f} "
            f"(mean {self.mean_server_distance_ms:.1f}) | "
            f"nearest-peer median={self.median_nearest_peer_rtt_ms:.1f}"
        )


def network_stats(network: EdgeCacheNetwork) -> NetworkStats:
    """Compute :class:`NetworkStats` from the ground-truth RTT matrix."""
    n = network.num_caches
    if n < 2:
        raise TopologyError("stats need at least 2 caches")
    cache_block = network.distances.submatrix(network.cache_nodes)
    iu, ju = np.triu_indices(n, k=1)
    pairwise = cache_block[iu, ju]
    nearest_peer = (
        cache_block + np.diag(np.full(n, np.inf))
    ).min(axis=1)
    server = network.server_distances()
    return NetworkStats(
        num_caches=n,
        mean_pairwise_rtt_ms=float(pairwise.mean()),
        median_pairwise_rtt_ms=float(np.median(pairwise)),
        diameter_ms=float(pairwise.max()),
        mean_server_distance_ms=float(server.mean()),
        min_server_distance_ms=float(server.min()),
        max_server_distance_ms=float(server.max()),
        median_nearest_peer_rtt_ms=float(np.median(nearest_peer)),
    )
