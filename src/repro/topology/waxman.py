"""Waxman random-graph edges, the intra-domain building block.

GT-ITM builds each transit/stub domain as a random graph over points in
a unit square where the probability of an edge between two routers
decays with their Euclidean distance (Waxman's model).  We reproduce
that here and guarantee connectivity by overlaying a minimum spanning
tree over the Euclidean distances.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import TopologyError


def waxman_graph(
    n: int,
    rng: np.random.Generator,
    alpha: float = 0.4,
    beta: float = 0.35,
    extra_edge_prob: float = 0.0,
) -> Tuple[np.ndarray, List[Tuple[int, int, float]]]:
    """Generate a connected Waxman graph on ``n`` points in a unit square.

    Returns ``(positions, edges)`` where ``positions`` is an ``(n, 2)``
    array and ``edges`` is a list of ``(i, j, distance)`` tuples with
    ``i < j`` and ``distance`` the Euclidean distance between the points
    (callers convert distances into latencies).

    ``alpha`` scales the overall edge density; ``beta`` controls how
    quickly the edge probability decays with distance (both per Waxman).
    ``extra_edge_prob`` adds uniform random edges on top, which GT-ITM
    uses to thicken small domains.
    """
    if n < 1:
        raise TopologyError(f"waxman_graph needs n >= 1, got {n}")
    if not 0 < alpha <= 1 or not 0 < beta <= 1:
        raise TopologyError(
            f"waxman parameters must be in (0, 1]: alpha={alpha}, beta={beta}"
        )

    positions = rng.random((n, 2))
    if n == 1:
        return positions, []

    diff = positions[:, None, :] - positions[None, :, :]
    dist = np.sqrt((diff**2).sum(axis=2))
    max_dist = float(dist.max())
    if max_dist == 0.0:
        # All points coincide (possible for tiny n with a degenerate rng);
        # fall back to a unit distance scale.
        max_dist = 1.0

    edges: Dict[Tuple[int, int], float] = {}
    upper_i, upper_j = np.triu_indices(n, k=1)
    prob = alpha * np.exp(-dist[upper_i, upper_j] / (beta * max_dist))
    draws = rng.random(prob.shape)
    accept = draws < prob
    if extra_edge_prob > 0:
        accept |= rng.random(prob.shape) < extra_edge_prob
    for i, j, take in zip(upper_i, upper_j, accept):
        if take:
            edges[(int(i), int(j))] = float(dist[i, j])

    _ensure_connected(n, dist, edges)
    return positions, [(i, j, d) for (i, j), d in sorted(edges.items())]


def _ensure_connected(
    n: int,
    dist: np.ndarray,
    edges: Dict[Tuple[int, int], float],
) -> None:
    """Add Euclidean-MST edges between components until connected.

    Runs a union-find over the accepted edges, then greedily joins the
    remaining components with the shortest available inter-component
    edge — i.e. the Kruskal steps the random draw missed.
    """
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> bool:
        ra, rb = find(a), find(b)
        if ra == rb:
            return False
        parent[ra] = rb
        return True

    components = n
    for i, j in edges:
        if union(i, j):
            components -= 1
    if components == 1:
        return

    upper_i, upper_j = np.triu_indices(n, k=1)
    order = np.argsort(dist[upper_i, upper_j], kind="stable")
    for idx in order:
        i, j = int(upper_i[idx]), int(upper_j[idx])
        if union(i, j):
            edges[(i, j)] = float(dist[i, j])
            components -= 1
            if components == 1:
                return


def scale_distances_to_latencies(
    edges: Sequence[Tuple[int, int, float]],
    latency_range_ms: Tuple[float, float],
    rng: np.random.Generator,
) -> List[Tuple[int, int, float]]:
    """Convert unit-square distances into latencies within a range.

    Distances are affinely mapped into ``latency_range_ms`` and lightly
    jittered (±10%) so equal-length links do not produce degenerate tied
    shortest paths everywhere.
    """
    low, high = latency_range_ms
    if not 0 < low <= high:
        raise TopologyError(
            f"latency range must satisfy 0 < low <= high, got ({low}, {high})"
        )
    if not edges:
        return []
    dists = np.asarray([d for _, _, d in edges])
    d_min, d_max = float(dists.min()), float(dists.max())
    span = d_max - d_min
    out: List[Tuple[int, int, float]] = []
    for (i, j, d) in edges:
        if span == 0.0:
            base = (low + high) / 2.0
        else:
            base = low + (d - d_min) / span * (high - low)
        jitter = 1.0 + rng.uniform(-0.1, 0.1)
        latency = min(max(base * jitter, low), high)
        out.append((i, j, float(latency)))
    return out
