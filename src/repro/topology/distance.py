"""All-pairs RTT computation and the :class:`DistanceMatrix` type.

The paper measures network distance as round-trip time between nodes.
On a simulated topology the *true* RTT between two placed nodes is twice
the one-way shortest-path propagation latency between their routers.
:func:`compute_rtt_matrix` runs multi-source Dijkstra over the router
graph (scipy CSR) restricted to the placed routers, which keeps the cost
at ``O(P * E log V)`` for ``P`` placed nodes instead of a full
all-routers solve.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np
from scipy.sparse.csgraph import dijkstra

from repro.errors import DisconnectedTopologyError, TopologyError
from repro.topology.graph import NetworkGraph
from repro.types import NodeId, RouterId


class DistanceMatrix:
    """Symmetric RTT matrix over the nodes of an edge cache network.

    Row/column ``i`` corresponds to node id ``i`` (origin server is node
    0 by convention; see :mod:`repro.types`).  Values are milliseconds.
    """

    def __init__(self, rtt_ms: np.ndarray) -> None:
        rtt_ms = np.asarray(rtt_ms, dtype=float)
        if rtt_ms.ndim != 2 or rtt_ms.shape[0] != rtt_ms.shape[1]:
            raise TopologyError(
                f"distance matrix must be square, got shape {rtt_ms.shape}"
            )
        if not np.all(np.isfinite(rtt_ms)):
            raise DisconnectedTopologyError(
                "distance matrix contains non-finite entries "
                "(disconnected node pair)"
            )
        if np.any(rtt_ms < 0):
            raise TopologyError("distance matrix contains negative entries")
        if np.any(np.abs(np.diagonal(rtt_ms)) > 1e-9):
            raise TopologyError("distance matrix diagonal must be zero")
        if not np.allclose(rtt_ms, rtt_ms.T, atol=1e-9):
            raise TopologyError("distance matrix must be symmetric")
        self._rtt = rtt_ms
        self._rtt.setflags(write=False)

    @property
    def size(self) -> int:
        """Number of nodes covered by the matrix."""
        return self._rtt.shape[0]

    def rtt(self, a: NodeId, b: NodeId) -> float:
        """RTT between nodes ``a`` and ``b`` in milliseconds."""
        self._check(a)
        self._check(b)
        return float(self._rtt[a, b])

    def one_way(self, a: NodeId, b: NodeId) -> float:
        """One-way latency (half the RTT)."""
        return self.rtt(a, b) / 2.0

    def row(self, node: NodeId) -> np.ndarray:
        """Read-only RTT row for one node."""
        self._check(node)
        return self._rtt[node]

    def submatrix(self, nodes: Sequence[NodeId]) -> np.ndarray:
        """Dense RTT submatrix over ``nodes`` (copy)."""
        idx = np.asarray(list(nodes), dtype=int)
        if idx.size and (idx.min() < 0 or idx.max() >= self.size):
            raise TopologyError(f"node ids out of range: {nodes!r}")
        return self._rtt[np.ix_(idx, idx)].copy()

    def as_array(self) -> np.ndarray:
        """The full read-only RTT matrix."""
        return self._rtt

    def nearest_to(self, node: NodeId, candidates: Sequence[NodeId]) -> NodeId:
        """The candidate with the smallest RTT to ``node``.

        Ties resolve to the earliest candidate (``np.argmin`` returns
        the first minimum), matching the previous ``min()`` semantics.
        """
        idx = np.asarray(list(candidates), dtype=int)
        if idx.size == 0:
            raise ValueError("candidates must be non-empty")
        if idx.min() < 0 or idx.max() >= self.size:
            raise TopologyError(f"candidate ids out of range: {candidates!r}")
        row = self.row(node)
        return int(idx[int(np.argmin(row[idx]))])

    def _check(self, node: NodeId) -> None:
        if not 0 <= node < self.size:
            raise TopologyError(
                f"node id {node} out of range [0, {self.size})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DistanceMatrix(size={self.size})"


def compute_rtt_matrix(
    graph: NetworkGraph,
    placed_routers: Sequence[RouterId],
) -> DistanceMatrix:
    """RTT matrix between placed nodes via shortest paths on ``graph``.

    ``placed_routers[i]`` is the router hosting node ``i``; two nodes on
    the same router have RTT 0.  Raises
    :class:`repro.errors.DisconnectedTopologyError` if any pair is
    unreachable.
    """
    if len(placed_routers) == 0:
        raise TopologyError("placed_routers must be non-empty")
    router_ids, adjacency, index_of = graph.to_sparse_adjacency()
    del router_ids  # order is captured by index_of
    try:
        source_indices = [index_of[r] for r in placed_routers]
    except KeyError as exc:
        raise TopologyError(f"placed router {exc} not in topology") from exc

    one_way = dijkstra(adjacency, directed=False, indices=source_indices)
    placed_cols = np.asarray(source_indices, dtype=int)
    rtt = 2.0 * one_way[:, placed_cols]
    # Symmetrise away float drift from independent Dijkstra runs.
    rtt = (rtt + rtt.T) / 2.0
    np.fill_diagonal(rtt, 0.0)
    return DistanceMatrix(rtt)


def pairwise_rtt(
    matrix: DistanceMatrix, nodes: Sequence[NodeId]
) -> List[float]:
    """All unordered-pair RTTs among ``nodes`` (used by GICost).

    Vectorised: one fancy-indexed submatrix gather plus
    ``np.triu_indices`` replaces the previous nested Python loop, whose
    row-major ``(i, j > i)`` pair order this preserves exactly.
    """
    idx = np.asarray(list(nodes), dtype=int)
    if idx.size < 2:
        return []
    if idx.min() < 0 or idx.max() >= matrix.size:
        raise TopologyError(f"node ids out of range: {nodes!r}")
    sub = matrix.as_array()[np.ix_(idx, idx)]
    iu, ju = np.triu_indices(idx.size, k=1)
    return sub[iu, ju].tolist()
