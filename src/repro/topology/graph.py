"""Weighted router-graph model.

:class:`NetworkGraph` wraps a ``networkx.Graph`` whose vertices are
routers and whose edges carry one-way propagation latencies in
milliseconds (attribute ``latency_ms``).  Routers are tagged with a
:class:`RouterTier` and a domain label so placement logic can
distinguish transit backbones from stub access networks.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.errors import DisconnectedTopologyError, TopologyError
from repro.types import RouterId


class RouterTier(enum.Enum):
    """Which layer of the transit-stub hierarchy a router belongs to."""

    TRANSIT = "transit"
    STUB = "stub"


class NetworkGraph:
    """An undirected router graph with millisecond edge latencies.

    The class owns all mutation; once handed to
    :func:`repro.topology.distance.compute_rtt_matrix` or placement it
    should be treated as immutable.
    """

    LATENCY_KEY = "latency_ms"

    def __init__(self) -> None:
        self._graph = nx.Graph()

    # -- construction -------------------------------------------------

    def add_router(
        self,
        router: RouterId,
        tier: RouterTier,
        domain: str,
        position: Optional[Tuple[float, float]] = None,
    ) -> None:
        """Add a router vertex.

        ``domain`` is an opaque label like ``"T0"`` or ``"T0.S2"`` used
        for grouping; ``position`` is an optional 2-D coordinate used by
        Waxman-style edge models and plotting.
        """
        if router in self._graph:
            raise TopologyError(f"router {router} already exists")
        self._graph.add_node(router, tier=tier, domain=domain, position=position)

    def add_link(self, a: RouterId, b: RouterId, latency_ms: float) -> None:
        """Add an undirected link; parallel links keep the lower latency."""
        if a == b:
            raise TopologyError(f"self-loop on router {a}")
        if a not in self._graph or b not in self._graph:
            raise TopologyError(f"link endpoints must exist: ({a}, {b})")
        if latency_ms <= 0:
            raise TopologyError(
                f"link latency must be > 0 ms, got {latency_ms} for ({a}, {b})"
            )
        if self._graph.has_edge(a, b):
            existing = self._graph[a][b][self.LATENCY_KEY]
            if latency_ms < existing:
                self._graph[a][b][self.LATENCY_KEY] = latency_ms
            return
        self._graph.add_edge(a, b, **{self.LATENCY_KEY: latency_ms})

    # -- inspection ---------------------------------------------------

    @property
    def router_count(self) -> int:
        return self._graph.number_of_nodes()

    @property
    def link_count(self) -> int:
        return self._graph.number_of_edges()

    def routers(self) -> Iterator[RouterId]:
        return iter(self._graph.nodes)

    def routers_in_tier(self, tier: RouterTier) -> List[RouterId]:
        """All routers of one tier, in insertion order."""
        return [
            r for r, data in self._graph.nodes(data=True) if data["tier"] is tier
        ]

    def tier_of(self, router: RouterId) -> RouterTier:
        try:
            return self._graph.nodes[router]["tier"]
        except KeyError:
            raise TopologyError(f"unknown router {router}") from None

    def domain_of(self, router: RouterId) -> str:
        try:
            return self._graph.nodes[router]["domain"]
        except KeyError:
            raise TopologyError(f"unknown router {router}") from None

    def position_of(self, router: RouterId) -> Optional[Tuple[float, float]]:
        try:
            return self._graph.nodes[router]["position"]
        except KeyError:
            raise TopologyError(f"unknown router {router}") from None

    def has_link(self, a: RouterId, b: RouterId) -> bool:
        return self._graph.has_edge(a, b)

    def link_latency(self, a: RouterId, b: RouterId) -> float:
        if not self._graph.has_edge(a, b):
            raise TopologyError(f"no link between {a} and {b}")
        return self._graph[a][b][self.LATENCY_KEY]

    def neighbors(self, router: RouterId) -> List[RouterId]:
        if router not in self._graph:
            raise TopologyError(f"unknown router {router}")
        return list(self._graph.neighbors(router))

    def domains(self) -> Dict[str, List[RouterId]]:
        """Map domain label -> routers, in insertion order."""
        out: Dict[str, List[RouterId]] = {}
        for router, data in self._graph.nodes(data=True):
            out.setdefault(data["domain"], []).append(router)
        return out

    def is_connected(self) -> bool:
        if self.router_count == 0:
            return False
        return nx.is_connected(self._graph)

    def require_connected(self) -> None:
        """Raise :class:`DisconnectedTopologyError` unless connected."""
        if not self.is_connected():
            raise DisconnectedTopologyError(
                f"topology with {self.router_count} routers and "
                f"{self.link_count} links is not connected"
            )

    # -- export -------------------------------------------------------

    def to_sparse_adjacency(self) -> Tuple["np.ndarray", "object", Dict[RouterId, int]]:
        """Return ``(index_array, csr_matrix, router->row map)``.

        Used by :mod:`repro.topology.distance` to run Dijkstra on the
        scipy CSR representation.  The index array maps row -> router id.
        """
        from scipy.sparse import csr_matrix

        routers = list(self._graph.nodes)
        index_of = {r: i for i, r in enumerate(routers)}
        n = len(routers)
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        for a, b, data in self._graph.edges(data=True):
            latency = data[self.LATENCY_KEY]
            rows.append(index_of[a])
            cols.append(index_of[b])
            vals.append(latency)
            rows.append(index_of[b])
            cols.append(index_of[a])
            vals.append(latency)
        matrix = csr_matrix(
            (np.asarray(vals), (np.asarray(rows), np.asarray(cols))), shape=(n, n)
        )
        return np.asarray(routers), matrix, index_of

    def as_networkx(self) -> nx.Graph:
        """Expose the underlying networkx graph (read-only by convention)."""
        return self._graph

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NetworkGraph(routers={self.router_count}, links={self.link_count})"
        )
