"""Network topology substrate.

A from-scratch replacement for the GT-ITM transit-stub topology generator
the paper uses, plus all-pairs RTT computation and cache/server placement:

* :mod:`repro.topology.graph` — the weighted router graph model;
* :mod:`repro.topology.waxman` — Waxman random graphs (building block);
* :mod:`repro.topology.transit_stub` — the hierarchical generator;
* :mod:`repro.topology.distance` — :class:`DistanceMatrix` (RTT matrix);
* :mod:`repro.topology.placement` — pinning origin + caches to routers;
* :mod:`repro.topology.network` — :class:`EdgeCacheNetwork`, the model the
  rest of the library consumes.
"""

from repro.topology.graph import NetworkGraph, RouterTier
from repro.topology.waxman import waxman_graph
from repro.topology.transit_stub import generate_transit_stub
from repro.topology.distance import DistanceMatrix, compute_rtt_matrix
from repro.topology.placement import Placement, place_network
from repro.topology.network import (
    EdgeCacheNetwork,
    build_network,
    network_from_matrix,
)
from repro.topology.drift import drift_network, drift_series
from repro.topology.stats import NetworkStats, network_stats

__all__ = [
    "NetworkGraph",
    "RouterTier",
    "waxman_graph",
    "generate_transit_stub",
    "DistanceMatrix",
    "compute_rtt_matrix",
    "Placement",
    "place_network",
    "EdgeCacheNetwork",
    "build_network",
    "network_from_matrix",
    "drift_network",
    "drift_series",
    "NetworkStats",
    "network_stats",
]
