"""Pinning the origin server and edge caches to topology routers.

The paper assumes "the scale of the edge cache network, and the
locations of the edge caches and the server in the Internet are
pre-decided"; placement is therefore a substrate decision.  We model the
common CDN deployment: the origin sits on (or next to) a backbone
transit router, and edge caches sit on distinct stub routers spread
across access networks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.config import PlacementConfig
from repro.errors import PlacementError
from repro.topology.graph import NetworkGraph, RouterTier
from repro.types import RouterId


@dataclass(frozen=True)
class Placement:
    """Result of placing the edge cache network on a topology.

    ``node_routers[i]`` is the router hosting node ``i`` of the edge
    cache network; node 0 is the origin server, nodes ``1..N`` are the
    edge caches (paper ids ``Ec_0 .. Ec_{N-1}``).
    """

    origin_router: RouterId
    cache_routers: Tuple[RouterId, ...]

    @property
    def num_caches(self) -> int:
        return len(self.cache_routers)

    @property
    def node_routers(self) -> List[RouterId]:
        """Router per network node, indexed by node id."""
        return [self.origin_router, *self.cache_routers]


def place_network(
    graph: NetworkGraph,
    config: PlacementConfig,
    rng: np.random.Generator,
) -> Placement:
    """Place one origin server and ``config.num_caches`` edge caches.

    The origin goes on a uniformly random transit router (stub router if
    ``origin_on_transit`` is false or no transit tier exists).  Caches go
    on distinct stub routers; if caches outnumber stub routers and
    ``allow_colocation`` is set, routers are reused round-robin,
    otherwise :class:`repro.errors.PlacementError` is raised.
    """
    config.validate()
    transit = graph.routers_in_tier(RouterTier.TRANSIT)
    stubs = graph.routers_in_tier(RouterTier.STUB)

    if config.origin_on_transit and transit:
        origin = int(transit[int(rng.integers(len(transit)))])
    elif stubs:
        origin = int(stubs[int(rng.integers(len(stubs)))])
    elif transit:
        origin = int(transit[int(rng.integers(len(transit)))])
    else:
        raise PlacementError("topology has no routers to place the origin on")

    candidates = [r for r in stubs if r != origin]
    if not candidates:
        candidates = [r for r in graph.routers() if r != origin]
    if not candidates:
        raise PlacementError("topology has no routers left for caches")

    n = config.num_caches
    if n <= len(candidates):
        chosen = rng.choice(len(candidates), size=n, replace=False)
        cache_routers = tuple(int(candidates[int(i)]) for i in chosen)
    elif config.allow_colocation:
        chosen = rng.integers(len(candidates), size=n)
        cache_routers = tuple(int(candidates[int(i)]) for i in chosen)
    else:
        raise PlacementError(
            f"cannot place {n} caches on {len(candidates)} distinct stub "
            f"routers (set allow_colocation or grow the topology)"
        )
    return Placement(origin_router=origin, cache_routers=cache_routers)
