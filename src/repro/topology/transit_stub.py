"""Hierarchical transit-stub topology generator (GT-ITM substitute).

Reproduces the topology family of Zegura, Calvert & Bhattacharjee,
"How to Model an Internetwork" (INFOCOM 1996), which the paper generates
with the GT-ITM tool:

* a top level of *transit domains* — small, densely meshed backbones —
  connected to each other by slow long-haul links;
* each transit router hosts several *stub domains* — access networks of
  fast, short links — attached by medium-latency transit-stub links;
* optional extra stub-to-transit links model multi-homed stubs.

Intra-domain connectivity uses the Waxman model
(:mod:`repro.topology.waxman`), as GT-ITM does.  Edge latencies are
drawn per tier from the ranges in
:class:`repro.config.TransitStubConfig`, giving the characteristic
bimodal RTT distribution (cheap local paths, expensive cross-backbone
paths) that the SL/SDSL clustering behaviour depends on.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.config import TransitStubConfig
from repro.errors import TopologyError
from repro.topology.graph import NetworkGraph, RouterTier
from repro.topology.waxman import scale_distances_to_latencies, waxman_graph


def generate_transit_stub(
    config: TransitStubConfig,
    rng: np.random.Generator,
) -> NetworkGraph:
    """Generate a connected transit-stub router graph.

    Router ids are assigned densely from 0; transit routers come first
    (domain by domain), then stub routers.  The result is guaranteed
    connected (raises :class:`repro.errors.TopologyError` otherwise,
    which would indicate a generator bug).
    """
    config.validate()
    graph = NetworkGraph()
    next_router = 0

    # --- transit domains ----------------------------------------------
    transit_domains: List[List[int]] = []
    for t in range(config.transit_domains):
        domain_label = f"T{t}"
        size = config.transit_nodes_per_domain
        positions, edges = waxman_graph(
            size, rng, alpha=0.7, beta=0.6,
            extra_edge_prob=config.intra_domain_edge_prob,
        )
        routers = list(range(next_router, next_router + size))
        next_router += size
        for local, router in enumerate(routers):
            graph.add_router(
                router,
                RouterTier.TRANSIT,
                domain_label,
                position=(float(positions[local, 0]), float(positions[local, 1])),
            )
        latencied = scale_distances_to_latencies(
            edges, config.intra_transit_latency_ms, rng
        )
        for i, j, latency in latencied:
            graph.add_link(routers[i], routers[j], latency)
        transit_domains.append(routers)

    _connect_transit_domains(graph, transit_domains, config, rng)

    # --- stub domains ---------------------------------------------------
    all_transit = [r for domain in transit_domains for r in domain]
    stub_index = 0
    for gateway in all_transit:
        for _ in range(config.stub_domains_per_transit_node):
            domain_label = f"S{stub_index}"
            stub_index += 1
            size = config.stub_nodes_per_domain
            positions, edges = waxman_graph(
                size, rng, alpha=0.5, beta=0.4,
                extra_edge_prob=config.intra_domain_edge_prob / 2.0,
            )
            routers = list(range(next_router, next_router + size))
            next_router += size
            for local, router in enumerate(routers):
                graph.add_router(
                    router,
                    RouterTier.STUB,
                    domain_label,
                    position=(
                        float(positions[local, 0]),
                        float(positions[local, 1]),
                    ),
                )
            latencied = scale_distances_to_latencies(
                edges, config.intra_stub_latency_ms, rng
            )
            for i, j, latency in latencied:
                graph.add_link(routers[i], routers[j], latency)

            # Primary attachment: the hosting transit router.
            attach = routers[int(rng.integers(size))]
            graph.add_link(
                attach,
                gateway,
                float(rng.uniform(*config.transit_stub_latency_ms)),
            )
            # Multi-homing: occasionally attach a second stub router to a
            # random transit router elsewhere in the backbone.
            if rng.random() < config.extra_stub_transit_edge_prob:
                other_transit = all_transit[int(rng.integers(len(all_transit)))]
                second = routers[int(rng.integers(size))]
                if other_transit != gateway or second != attach:
                    graph.add_link(
                        second,
                        other_transit,
                        float(rng.uniform(*config.transit_stub_latency_ms)),
                    )

    graph.require_connected()
    if graph.router_count != config.total_routers:
        raise TopologyError(
            f"generator produced {graph.router_count} routers, "
            f"expected {config.total_routers}"
        )
    return graph


def _connect_transit_domains(
    graph: NetworkGraph,
    transit_domains: List[List[int]],
    config: TransitStubConfig,
    rng: np.random.Generator,
) -> None:
    """Wire the transit domains into a connected backbone.

    GT-ITM connects transit domains with a random connected domain-level
    graph; we build a random spanning tree over the domains (uniform
    Prüfer-like attachment) plus extra domain pairs with probability
    ``extra_transit_edge_prob``, then realise each domain-level edge as a
    router-level long-haul link between random representatives.
    """
    count = len(transit_domains)
    if count <= 1:
        return

    def link_domains(a: int, b: int) -> None:
        ra = transit_domains[a][int(rng.integers(len(transit_domains[a])))]
        rb = transit_domains[b][int(rng.integers(len(transit_domains[b])))]
        graph.add_link(
            ra, rb, float(rng.uniform(*config.transit_transit_latency_ms))
        )

    # Random spanning tree: attach each domain to a random earlier one.
    order = rng.permutation(count)
    for pos in range(1, count):
        a = int(order[pos])
        b = int(order[int(rng.integers(pos))])
        link_domains(a, b)

    # Extra backbone edges.
    for a in range(count):
        for b in range(a + 1, count):
            if rng.random() < config.extra_transit_edge_prob:
                link_domains(a, b)
