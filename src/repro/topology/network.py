"""The :class:`EdgeCacheNetwork` model — the object every other
subsystem consumes.

An ``EdgeCacheNetwork`` bundles the placed origin server and edge caches
with the true RTT matrix between them.  Group-formation schemes never
read the matrix directly (they learn distances by *probing*, see
:mod:`repro.probing`); the matrix is ground truth for the simulator and
for evaluation metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.config import PlacementConfig, TransitStubConfig
from repro.errors import TopologyError
from repro.topology.distance import DistanceMatrix, compute_rtt_matrix
from repro.topology.graph import NetworkGraph
from repro.topology.placement import Placement, place_network
from repro.topology.transit_stub import generate_transit_stub
from repro.types import ORIGIN_NODE_ID, NodeId
from repro.utils.rng import SeedLike, spawn_rng


@dataclass(frozen=True)
class EdgeCacheNetwork:
    """An origin server plus N edge caches with ground-truth RTTs.

    Node ids: origin server is :data:`repro.types.ORIGIN_NODE_ID` (0),
    caches are ``1..N``.  ``distances`` covers all ``N + 1`` nodes.
    """

    distances: DistanceMatrix
    placement: Optional[Placement] = None
    graph: Optional[NetworkGraph] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.distances.size < 2:
            raise TopologyError(
                "an edge cache network needs an origin and at least one cache"
            )
        if self.placement is not None:
            expected = self.placement.num_caches + 1
            if expected != self.distances.size:
                raise TopologyError(
                    f"placement covers {expected} nodes but distance matrix "
                    f"covers {self.distances.size}"
                )

    @property
    def num_caches(self) -> int:
        """N — the number of edge caches (origin excluded)."""
        return self.distances.size - 1

    @property
    def origin(self) -> NodeId:
        return ORIGIN_NODE_ID

    @property
    def cache_nodes(self) -> List[NodeId]:
        """Node ids of all edge caches, ``[1..N]``."""
        return list(range(1, self.distances.size))

    @property
    def all_nodes(self) -> List[NodeId]:
        """Origin followed by all caches."""
        return list(range(self.distances.size))

    def rtt(self, a: NodeId, b: NodeId) -> float:
        """Ground-truth RTT between two nodes (ms)."""
        return self.distances.rtt(a, b)

    def server_distance(self, cache: NodeId) -> float:
        """Ground-truth RTT between a cache and the origin server (ms)."""
        if cache == ORIGIN_NODE_ID:
            raise ValueError("the origin has no server distance")
        return self.distances.rtt(ORIGIN_NODE_ID, cache)

    def server_distances(self) -> np.ndarray:
        """RTTs from every cache to the origin, indexed by cache order.

        ``result[i]`` is the server distance of cache node ``i + 1``.
        """
        return self.distances.row(ORIGIN_NODE_ID)[1:].copy()

    def caches_nearest_origin(self, count: int) -> List[NodeId]:
        """The ``count`` cache nodes closest to the origin (by RTT)."""
        return self._caches_by_server_distance(count, farthest=False)

    def caches_farthest_origin(self, count: int) -> List[NodeId]:
        """The ``count`` cache nodes farthest from the origin (by RTT)."""
        return self._caches_by_server_distance(count, farthest=True)

    def _caches_by_server_distance(
        self, count: int, farthest: bool
    ) -> List[NodeId]:
        if not 1 <= count <= self.num_caches:
            raise ValueError(
                f"count must be in [1, {self.num_caches}], got {count}"
            )
        dists = self.server_distances()
        order = np.argsort(dists, kind="stable")
        if farthest:
            order = order[::-1]
        return [int(i) + 1 for i in order[:count]]


def build_network(
    num_caches: int,
    topology_config: Optional[TransitStubConfig] = None,
    seed: SeedLike = None,
    origin_on_transit: bool = True,
) -> EdgeCacheNetwork:
    """One-call construction of a simulated edge cache network.

    Generates a transit-stub topology (auto-scaled so every cache gets
    its own stub router), places the origin and ``num_caches`` caches,
    and computes the ground-truth RTT matrix.

    This is the main entry point used by examples and experiments:

    >>> network = build_network(num_caches=50, seed=7)
    >>> network.num_caches
    50
    """
    rng = spawn_rng(seed)
    config = topology_config or TransitStubConfig()
    # Track the paper's placement density (~0.8 caches per stub router)
    # so caches share stub domains with nearby peers at every scale.
    config = config.sized_for_density(num_caches + 1)
    graph = generate_transit_stub(config, rng)
    placement = place_network(
        graph,
        PlacementConfig(num_caches=num_caches, origin_on_transit=origin_on_transit),
        rng,
    )
    distances = compute_rtt_matrix(graph, placement.node_routers)
    return EdgeCacheNetwork(distances=distances, placement=placement, graph=graph)


def network_from_matrix(rtt_ms: Sequence[Sequence[float]]) -> EdgeCacheNetwork:
    """Build a network directly from an explicit RTT matrix.

    Row/column 0 must be the origin server.  Used by unit tests and by
    the paper's Figure 1 worked example.
    """
    return EdgeCacheNetwork(distances=DistanceMatrix(np.asarray(rtt_ms, float)))
