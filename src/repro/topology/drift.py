"""Topology dynamics: RTT drift over time.

Internet path latencies drift (routing changes, congestion shifts), so
a grouping formed at time T0 slowly stops matching reality.  This
module produces *drifted* versions of a network: each link's latency is
perturbed multiplicatively and the node RTT matrix recomputed via
shortest paths — which keeps the result a true path metric (triangle
inequality intact), unlike perturbing the RTT matrix directly.

The churn/drift experiments use a sequence of progressively drifted
networks to measure how fast grouping quality decays and when
re-clustering pays.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TopologyError
from repro.topology.distance import compute_rtt_matrix
from repro.topology.graph import NetworkGraph
from repro.topology.network import EdgeCacheNetwork
from repro.utils.rng import SeedLike, spawn_rng


def drift_network(
    network: EdgeCacheNetwork,
    scale: float = 0.1,
    seed: SeedLike = None,
) -> EdgeCacheNetwork:
    """One drift step: link latencies jitter by ``±scale`` (lognormal).

    Requires the topology graph (``network.graph``); networks loaded
    from bare distance matrices cannot drift.  Each link's latency is
    multiplied by ``exp(N(0, scale))``, so repeated application
    compounds into a random walk in log space.  Returns a new network
    over the *same placement* with a freshly computed RTT matrix.
    """
    if network.graph is None or network.placement is None:
        raise TopologyError(
            "drift needs the topology graph; this network carries only "
            "a distance matrix"
        )
    if scale < 0:
        raise TopologyError(f"scale must be >= 0, got {scale}")
    rng = spawn_rng(seed)

    old = network.graph.as_networkx()
    drifted = NetworkGraph()
    for router, data in old.nodes(data=True):
        drifted.add_router(
            router, data["tier"], data["domain"], position=data["position"]
        )
    for a, b, data in old.edges(data=True):
        factor = float(np.exp(rng.normal(0.0, scale))) if scale else 1.0
        drifted.add_link(a, b, data["latency_ms"] * factor)

    distances = compute_rtt_matrix(
        drifted, network.placement.node_routers
    )
    return EdgeCacheNetwork(
        distances=distances, placement=network.placement, graph=drifted
    )


def drift_series(
    network: EdgeCacheNetwork,
    steps: int,
    scale: float = 0.1,
    seed: SeedLike = None,
):
    """Yield ``steps`` progressively drifted networks (a random walk).

    The first yielded network is one drift step away from the input.
    """
    if steps < 1:
        raise TopologyError(f"steps must be >= 1, got {steps}")
    rng = spawn_rng(seed)
    current = network
    for _ in range(steps):
        current = drift_network(current, scale=scale, seed=rng)
        yield current


def mean_relative_rtt_change(
    before: EdgeCacheNetwork, after: EdgeCacheNetwork
) -> float:
    """Mean |ΔRTT| / RTT over all node pairs (drift magnitude measure)."""
    a = before.distances.as_array()
    b = after.distances.as_array()
    if a.shape != b.shape:
        raise TopologyError(
            f"networks have different sizes: {a.shape} vs {b.shape}"
        )
    iu, ju = np.triu_indices(a.shape[0], k=1)
    base = a[iu, ju]
    if not base.size:
        raise TopologyError("need at least one node pair")
    return float(np.mean(np.abs(b[iu, ju] - base) / base))
