"""Document catalog: ids, sizes, and which documents are dynamic.

Sizes are lognormal (heavy-tailed, like real web objects).  "Dynamic"
documents are the subset the origin server updates over time; the
paper's whole setting is *dynamic content delivery*, so by default most
of the catalog is dynamic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

from repro.config import DocumentConfig
from repro.errors import WorkloadError
from repro.types import DocumentId
from repro.utils.rng import SeedLike, spawn_rng


@dataclass(frozen=True)
class Document:
    """One document: identity, size, and dynamic/static flag."""

    doc_id: DocumentId
    size_bytes: int
    is_dynamic: bool

    def __post_init__(self) -> None:
        if self.doc_id < 0:
            raise WorkloadError(f"doc_id must be >= 0, got {self.doc_id}")
        if self.size_bytes <= 0:
            raise WorkloadError(
                f"document {self.doc_id} has non-positive size "
                f"{self.size_bytes}"
            )


class DocumentCatalog:
    """An immutable, densely-indexed collection of documents."""

    def __init__(self, documents: List[Document]) -> None:
        if not documents:
            raise WorkloadError("catalog cannot be empty")
        for i, doc in enumerate(documents):
            if doc.doc_id != i:
                raise WorkloadError(
                    f"catalog ids must be dense from 0; position {i} holds "
                    f"doc_id {doc.doc_id}"
                )
        self._documents = tuple(documents)
        self._sizes = np.asarray([d.size_bytes for d in documents], dtype=np.int64)
        self._dynamic = np.asarray([d.is_dynamic for d in documents], dtype=bool)

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._documents)

    def __getitem__(self, doc_id: DocumentId) -> Document:
        if not 0 <= doc_id < len(self._documents):
            raise WorkloadError(
                f"doc_id {doc_id} out of range [0, {len(self._documents)})"
            )
        return self._documents[doc_id]

    def size_of(self, doc_id: DocumentId) -> int:
        return int(self._sizes[doc_id])

    def is_dynamic(self, doc_id: DocumentId) -> bool:
        return bool(self._dynamic[doc_id])

    @property
    def sizes(self) -> np.ndarray:
        """All sizes (read-oriented view; do not mutate)."""
        return self._sizes

    @property
    def total_bytes(self) -> int:
        return int(self._sizes.sum())

    @property
    def mean_size_bytes(self) -> float:
        return float(self._sizes.mean())

    def dynamic_ids(self) -> List[DocumentId]:
        """Ids of all dynamic documents."""
        return [int(i) for i in np.flatnonzero(self._dynamic)]


def build_catalog(
    config: DocumentConfig,
    seed: SeedLike = None,
) -> DocumentCatalog:
    """Generate a catalog per :class:`repro.config.DocumentConfig`.

    Sizes follow a lognormal whose *mean* equals ``mean_size_bytes``;
    the first ``dynamic_fraction`` of documents by popularity rank are
    dynamic (popular content on a sports site is exactly the
    live-updated content — scores, schedules).
    """
    config.validate()
    rng = spawn_rng(seed)
    n = config.num_documents
    if config.size_sigma == 0:
        sizes = np.full(n, max(1, round(config.mean_size_bytes)))
    else:
        # mean of lognormal(mu, sigma) = exp(mu + sigma^2 / 2)
        mu = np.log(config.mean_size_bytes) - config.size_sigma**2 / 2.0
        sizes = np.maximum(
            1, np.round(rng.lognormal(mu, config.size_sigma, size=n))
        ).astype(np.int64)
    dynamic_count = int(round(config.dynamic_fraction * n))
    documents = [
        Document(
            doc_id=i,
            size_bytes=int(sizes[i]),
            is_dynamic=i < dynamic_count,
        )
        for i in range(n)
    ]
    return DocumentCatalog(documents)
