"""Workload generation and trace IO.

The paper drives its simulator with request logs derived from the 2000
Sydney Olympics IBM trace and an origin-side update log.  That trace is
proprietary, so :mod:`repro.workload.ibm_synthetic` generates the
closest synthetic equivalent: Zipf document popularity, heavy-tailed
sizes, high cross-cache request similarity, and a Poisson update stream
over the dynamic subset of the catalog (see DESIGN.md, Substitutions).
"""

from repro.workload.documents import Document, DocumentCatalog, build_catalog
from repro.workload.zipf import ZipfSampler
from repro.workload.trace import (
    RequestRecord,
    UpdateRecord,
    read_request_log,
    read_update_log,
    write_request_log,
    write_update_log,
)
from repro.workload.requests import generate_request_log
from repro.workload.updates import generate_update_log
from repro.workload.ibm_synthetic import (
    Workload,
    generate_workload,
    load_workload,
)
from repro.workload.flash_crowd import (
    FlashCrowdConfig,
    generate_flash_crowd_workload,
)
from repro.workload.stats import TraceStats, summarize_trace

__all__ = [
    "Document",
    "DocumentCatalog",
    "build_catalog",
    "ZipfSampler",
    "RequestRecord",
    "UpdateRecord",
    "read_request_log",
    "write_request_log",
    "read_update_log",
    "write_update_log",
    "generate_request_log",
    "generate_update_log",
    "Workload",
    "generate_workload",
    "load_workload",
    "FlashCrowdConfig",
    "generate_flash_crowd_workload",
    "TraceStats",
    "summarize_trace",
]
