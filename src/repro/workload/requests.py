"""Per-cache request-log generation.

Each cache's request stream is a Poisson process over time whose
document choice mixes two Zipf samplers:

* with probability ``shared_interest`` — the *global* sampler, one
  popularity ranking shared by every cache (the paper's assumption of
  "considerable degree of similarity" between cache request patterns);
* otherwise — the cache's *local* sampler, the same Zipf law over a
  cache-specific permutation of the catalog (regional interest).

Raising ``shared_interest`` makes group caching more effective, which is
the lever behind the hit-rate side of the paper's size/latency
trade-off.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.config import WorkloadConfig
from repro.errors import WorkloadError
from repro.types import NodeId
from repro.workload.trace import RequestRecord
from repro.workload.zipf import ZipfSampler


def generate_request_log(
    cache_nodes: Sequence[NodeId],
    config: WorkloadConfig,
    rng: np.random.Generator,
) -> List[RequestRecord]:
    """Generate a time-sorted request log across all ``cache_nodes``."""
    config.validate()
    cache_nodes = list(cache_nodes)
    if not cache_nodes:
        raise WorkloadError("need at least one cache to generate requests")

    n_docs = config.documents.num_documents
    global_sampler = ZipfSampler(n_docs, config.zipf_alpha)
    local_samplers = {
        cache: ZipfSampler(
            n_docs, config.zipf_alpha, permutation=rng.permutation(n_docs)
        )
        for cache in cache_nodes
    }

    records: List[RequestRecord] = []
    per_cache = config.requests_per_cache
    for cache in cache_nodes:
        # Poisson arrivals: exponential inter-arrival times.
        gaps = rng.exponential(config.mean_interarrival_ms, size=per_cache)
        times = np.cumsum(gaps)
        use_global = rng.random(per_cache) < config.shared_interest
        global_docs = global_sampler.sample(rng, size=per_cache)
        local_docs = local_samplers[cache].sample(rng, size=per_cache)
        docs = np.where(use_global, global_docs, local_docs)
        for t, doc in zip(times, docs):
            if config.duration_ms is not None and t > config.duration_ms:
                break
            records.append(
                RequestRecord(
                    timestamp_ms=float(t),
                    cache_node=cache,
                    doc_id=int(doc),
                )
            )
    records.sort()
    return records
