"""Workload/trace statistics.

Summaries the evaluation cares about: how Zipf-like the popularity
distribution actually is, how similar the caches' request patterns are
(the paper *assumes* "considerable degree of similarity" — this module
measures it), and per-cache volumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.types import DocumentId, NodeId, ms_to_s
from repro.workload.trace import RequestRecord


@dataclass(frozen=True)
class TraceStats:
    """Summary of one request log."""

    num_requests: int
    num_caches: int
    num_distinct_docs: int
    duration_ms: float
    top_doc_share: float
    zipf_alpha_estimate: float
    mean_pairwise_overlap: float

    def __str__(self) -> str:
        return (
            f"requests={self.num_requests} caches={self.num_caches} "
            f"docs={self.num_distinct_docs} "
            f"duration={ms_to_s(self.duration_ms):.1f}s "
            f"top-doc={self.top_doc_share:.1%} "
            f"zipf-alpha~{self.zipf_alpha_estimate:.2f} "
            f"overlap={self.mean_pairwise_overlap:.2f}"
        )


def popularity_counts(
    requests: Sequence[RequestRecord],
) -> Dict[DocumentId, int]:
    """Request count per document."""
    counts: Dict[DocumentId, int] = {}
    for record in requests:
        counts[record.doc_id] = counts.get(record.doc_id, 0) + 1
    return counts


def estimate_zipf_alpha(counts: Dict[DocumentId, int]) -> float:
    """Least-squares slope of log(count) vs log(rank).

    A crude but standard estimator: fit ``log c_r = -alpha log r + b``
    over the documents with at least 2 requests (singletons are rank
    noise).
    """
    values = sorted(counts.values(), reverse=True)
    values = [v for v in values if v >= 2]
    if len(values) < 3:
        raise WorkloadError(
            "need at least 3 documents with >=2 requests to fit alpha"
        )
    ranks = np.arange(1, len(values) + 1, dtype=float)
    slope, _intercept = np.polyfit(np.log(ranks), np.log(values), 1)
    return float(-slope)


def top_document_overlap(
    requests: Sequence[RequestRecord],
    top: int = 20,
) -> float:
    """Mean pairwise Jaccard overlap of the caches' top-N document sets.

    This quantifies the paper's similarity assumption: 1.0 means every
    cache's hot set is identical, 0.0 means fully disjoint interests.
    """
    if top < 1:
        raise WorkloadError(f"top must be >= 1, got {top}")
    by_cache: Dict[NodeId, Dict[DocumentId, int]] = {}
    for record in requests:
        counts = by_cache.setdefault(record.cache_node, {})
        counts[record.doc_id] = counts.get(record.doc_id, 0) + 1
    if len(by_cache) < 2:
        raise WorkloadError("need >= 2 caches to measure overlap")
    top_sets = {}
    for cache, counts in by_cache.items():
        ranked = sorted(counts, key=lambda d: (-counts[d], d))
        top_sets[cache] = set(ranked[:top])
    caches = sorted(top_sets)
    overlaps = []
    for i, a in enumerate(caches):
        for b in caches[i + 1:]:
            union = top_sets[a] | top_sets[b]
            inter = top_sets[a] & top_sets[b]
            overlaps.append(len(inter) / len(union) if union else 0.0)
    return float(np.mean(overlaps))


def summarize_trace(requests: Sequence[RequestRecord]) -> TraceStats:
    """Full :class:`TraceStats` for a request log."""
    if not requests:
        raise WorkloadError("cannot summarize an empty request log")
    counts = popularity_counts(requests)
    total = len(requests)
    caches = {r.cache_node for r in requests}
    return TraceStats(
        num_requests=total,
        num_caches=len(caches),
        num_distinct_docs=len(counts),
        duration_ms=max(r.timestamp_ms for r in requests),
        top_doc_share=max(counts.values()) / total,
        zipf_alpha_estimate=estimate_zipf_alpha(counts),
        mean_pairwise_overlap=(
            top_document_overlap(requests) if len(caches) >= 2 else 1.0
        ),
    )
