"""The "Olympics-like" workload preset — a complete synthetic workload.

Substitutes the proprietary 2000 Sydney Olympics IBM trace (see
DESIGN.md).  :func:`generate_workload` bundles a document catalog, a
request log spanning all caches, and an update log covering the request
horizon into one :class:`Workload` value that the simulator consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.config import WorkloadConfig
from repro.errors import WorkloadError
from repro.types import NodeId
from repro.utils.rng import SeedLike, spawn_rng
from repro.workload.documents import DocumentCatalog, build_catalog
from repro.workload.requests import generate_request_log
from repro.workload.trace import (
    RequestRecord,
    read_request_log,
    read_update_log,
    write_request_log,
    write_update_log,
)
from repro.workload.updates import generate_update_log

PathLike = Union[str, Path]


@dataclass(frozen=True)
class Workload:
    """A catalog plus time-sorted request and update logs."""

    catalog: DocumentCatalog
    requests: tuple
    updates: tuple

    def __post_init__(self) -> None:
        if not self.requests:
            raise WorkloadError("a workload needs at least one request")
        for record in self.requests:
            if record.doc_id >= len(self.catalog):
                raise WorkloadError(
                    f"request for unknown doc {record.doc_id} "
                    f"(catalog size {len(self.catalog)})"
                )
        for record in self.updates:
            if record.doc_id >= len(self.catalog):
                raise WorkloadError(
                    f"update for unknown doc {record.doc_id} "
                    f"(catalog size {len(self.catalog)})"
                )

    @property
    def num_requests(self) -> int:
        return len(self.requests)

    @property
    def num_updates(self) -> int:
        return len(self.updates)

    @property
    def horizon_ms(self) -> float:
        """Timestamp of the last event in the workload."""
        last_request = self.requests[-1].timestamp_ms
        last_update = self.updates[-1].timestamp_ms if self.updates else 0.0
        return max(last_request, last_update)

    def requests_of(self, cache: NodeId) -> List[RequestRecord]:
        """The request stream arriving at one cache."""
        return [r for r in self.requests if r.cache_node == cache]

    def request_columns(self):
        """Request log as ``(timestamps, cache_nodes, doc_ids)`` arrays.

        Columnar float64/int64/int64 views in log order, extracted once
        and memoised on the instance (the object is frozen but the memo
        is not a field, so equality and hashing are unaffected): the
        batched event loop consumes columns, and re-extracting them
        from a million request records on every run would dominate its
        setup cost.
        """
        cached = self.__dict__.get("_request_columns")
        if cached is None:
            cached = (
                np.asarray(
                    [r.timestamp_ms for r in self.requests],
                    dtype=np.float64,
                ),
                np.asarray(
                    [r.cache_node for r in self.requests], dtype=np.int64
                ),
                np.asarray(
                    [r.doc_id for r in self.requests], dtype=np.int64
                ),
            )
            object.__setattr__(self, "_request_columns", cached)
        return cached

    def save(self, request_path: PathLike, update_path: PathLike) -> None:
        """Write both logs to disk (catalog is regenerable from config)."""
        write_request_log(list(self.requests), request_path)
        write_update_log(list(self.updates), update_path)


def generate_workload(
    cache_nodes: Sequence[NodeId],
    config: Optional[WorkloadConfig] = None,
    seed: SeedLike = None,
) -> Workload:
    """Generate a complete Olympics-like workload for the given caches.

    >>> w = generate_workload([1, 2, 3], seed=1)
    >>> w.num_requests > 0
    True
    """
    config = config or WorkloadConfig()
    config.validate()
    rng = spawn_rng(seed)
    catalog = build_catalog(config.documents, seed=rng)
    requests = generate_request_log(cache_nodes, config, rng)
    if not requests:
        raise WorkloadError("generated an empty request log")
    horizon = config.duration_ms or requests[-1].timestamp_ms
    updates = generate_update_log(catalog, config, horizon, rng)
    return Workload(
        catalog=catalog, requests=tuple(requests), updates=tuple(updates)
    )


def load_workload(
    catalog: DocumentCatalog,
    request_path: PathLike,
    update_path: PathLike,
) -> Workload:
    """Rebuild a workload from logs previously written by ``save``."""
    requests = read_request_log(request_path)
    updates = read_update_log(update_path)
    return Workload(
        catalog=catalog, requests=tuple(requests), updates=tuple(updates)
    )
