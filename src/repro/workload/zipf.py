"""Bounded Zipf sampling over a document catalog.

Web request popularity famously follows a Zipf-like law with exponent
around 0.6–1.0; the simulator uses :class:`ZipfSampler` for both the
shared global popularity ranking and per-cache local rankings.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import WorkloadError


class ZipfSampler:
    """Samples ranks from a bounded Zipf(alpha) distribution.

    Rank ``r`` (0-based) has probability proportional to
    ``1 / (r + 1) ** alpha``.  An optional permutation maps ranks to
    item ids, so several samplers can share one popularity law while
    disagreeing on *which* item is popular (per-cache localised
    interest).
    """

    def __init__(
        self,
        n: int,
        alpha: float,
        permutation: Optional[Sequence[int]] = None,
    ) -> None:
        if n < 1:
            raise WorkloadError(f"Zipf needs n >= 1 items, got {n}")
        if alpha <= 0:
            raise WorkloadError(f"Zipf alpha must be > 0, got {alpha}")
        self._n = n
        self._alpha = alpha
        weights = (np.arange(1, n + 1, dtype=float)) ** (-alpha)
        self._probs = weights / weights.sum()
        self._cdf = np.cumsum(self._probs)
        if permutation is None:
            self._perm = np.arange(n)
        else:
            perm = np.asarray(list(permutation), dtype=int)
            if perm.shape != (n,) or set(perm.tolist()) != set(range(n)):
                raise WorkloadError(
                    "permutation must be a rearrangement of range(n)"
                )
            self._perm = perm

    @property
    def n(self) -> int:
        return self._n

    @property
    def alpha(self) -> float:
        return self._alpha

    def probability_of_rank(self, rank: int) -> float:
        """P(sample has popularity rank ``rank``)."""
        if not 0 <= rank < self._n:
            raise WorkloadError(f"rank {rank} out of range [0, {self._n})")
        return float(self._probs[rank])

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` item ids (permuted ranks)."""
        if size < 1:
            raise WorkloadError(f"size must be >= 1, got {size}")
        draws = rng.random(size)
        ranks = np.searchsorted(self._cdf, draws, side="left")
        ranks = np.minimum(ranks, self._n - 1)
        return self._perm[ranks]

    def sample_one(self, rng: np.random.Generator) -> int:
        """Draw a single item id."""
        return int(self.sample(rng, size=1)[0])
