"""Trace record types and the on-disk log format.

The paper's caches "are driven by request-log files, while origin
server reads continuously from an update log file"; we keep the same
file-driven architecture.  Logs are plain text, one record per line:

* request log: ``timestamp_ms <TAB> cache_node <TAB> doc_id``
* update log:  ``timestamp_ms <TAB> doc_id``

Lines starting with ``#`` are comments.  Timestamps must be
non-decreasing within a file.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Sequence, TextIO, Union

from repro.errors import TraceFormatError
from repro.types import DocumentId, NodeId

PathLike = Union[str, Path]


@dataclass(frozen=True, order=True)
class RequestRecord:
    """One client request arriving at an edge cache."""

    timestamp_ms: float
    cache_node: NodeId
    doc_id: DocumentId

    def __post_init__(self) -> None:
        if self.timestamp_ms < 0:
            raise TraceFormatError(
                f"request timestamp must be >= 0, got {self.timestamp_ms}"
            )
        if self.cache_node < 1:
            raise TraceFormatError(
                f"requests must target an edge cache (node >= 1), "
                f"got {self.cache_node}"
            )
        if self.doc_id < 0:
            raise TraceFormatError(f"doc_id must be >= 0, got {self.doc_id}")


@dataclass(frozen=True, order=True)
class UpdateRecord:
    """One origin-side document update."""

    timestamp_ms: float
    doc_id: DocumentId

    def __post_init__(self) -> None:
        if self.timestamp_ms < 0:
            raise TraceFormatError(
                f"update timestamp must be >= 0, got {self.timestamp_ms}"
            )
        if self.doc_id < 0:
            raise TraceFormatError(f"doc_id must be >= 0, got {self.doc_id}")


def write_request_log(records: Sequence[RequestRecord], path: PathLike) -> None:
    """Write a request log; records must be time-sorted."""
    _check_sorted([r.timestamp_ms for r in records], "request")
    with open(path, "w", encoding="utf-8") as f:
        f.write("# repro request log v1: timestamp_ms\tcache_node\tdoc_id\n")
        for r in records:
            # repr() round-trips float64 exactly.
            f.write(f"{r.timestamp_ms!r}\t{r.cache_node}\t{r.doc_id}\n")


def write_update_log(records: Sequence[UpdateRecord], path: PathLike) -> None:
    """Write an update log; records must be time-sorted."""
    _check_sorted([r.timestamp_ms for r in records], "update")
    with open(path, "w", encoding="utf-8") as f:
        f.write("# repro update log v1: timestamp_ms\tdoc_id\n")
        for r in records:
            f.write(f"{r.timestamp_ms!r}\t{r.doc_id}\n")


def read_request_log(path: PathLike) -> List[RequestRecord]:
    """Parse a request log, validating format and time ordering."""
    records: List[RequestRecord] = []
    with open(path, "r", encoding="utf-8") as f:
        for lineno, fields in _data_lines(f):
            if len(fields) != 3:
                raise TraceFormatError(
                    f"{path}:{lineno}: expected 3 fields, got {len(fields)}"
                )
            try:
                record = RequestRecord(
                    timestamp_ms=float(fields[0]),
                    cache_node=int(fields[1]),
                    doc_id=int(fields[2]),
                )
            except ValueError as exc:
                raise TraceFormatError(f"{path}:{lineno}: {exc}") from exc
            records.append(record)
    _check_sorted([r.timestamp_ms for r in records], f"request log {path}")
    return records


def read_update_log(path: PathLike) -> List[UpdateRecord]:
    """Parse an update log, validating format and time ordering."""
    records: List[UpdateRecord] = []
    with open(path, "r", encoding="utf-8") as f:
        for lineno, fields in _data_lines(f):
            if len(fields) != 2:
                raise TraceFormatError(
                    f"{path}:{lineno}: expected 2 fields, got {len(fields)}"
                )
            try:
                record = UpdateRecord(
                    timestamp_ms=float(fields[0]),
                    doc_id=int(fields[1]),
                )
            except ValueError as exc:
                raise TraceFormatError(f"{path}:{lineno}: {exc}") from exc
            records.append(record)
    _check_sorted([r.timestamp_ms for r in records], f"update log {path}")
    return records


def _data_lines(f: TextIO):
    """Yield ``(lineno, fields)`` for non-comment, non-blank lines."""
    for lineno, line in enumerate(f, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        yield lineno, stripped.split("\t")


def _check_sorted(timestamps: Iterable[float], what: str) -> None:
    previous = -float("inf")
    for i, t in enumerate(timestamps):
        if t < previous:
            raise TraceFormatError(
                f"{what} records out of time order at position {i}: "
                f"{t} after {previous}"
            )
        previous = t
