"""Origin-side update-log generation.

The origin "reads continuously from an update log file": a Poisson
stream of updates over the *dynamic* subset of the catalog.  Update
targets are Zipf-distributed over the dynamic documents — on a sports
site the hottest pages (live scores) also change the most, which is the
worst case for caching and exactly the regime the paper studies.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.config import WorkloadConfig
from repro.errors import WorkloadError
from repro.workload.documents import DocumentCatalog
from repro.workload.trace import UpdateRecord
from repro.workload.zipf import ZipfSampler


def generate_update_log(
    catalog: DocumentCatalog,
    config: WorkloadConfig,
    horizon_ms: float,
    rng: np.random.Generator,
) -> List[UpdateRecord]:
    """Generate a time-sorted update log up to ``horizon_ms``.

    Returns an empty list when the catalog has no dynamic documents.
    """
    config.validate()
    if horizon_ms <= 0:
        raise WorkloadError(f"horizon_ms must be > 0, got {horizon_ms}")
    dynamic = catalog.dynamic_ids()
    if not dynamic:
        return []

    sampler = ZipfSampler(len(dynamic), config.zipf_alpha)
    records: List[UpdateRecord] = []
    t = 0.0
    while True:
        t += float(rng.exponential(config.mean_update_interarrival_ms))
        if t > horizon_ms:
            break
        target = dynamic[sampler.sample_one(rng)]
        records.append(UpdateRecord(timestamp_ms=t, doc_id=target))
    return records
