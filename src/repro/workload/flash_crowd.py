"""Flash-crowd workloads: non-homogeneous request arrivals.

The 2000 Olympics site the paper's trace comes from lived on flash
crowds — medal-event moments multiply the request rate for a while.
:func:`generate_flash_crowd_workload` produces a workload whose arrival
*rate* carries a Gaussian burst on top of a steady base:

    rate(t) ∝ 1 + (peak_factor - 1) · exp(-(t - center)² / 2σ²)

Document popularity during the burst narrows to the hottest documents
(everybody loads the same scores page), which is exactly the regime
where group caching and origin offload earn their keep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.config import WorkloadConfig
from repro.errors import WorkloadError
from repro.types import NodeId
from repro.utils.rng import SeedLike, spawn_rng
from repro.workload.documents import build_catalog
from repro.workload.ibm_synthetic import Workload
from repro.workload.trace import RequestRecord
from repro.workload.updates import generate_update_log
from repro.workload.zipf import ZipfSampler


@dataclass(frozen=True)
class FlashCrowdConfig:
    """Shape of the burst.

    ``peak_factor`` is the rate multiplier at the burst's center;
    ``center_fraction``/``width_fraction`` position and size it within
    the workload duration; ``burst_zipf_alpha`` is the (steeper)
    popularity exponent used for requests landing inside the burst.
    """

    peak_factor: float = 6.0
    center_fraction: float = 0.5
    width_fraction: float = 0.08
    burst_zipf_alpha: float = 1.4

    def validate(self) -> None:
        if self.peak_factor < 1.0:
            raise WorkloadError("peak_factor must be >= 1")
        if not 0.0 < self.center_fraction < 1.0:
            raise WorkloadError("center_fraction must be in (0, 1)")
        if not 0.0 < self.width_fraction < 0.5:
            raise WorkloadError("width_fraction must be in (0, 0.5)")
        if self.burst_zipf_alpha <= 0:
            raise WorkloadError("burst_zipf_alpha must be > 0")


def _sample_arrival_times(
    count: int,
    duration_ms: float,
    crowd: FlashCrowdConfig,
    rng: np.random.Generator,
) -> np.ndarray:
    """Inverse-free burst sampling: mixture of uniform + Gaussian.

    The burst contributes mass proportional to its excess rate
    integral; sampling from the mixture reproduces the target rate
    shape without numerical rate inversion.
    """
    center = crowd.center_fraction * duration_ms
    sigma = crowd.width_fraction * duration_ms
    # Excess burst mass relative to base: (f-1) * sigma * sqrt(2*pi)
    excess = (crowd.peak_factor - 1.0) * sigma * np.sqrt(2 * np.pi)
    burst_weight = excess / (duration_ms + excess)

    from_burst = rng.random(count) < burst_weight
    times = np.where(
        from_burst,
        rng.normal(center, sigma, size=count),
        rng.random(count) * duration_ms,
    )
    # Burst tails outside the window fold back to uniform.
    outside = (times < 0) | (times > duration_ms)
    times[outside] = rng.random(int(outside.sum())) * duration_ms
    return np.sort(times)


def generate_flash_crowd_workload(
    cache_nodes: Sequence[NodeId],
    config: Optional[WorkloadConfig] = None,
    crowd: Optional[FlashCrowdConfig] = None,
    duration_ms: float = 60_000.0,
    seed: SeedLike = None,
) -> Workload:
    """Generate a bursty workload over ``cache_nodes``.

    ``config.requests_per_cache`` requests per cache are placed on the
    bursty arrival profile; in-burst requests draw documents from a
    steeper Zipf (the crowd converges on the same hot pages).
    """
    config = config or WorkloadConfig()
    config.validate()
    crowd = crowd or FlashCrowdConfig()
    crowd.validate()
    if duration_ms <= 0:
        raise WorkloadError(f"duration_ms must be > 0, got {duration_ms}")
    cache_nodes = list(cache_nodes)
    if not cache_nodes:
        raise WorkloadError("need at least one cache")

    rng = spawn_rng(seed)
    catalog = build_catalog(config.documents, seed=rng)
    n_docs = config.documents.num_documents
    base_sampler = ZipfSampler(n_docs, config.zipf_alpha)
    burst_sampler = ZipfSampler(n_docs, crowd.burst_zipf_alpha)

    center = crowd.center_fraction * duration_ms
    sigma = crowd.width_fraction * duration_ms

    records: List[RequestRecord] = []
    for cache in cache_nodes:
        local_sampler = ZipfSampler(
            n_docs, config.zipf_alpha, permutation=rng.permutation(n_docs)
        )
        times = _sample_arrival_times(
            config.requests_per_cache, duration_ms, crowd, rng
        )
        in_burst = np.abs(times - center) <= 2 * sigma
        use_global = rng.random(times.size) < config.shared_interest
        burst_docs = burst_sampler.sample(rng, size=times.size)
        base_docs = base_sampler.sample(rng, size=times.size)
        local_docs = local_sampler.sample(rng, size=times.size)
        docs = np.where(
            in_burst, burst_docs, np.where(use_global, base_docs, local_docs)
        )
        for t, doc in zip(times, docs):
            records.append(
                RequestRecord(
                    timestamp_ms=float(t), cache_node=cache, doc_id=int(doc)
                )
            )
    records.sort()
    updates = generate_update_log(catalog, config, duration_ms, rng)
    return Workload(
        catalog=catalog, requests=tuple(records), updates=tuple(updates)
    )


def burst_window(
    crowd: FlashCrowdConfig, duration_ms: float
) -> tuple:
    """The ``(start_ms, end_ms)`` of the ±2σ burst window."""
    crowd.validate()
    center = crowd.center_fraction * duration_ms
    sigma = crowd.width_fraction * duration_ms
    return (max(0.0, center - 2 * sigma), min(duration_ms, center + 2 * sigma))
