"""The :class:`Clustering` result type: a partition of points into K
clusters, with provenance (iterations run, final SSE)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.errors import ClusteringError


@dataclass(frozen=True)
class Clustering:
    """A hard partition of ``n`` points into ``k`` clusters.

    ``labels[i]`` is the cluster index of point ``i``; cluster indices
    are dense in ``[0, k)`` but clusters may be empty (K-means can empty
    a cluster; callers that need non-empty groups re-seed or drop them).
    """

    labels: np.ndarray
    k: int
    centers: np.ndarray = field(repr=False)
    iterations: int = 0
    sse: float = float("nan")

    def __post_init__(self) -> None:
        labels = np.asarray(self.labels, dtype=int)
        if labels.ndim != 1:
            raise ClusteringError("labels must be a 1-D array")
        if self.k < 1:
            raise ClusteringError(f"k must be >= 1, got {self.k}")
        if labels.size and (labels.min() < 0 or labels.max() >= self.k):
            raise ClusteringError(
                f"labels must lie in [0, {self.k}), got range "
                f"[{labels.min()}, {labels.max()}]"
            )
        object.__setattr__(self, "labels", labels)
        labels.setflags(write=False)

    @property
    def num_points(self) -> int:
        return self.labels.size

    def members(self, cluster: int) -> np.ndarray:
        """Point indices belonging to ``cluster``."""
        if not 0 <= cluster < self.k:
            raise ClusteringError(f"cluster {cluster} out of range [0, {self.k})")
        return np.flatnonzero(self.labels == cluster)

    def cluster_sizes(self) -> np.ndarray:
        """Size of each cluster, indexed by cluster id."""
        return np.bincount(self.labels, minlength=self.k)

    def non_empty_clusters(self) -> List[int]:
        """Cluster ids that contain at least one point."""
        return [c for c, size in enumerate(self.cluster_sizes()) if size > 0]

    def as_groups(self) -> List[Tuple[int, ...]]:
        """Clusters as tuples of point indices (empty clusters omitted)."""
        return [
            tuple(int(i) for i in self.members(c))
            for c in self.non_empty_clusters()
        ]
