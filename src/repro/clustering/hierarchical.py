"""Agglomerative hierarchical clustering (extension baseline).

The paper notes "any standard clustering algorithm may be similarly
modified"; complete-linkage agglomerative clustering is the natural
alternative to K-means for cache grouping because it directly bounds
each group's *diameter* — the quantity GICost averages.  It works on a
dissimilarity matrix (measured RTTs or feature-space distances), via
``scipy.cluster.hierarchy``.
"""

from __future__ import annotations

import numpy as np
from scipy.cluster import hierarchy
from scipy.spatial.distance import squareform

from repro.clustering.assignments import Clustering
from repro.errors import ClusteringError

_LINKAGES = ("complete", "average", "single")


class HierarchicalClustering:
    """Cut an agglomerative dendrogram into K clusters."""

    def __init__(self, k: int, linkage: str = "complete") -> None:
        if k < 1:
            raise ClusteringError(f"k must be >= 1, got {k}")
        if linkage not in _LINKAGES:
            raise ClusteringError(
                f"unknown linkage {linkage!r}; known: {', '.join(_LINKAGES)}"
            )
        self._k = k
        self._linkage = linkage

    @property
    def k(self) -> int:
        return self._k

    @property
    def linkage(self) -> str:
        return self._linkage

    def fit(self, dissimilarity: np.ndarray) -> Clustering:
        """Cluster on an ``(n, n)`` symmetric dissimilarity matrix.

        Deterministic (no seed needed): agglomeration order is fixed by
        the matrix.
        """
        d = np.asarray(dissimilarity, dtype=float)
        if d.ndim != 2 or d.shape[0] != d.shape[1]:
            raise ClusteringError(
                f"dissimilarity must be square, got {d.shape}"
            )
        n = d.shape[0]
        if self._k > n:
            raise ClusteringError(f"k={self._k} exceeds {n} points")
        if np.any(d < 0):
            raise ClusteringError("dissimilarities cannot be negative")
        if not np.allclose(d, d.T, atol=1e-9):
            raise ClusteringError("dissimilarity matrix must be symmetric")

        if n == 1:
            labels = np.zeros(1, dtype=int)
        else:
            condensed = squareform(d, checks=False)
            tree = hierarchy.linkage(condensed, method=self._linkage)
            labels = hierarchy.fcluster(tree, t=self._k, criterion="maxclust")
            labels = np.asarray(labels, dtype=int) - 1  # 1-based -> 0-based
        actual_k = int(labels.max()) + 1
        # fcluster can return fewer clusters than requested for tied
        # dendrograms; report the k actually produced.
        cost = _diameter_sum(d, labels, actual_k)
        centers = np.zeros((actual_k, 1))
        return Clustering(
            labels=labels, k=actual_k, centers=centers,
            iterations=0, sse=cost,
        )


def _diameter_sum(d: np.ndarray, labels: np.ndarray, k: int) -> float:
    """Sum of cluster diameters (complete-linkage's objective proxy)."""
    total = 0.0
    for cluster in range(k):
        members = np.flatnonzero(labels == cluster)
        if members.size >= 2:
            block = d[np.ix_(members, members)]
            total += float(block.max())
    return total
