"""K-medoids (PAM-style) clustering — an extension baseline.

Not in the paper; included because the paper notes "any standard
clustering algorithm may be similarly modified".  K-medoids works
directly on a dissimilarity matrix, so it can cluster on *measured RTTs*
without a feature-space detour — the ablation benches use it to bound
how much accuracy the feature-vector indirection costs.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.assignments import Clustering
from repro.errors import ClusteringError
from repro.utils.rng import SeedLike, spawn_rng


class KMedoids:
    """Alternating k-medoids over a precomputed dissimilarity matrix."""

    def __init__(self, k: int, max_iterations: int = 100) -> None:
        if k < 1:
            raise ClusteringError(f"k must be >= 1, got {k}")
        if max_iterations < 1:
            raise ClusteringError("max_iterations must be >= 1")
        self._k = k
        self._max_iterations = max_iterations

    @property
    def k(self) -> int:
        return self._k

    def fit(self, dissimilarity: np.ndarray, seed: SeedLike = None) -> Clustering:
        """Cluster on an ``(n, n)`` symmetric dissimilarity matrix."""
        d = np.asarray(dissimilarity, dtype=float)
        if d.ndim != 2 or d.shape[0] != d.shape[1]:
            raise ClusteringError(f"dissimilarity must be square, got {d.shape}")
        n = d.shape[0]
        if self._k > n:
            raise ClusteringError(f"k={self._k} exceeds {n} points")
        if np.any(d < 0):
            raise ClusteringError("dissimilarities cannot be negative")

        rng = spawn_rng(seed)
        medoids = rng.choice(n, size=self._k, replace=False)
        labels = np.argmin(d[:, medoids], axis=1)

        iterations = 0
        for iterations in range(1, self._max_iterations + 1):
            new_medoids = medoids.copy()
            for cluster in range(self._k):
                members = np.flatnonzero(labels == cluster)
                if members.size == 0:
                    continue
                # The member minimising total intra-cluster dissimilarity.
                costs = d[np.ix_(members, members)].sum(axis=1)
                new_medoids[cluster] = members[int(np.argmin(costs))]
            new_labels = np.argmin(d[:, new_medoids], axis=1)
            changed = not np.array_equal(new_medoids, medoids)
            medoids, labels = new_medoids, new_labels
            if not changed:
                break

        centers = d[medoids][:, medoids]  # placeholder center summary
        cost = float(d[np.arange(n), medoids[labels]].sum())
        return Clustering(
            labels=labels, k=self._k, centers=centers,
            iterations=iterations, sse=cost,
        )
