"""K-means clustering over feature vectors (paper Section 3.3).

The paper's three phases map directly:

* *Initialization Phase* — a :class:`CenterInitializer` picks K caches
  as cluster centers and every other cache joins its nearest center;
* *Iterative Phase* — recompute mean vectors, reassign caches to the
  nearest new center, repeat "until the number of caches that were
  reassigned in the current iteration becomes minimal" (we stop at
  ``reassignment_tolerance``, default 0, or ``max_iterations``);
* *Termination Phase* — the final labels become cache groups (handled
  by :mod:`repro.core.groups`).

Distances are L2 in feature space.  Empty clusters are re-seeded with
the point farthest from its current center, a standard remedy that
keeps K groups alive as the paper's figures assume.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config import KMeansConfig
from repro.clustering.assignments import Clustering
from repro.clustering.init import CenterInitializer, UniformRandomInit
from repro.errors import ClusteringError
from repro.obs.profiling import phase_timer
from repro.utils.rng import SeedLike, spawn_rng


class KMeans:
    """Lloyd's K-means with pluggable initialization.

    >>> import numpy as np
    >>> points = np.array([[0.0], [0.1], [5.0], [5.1]])
    >>> result = KMeans(k=2).fit(points, seed=1)
    >>> sorted(result.cluster_sizes().tolist())
    [2, 2]
    """

    def __init__(
        self,
        k: int,
        config: Optional[KMeansConfig] = None,
        initializer: Optional[CenterInitializer] = None,
    ) -> None:
        if k < 1:
            raise ClusteringError(f"k must be >= 1, got {k}")
        self._k = k
        self._config = config or KMeansConfig()
        self._config.validate()
        self._initializer = initializer or UniformRandomInit()

    @property
    def k(self) -> int:
        return self._k

    @property
    def initializer(self) -> CenterInitializer:
        return self._initializer

    def fit(self, points: np.ndarray, seed: SeedLike = None) -> Clustering:
        """Cluster ``points`` (an ``(n, d)`` array) into K groups.

        With ``restarts > 1`` the best run (lowest SSE) wins; all
        restarts share the one ``seed``-derived generator so results stay
        reproducible.
        """
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ClusteringError(
                f"points must be a non-empty (n, d) array, got {points.shape}"
            )
        if self._k > points.shape[0]:
            raise ClusteringError(
                f"k={self._k} exceeds the number of points {points.shape[0]}"
            )
        rng = spawn_rng(seed)
        best: Optional[Clustering] = None
        with phase_timer("cluster/kmeans"):
            for _ in range(self._config.restarts):
                candidate = self._fit_once(points, rng)
                if best is None or candidate.sse < best.sse:
                    best = candidate
        assert best is not None  # restarts >= 1
        return best

    def _fit_once(
        self, points: np.ndarray, rng: np.random.Generator
    ) -> Clustering:
        center_idx = self._initializer.choose(points, self._k, rng)
        centers = points[center_idx].copy()
        labels = _nearest_center(points, centers)

        iterations = 0
        for iterations in range(1, self._config.max_iterations + 1):
            centers = _recompute_centers(points, labels, centers, self._k)
            new_labels = _nearest_center(points, centers)
            reassigned = int((new_labels != labels).sum())
            labels = new_labels
            if reassigned <= self._config.reassignment_tolerance:
                break

        labels, centers = _fix_empty_clusters(points, labels, centers, self._k)
        sse = _sse(points, labels, centers)
        return Clustering(
            labels=labels, k=self._k, centers=centers,
            iterations=iterations, sse=sse,
        )


def _nearest_center(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Label each point with the index of its nearest (L2) center."""
    # (n, k) squared distances without materialising (n, k, d).
    p_sq = (points**2).sum(axis=1)[:, None]
    c_sq = (centers**2).sum(axis=1)[None, :]
    cross = points @ centers.T
    dist_sq = p_sq + c_sq - 2.0 * cross
    return np.argmin(dist_sq, axis=1)


def _recompute_centers(
    points: np.ndarray,
    labels: np.ndarray,
    old_centers: np.ndarray,
    k: int,
) -> np.ndarray:
    """Mean vector per cluster; empty clusters keep their old center."""
    centers = old_centers.copy()
    for cluster in range(k):
        mask = labels == cluster
        if mask.any():
            centers[cluster] = points[mask].mean(axis=0)
    return centers


def _fix_empty_clusters(
    points: np.ndarray,
    labels: np.ndarray,
    centers: np.ndarray,
    k: int,
) -> tuple:
    """Re-seed each empty cluster with the point farthest from its center."""
    labels = labels.copy()
    centers = centers.copy()
    sizes = np.bincount(labels, minlength=k)
    for cluster in range(k):
        if sizes[cluster] > 0:
            continue
        residuals = np.linalg.norm(points - centers[labels], axis=1)
        # Only points from clusters with >= 2 members may move.
        movable = sizes[labels] >= 2
        if not movable.any():
            continue  # degenerate: fewer distinct points than clusters
        residuals = np.where(movable, residuals, -np.inf)
        victim = int(np.argmax(residuals))
        sizes[labels[victim]] -= 1
        labels[victim] = cluster
        sizes[cluster] += 1
        centers[cluster] = points[victim]
    return labels, centers


def _sse(points: np.ndarray, labels: np.ndarray, centers: np.ndarray) -> float:
    """Sum of squared L2 distances of points to their cluster centers."""
    residuals = points - centers[labels]
    return float((residuals**2).sum())
