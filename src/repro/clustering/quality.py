"""Cluster-quality measures.

``mean_intra_cluster_distance`` over the *ground-truth* RTT matrix is
exactly the paper's clustering-accuracy proxy (the average group
interaction cost lives in :mod:`repro.analysis.gicost`; this module
holds the generic geometry variants used by unit tests and ablations).
"""

from __future__ import annotations

import numpy as np

from repro.clustering.assignments import Clustering
from repro.errors import ClusteringError


def within_cluster_sse(points: np.ndarray, clustering: Clustering) -> float:
    """Sum of squared distances of points to their cluster mean."""
    points = np.asarray(points, dtype=float)
    _check_sizes(points.shape[0], clustering)
    total = 0.0
    for cluster in clustering.non_empty_clusters():
        members = clustering.members(cluster)
        center = points[members].mean(axis=0)
        total += float(((points[members] - center) ** 2).sum())
    return total


def mean_intra_cluster_distance(
    dissimilarity: np.ndarray, clustering: Clustering
) -> float:
    """Mean of per-cluster average pairwise dissimilarities.

    Per the paper's definition of average group interaction cost: first
    average within each group (over all pairs), then average over groups.
    Singleton clusters contribute 0 (no pairs, no interaction cost).
    """
    d = np.asarray(dissimilarity, dtype=float)
    _check_sizes(d.shape[0], clustering)
    per_cluster = []
    for cluster in clustering.non_empty_clusters():
        members = clustering.members(cluster)
        m = members.size
        if m < 2:
            per_cluster.append(0.0)
            continue
        block = d[np.ix_(members, members)]
        # Sum of strict upper triangle over the pair count.
        pair_sum = float(np.triu(block, k=1).sum())
        per_cluster.append(pair_sum / (m * (m - 1) / 2))
    if not per_cluster:
        raise ClusteringError("clustering has no non-empty clusters")
    return float(np.mean(per_cluster))


def silhouette_score(dissimilarity: np.ndarray, clustering: Clustering) -> float:
    """Mean silhouette coefficient over all points (extension metric).

    Points in singleton clusters score 0 by convention.  Requires at
    least 2 non-empty clusters.
    """
    d = np.asarray(dissimilarity, dtype=float)
    n = d.shape[0]
    _check_sizes(n, clustering)
    clusters = clustering.non_empty_clusters()
    if len(clusters) < 2:
        raise ClusteringError("silhouette needs >= 2 non-empty clusters")

    members_of = {c: clustering.members(c) for c in clusters}
    scores = np.zeros(n, dtype=float)
    for i in range(n):
        own = int(clustering.labels[i])
        own_members = members_of[own]
        if own_members.size <= 1:
            scores[i] = 0.0
            continue
        a = float(d[i, own_members].sum() / (own_members.size - 1))
        b = min(
            float(d[i, members_of[other]].mean())
            for other in clusters
            if other != own
        )
        denom = max(a, b)
        scores[i] = 0.0 if denom == 0 else (b - a) / denom
    return float(scores.mean())


def _check_sizes(n_points: int, clustering: Clustering) -> None:
    if clustering.num_points != n_points:
        raise ClusteringError(
            f"clustering covers {clustering.num_points} points, data has "
            f"{n_points}"
        )
