"""K-means center initializers.

The difference between the paper's SL and SDSL schemes is *entirely*
here: SL picks initial centers uniformly at random, SDSL biases the
pick towards caches close to the origin server with
``Pr(Ec_j) ∝ 1 / Dist(Ec_j, Os)^θ`` (paper Section 4.1).  K-means++ is
provided as a modern extension baseline for the ablation benches.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import ClusteringError


class CenterInitializer(abc.ABC):
    """Strategy interface: choose K initial centers from the points."""

    name: str = "abstract"

    @abc.abstractmethod
    def choose(
        self,
        points: np.ndarray,
        k: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Return indices of ``k`` distinct points to seed the clusters."""

    @staticmethod
    def _check(points: np.ndarray, k: int) -> None:
        if points.ndim != 2:
            raise ClusteringError("points must be an (n, d) array")
        n = points.shape[0]
        if not 1 <= k <= n:
            raise ClusteringError(
                f"k must be in [1, {n}] (number of points), got {k}"
            )


class UniformRandomInit(CenterInitializer):
    """Uniform random centers — the plain SL scheme's initialization.

    Matches the paper's requirement that "any cache may be selected to
    an initial cluster center with equal probability" while "ensuring
    that all regions of the edge cache network are represented": we draw
    without replacement, so K distinct caches always seed K clusters.
    """

    name = "uniform"

    def choose(
        self,
        points: np.ndarray,
        k: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        self._check(points, k)
        return rng.choice(points.shape[0], size=k, replace=False)


class ServerDistanceBiasedInit(CenterInitializer):
    """SDSL initialization: ``Pr(point j) ∝ 1 / server_distance[j]^θ``.

    ``server_distances[j]`` must give the RTT from point ``j`` (a cache)
    to the origin server.  θ = 0 reduces exactly to uniform sampling;
    larger θ concentrates centers near the origin, which yields compact
    groups there and progressively larger groups farther away.
    """

    name = "sdsl"

    def __init__(self, server_distances: np.ndarray, theta: float = 1.0) -> None:
        server_distances = np.asarray(server_distances, dtype=float)
        if server_distances.ndim != 1:
            raise ClusteringError("server_distances must be 1-D")
        if np.any(server_distances < 0):
            raise ClusteringError("server distances cannot be negative")
        if theta < 0:
            raise ClusteringError(f"theta must be >= 0, got {theta}")
        self._distances = server_distances
        self._theta = theta

    @property
    def theta(self) -> float:
        return self._theta

    def selection_probabilities(self) -> np.ndarray:
        """The normalised per-point selection probabilities."""
        # Guard zero distances (a cache co-located with the origin):
        # clamp to the smallest positive distance so it ties with the
        # nearest cache instead of getting infinite weight.
        dist = self._distances.copy()
        positive = dist[dist > 0]
        floor = float(positive.min()) if positive.size else 1.0
        dist = np.maximum(dist, floor)
        # Compute d^-theta in log space and shift by the maximum so the
        # exponentials cannot overflow even for extreme distance ratios.
        log_weights = -self._theta * np.log(dist)
        log_weights -= log_weights.max()
        weights = np.exp(log_weights)
        total = weights.sum()
        if not np.isfinite(total) or total <= 0:
            raise ClusteringError(
                "degenerate SDSL weights; check server distances and theta"
            )
        return weights / total

    def choose(
        self,
        points: np.ndarray,
        k: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        self._check(points, k)
        if self._distances.shape[0] != points.shape[0]:
            raise ClusteringError(
                f"server_distances covers {self._distances.shape[0]} points "
                f"but clustering {points.shape[0]}"
            )
        probs = self.selection_probabilities()
        return rng.choice(points.shape[0], size=k, replace=False, p=probs)


class KMeansPlusPlusInit(CenterInitializer):
    """k-means++ seeding (extension; not in the paper).

    Included for ablation benches: the paper predates k-means++, and the
    comparison shows how much of SDSL's benefit is *distance-to-server*
    information rather than merely better-spread seeds.
    """

    name = "kmeans++"

    def choose(
        self,
        points: np.ndarray,
        k: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        self._check(points, k)
        n = points.shape[0]
        chosen = [int(rng.integers(n))]
        closest_sq = ((points - points[chosen[0]]) ** 2).sum(axis=1)
        while len(chosen) < k:
            total = closest_sq.sum()
            if total <= 0:
                # All remaining points coincide with a center; fall back
                # to uniform choice among the unchosen.
                remaining = np.setdiff1d(np.arange(n), np.asarray(chosen))
                pick = int(remaining[int(rng.integers(remaining.size))])
            else:
                probs = closest_sq / total
                pick = int(rng.choice(n, p=probs))
                if pick in chosen:
                    remaining = np.setdiff1d(np.arange(n), np.asarray(chosen))
                    pick = int(remaining[int(rng.integers(remaining.size))])
            chosen.append(pick)
            dist_sq = ((points - points[pick]) ** 2).sum(axis=1)
            closest_sq = np.minimum(closest_sq, dist_sq)
        return np.asarray(chosen, dtype=int)
