"""Clustering algorithms — SL step 3 and the SDSL variant.

* :mod:`repro.clustering.kmeans` — the K-means algorithm with pluggable
  initialization (paper Section 3.3);
* :mod:`repro.clustering.init` — center initializers: uniform random
  (SL), server-distance-biased (SDSL, ``Pr ∝ 1/d^θ``), and k-means++
  (extension);
* :mod:`repro.clustering.kmedoids` — a k-medoids baseline (extension);
* :mod:`repro.clustering.quality` — within-cluster quality measures.
"""

from repro.clustering.assignments import Clustering
from repro.clustering.init import (
    CenterInitializer,
    KMeansPlusPlusInit,
    ServerDistanceBiasedInit,
    UniformRandomInit,
)
from repro.clustering.hierarchical import HierarchicalClustering
from repro.clustering.kmeans import KMeans
from repro.clustering.kmedoids import KMedoids
from repro.clustering.quality import (
    mean_intra_cluster_distance,
    silhouette_score,
    within_cluster_sse,
)

__all__ = [
    "Clustering",
    "CenterInitializer",
    "UniformRandomInit",
    "ServerDistanceBiasedInit",
    "KMeansPlusPlusInit",
    "KMeans",
    "KMedoids",
    "HierarchicalClustering",
    "within_cluster_sse",
    "mean_intra_cluster_distance",
    "silhouette_score",
]
