"""Client populations: hosts on stub routers with RTTs to every cache.

Clients live in access networks, so they are placed on stub routers
(possibly sharing routers — residential clients are many).  The
population's RTT matrix to the network nodes is computed once via the
same shortest-path machinery the node placement uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import PlacementError
from repro.topology.distance import compute_rtt_matrix
from repro.topology.graph import RouterTier
from repro.topology.network import EdgeCacheNetwork
from repro.types import NodeId, RouterId
from repro.utils.rng import SeedLike, spawn_rng


@dataclass(frozen=True)
class ClientPopulation:
    """M clients with ground-truth RTTs to the network's nodes.

    ``rtt_to_nodes[c, n]`` is client ``c``'s RTT to network node ``n``
    (column 0 = origin, columns 1.. = caches, matching node ids).
    """

    client_routers: Tuple[RouterId, ...]
    rtt_to_nodes: np.ndarray

    def __post_init__(self) -> None:
        if self.rtt_to_nodes.ndim != 2:
            raise PlacementError("rtt_to_nodes must be 2-D")
        if self.rtt_to_nodes.shape[0] != len(self.client_routers):
            raise PlacementError(
                f"{self.rtt_to_nodes.shape[0]} RTT rows for "
                f"{len(self.client_routers)} clients"
            )
        self.rtt_to_nodes.setflags(write=False)

    @property
    def num_clients(self) -> int:
        return len(self.client_routers)

    @property
    def num_nodes(self) -> int:
        return self.rtt_to_nodes.shape[1]

    def rtt_to_cache(self, client: int, cache: NodeId) -> float:
        """RTT from one client to one cache node."""
        self._check_client(client)
        if not 1 <= cache < self.num_nodes:
            raise PlacementError(f"node {cache} is not a cache")
        return float(self.rtt_to_nodes[client, cache])

    def nearest_cache(self, client: int) -> NodeId:
        """The cache with the smallest RTT from this client."""
        self._check_client(client)
        return int(np.argmin(self.rtt_to_nodes[client, 1:])) + 1

    def nearest_caches(self, client: int, count: int) -> List[NodeId]:
        """The ``count`` caches nearest this client, nearest first."""
        self._check_client(client)
        num_caches = self.num_nodes - 1
        if not 1 <= count <= num_caches:
            raise PlacementError(
                f"count must be in [1, {num_caches}], got {count}"
            )
        order = np.argsort(self.rtt_to_nodes[client, 1:], kind="stable")
        return [int(i) + 1 for i in order[:count]]

    def _check_client(self, client: int) -> None:
        if not 0 <= client < self.num_clients:
            raise PlacementError(
                f"client {client} out of range [0, {self.num_clients})"
            )


def place_clients(
    network: EdgeCacheNetwork,
    num_clients: int,
    seed: SeedLike = None,
) -> ClientPopulation:
    """Place ``num_clients`` on the network's stub routers (with reuse).

    Requires a network built with its topology graph attached
    (:func:`repro.topology.build_network` does this; a network loaded
    from a distance-matrix archive cannot place clients).
    """
    if num_clients < 1:
        raise PlacementError(f"num_clients must be >= 1, got {num_clients}")
    if network.graph is None or network.placement is None:
        raise PlacementError(
            "client placement needs the topology graph; this network "
            "carries only a distance matrix"
        )
    rng = spawn_rng(seed)
    stubs = network.graph.routers_in_tier(RouterTier.STUB)
    if not stubs:
        raise PlacementError("topology has no stub routers for clients")
    picks = rng.integers(len(stubs), size=num_clients)
    client_routers = tuple(int(stubs[int(i)]) for i in picks)

    node_routers = network.placement.node_routers
    combined = compute_rtt_matrix(
        network.graph, [*node_routers, *client_routers]
    )
    node_count = len(node_routers)
    block = combined.as_array()[node_count:, :node_count]
    return ClientPopulation(
        client_routers=client_routers, rtt_to_nodes=block.copy()
    )
