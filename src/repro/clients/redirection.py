"""Client→cache redirection policies.

Redirection decides which edge cache serves each client:

* ``"nearest"`` — lowest-RTT cache (ideal DNS/anycast);
* ``"nearest-k"`` — uniform among the client's ``k`` nearest caches
  (models load-spreading and imperfect geo-mapping);
* ``"random"`` — uniform over all caches (the degenerate baseline).
"""

from __future__ import annotations

import numpy as np

from repro.clients.population import ClientPopulation
from repro.errors import PlacementError
from repro.utils.rng import SeedLike, spawn_rng

POLICIES = ("nearest", "nearest-k", "random")


def assign_clients(
    population: ClientPopulation,
    policy: str = "nearest",
    k: int = 3,
    seed: SeedLike = None,
) -> np.ndarray:
    """Return one cache node id per client.

    ``k`` applies only to the ``"nearest-k"`` policy.
    """
    if policy not in POLICIES:
        raise PlacementError(
            f"unknown redirection policy {policy!r}; "
            f"known: {', '.join(POLICIES)}"
        )
    rng = spawn_rng(seed)
    num_caches = population.num_nodes - 1
    assignment = np.empty(population.num_clients, dtype=int)

    if policy == "nearest":
        for client in range(population.num_clients):
            assignment[client] = population.nearest_cache(client)
    elif policy == "nearest-k":
        if not 1 <= k <= num_caches:
            raise PlacementError(
                f"k must be in [1, {num_caches}], got {k}"
            )
        for client in range(population.num_clients):
            candidates = population.nearest_caches(client, k)
            assignment[client] = candidates[int(rng.integers(len(candidates)))]
    else:  # random
        assignment[:] = rng.integers(1, num_caches + 1,
                                     size=population.num_clients)
    return assignment


def mean_access_rtt(
    population: ClientPopulation, assignment: np.ndarray
) -> float:
    """Mean client→assigned-cache RTT (the redirection quality metric)."""
    assignment = np.asarray(assignment, dtype=int)
    if assignment.shape != (population.num_clients,):
        raise PlacementError(
            f"assignment covers {assignment.shape} clients, population "
            f"has {population.num_clients}"
        )
    rtts = [
        population.rtt_to_cache(client, int(assignment[client]))
        for client in range(population.num_clients)
    ]
    return float(np.mean(rtts))
