"""Client-level request streams and client-perceived latency.

Each client issues its own Poisson request stream (same Zipf
shared/local interest mix as the cache-level generator, but the "local"
permutation is per *client*); redirection folds the streams into the
cache-level request log the simulator consumes, while remembering each
cache's client access-RTT profile.  After simulation,
:func:`client_perceived_latency` combines

    perceived = access RTT (client -> cache) + edge cache latency

weighted by each cache's counted request volume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.clients.population import ClientPopulation
from repro.config import WorkloadConfig
from repro.errors import WorkloadError
from repro.simulator.runner import SimulationResult
from repro.types import NodeId
from repro.utils.rng import SeedLike, spawn_rng
from repro.utils.stats import OnlineStats
from repro.workload.documents import build_catalog
from repro.workload.ibm_synthetic import Workload
from repro.workload.trace import RequestRecord
from repro.workload.zipf import ZipfSampler


@dataclass(frozen=True)
class ClientWorkload:
    """A cache-level workload plus per-cache client access-RTT stats."""

    workload: Workload
    #: per cache node: OnlineStats of the access RTTs of the requests
    #: that were folded into that cache's stream
    access_rtt: Dict[NodeId, OnlineStats] = field(repr=False)

    def mean_access_rtt(self, cache: NodeId) -> float:
        stats = self.access_rtt.get(cache)
        if stats is None or stats.count == 0:
            raise WorkloadError(f"no client requests reached cache {cache}")
        return stats.mean


def generate_client_workload(
    population: ClientPopulation,
    assignment: np.ndarray,
    config: Optional[WorkloadConfig] = None,
    requests_per_client: int = 30,
    seed: SeedLike = None,
) -> ClientWorkload:
    """Generate per-client streams and fold them into a cache workload."""
    config = config or WorkloadConfig()
    config.validate()
    if requests_per_client < 1:
        raise WorkloadError(
            f"requests_per_client must be >= 1, got {requests_per_client}"
        )
    assignment = np.asarray(assignment, dtype=int)
    if assignment.shape != (population.num_clients,):
        raise WorkloadError(
            f"assignment covers {assignment.shape}, population has "
            f"{population.num_clients} clients"
        )
    rng = spawn_rng(seed)
    catalog = build_catalog(config.documents, seed=rng)
    n_docs = config.documents.num_documents
    global_sampler = ZipfSampler(n_docs, config.zipf_alpha)

    records = []
    access_rtt: Dict[NodeId, OnlineStats] = {}
    for client in range(population.num_clients):
        cache = int(assignment[client])
        rtt = population.rtt_to_cache(client, cache)
        local_sampler = ZipfSampler(
            n_docs, config.zipf_alpha, permutation=rng.permutation(n_docs)
        )
        gaps = rng.exponential(
            config.mean_interarrival_ms, size=requests_per_client
        )
        times = np.cumsum(gaps)
        use_global = rng.random(requests_per_client) < config.shared_interest
        docs = np.where(
            use_global,
            global_sampler.sample(rng, size=requests_per_client),
            local_sampler.sample(rng, size=requests_per_client),
        )
        stats = access_rtt.setdefault(cache, OnlineStats())
        for t, doc in zip(times, docs):
            # The request reaches the cache after the one-way access trip.
            records.append(
                RequestRecord(
                    timestamp_ms=float(t + rtt / 2.0),
                    cache_node=cache,
                    doc_id=int(doc),
                )
            )
            stats.add(rtt)
    if not records:
        raise WorkloadError("no client requests generated")
    records.sort()

    from repro.workload.updates import generate_update_log

    horizon = records[-1].timestamp_ms
    updates = generate_update_log(catalog, config, horizon, rng)
    workload = Workload(
        catalog=catalog, requests=tuple(records), updates=tuple(updates)
    )
    return ClientWorkload(workload=workload, access_rtt=access_rtt)


def client_perceived_latency(
    result: SimulationResult,
    client_workload: ClientWorkload,
) -> float:
    """Request-weighted mean of (access RTT + edge cache latency).

    First-order composition: each cache contributes its mean access RTT
    plus its mean edge latency, weighted by its counted request volume.
    (Exact per-request composition would need request-to-client joins
    the simulator deliberately does not track.)
    """
    total_weight = 0
    total = 0.0
    for cache, access in client_workload.access_rtt.items():
        stats = result.metrics.cache_stats(cache)
        if stats.latency.count == 0:
            continue
        weight = stats.latency.count
        total += (stats.latency.mean + access.mean) * weight
        total_weight += weight
    if total_weight == 0:
        raise WorkloadError("no counted requests to aggregate")
    return total / total_weight
