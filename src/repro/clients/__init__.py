"""Client-side substrate: populations, redirection, perceived latency.

The paper measures latency from the moment a request *arrives at an
edge cache*.  A full CDN also decides which cache each client reaches
(DNS/anycast redirection), and the client pays the access RTT on top.
This package models that last hop:

* :mod:`repro.clients.population` — place client hosts on the topology
  and compute their RTTs to every cache;
* :mod:`repro.clients.redirection` — client→cache assignment policies
  (nearest, random, load-spread nearest-k);
* :mod:`repro.clients.workload` — per-client request streams folded
  into the simulator's cache-level request log, plus the access-RTT
  bookkeeping needed to report *client-perceived* latency.
"""

from repro.clients.population import ClientPopulation, place_clients
from repro.clients.redirection import assign_clients
from repro.clients.workload import (
    ClientWorkload,
    client_perceived_latency,
    generate_client_workload,
)

__all__ = [
    "ClientPopulation",
    "place_clients",
    "assign_clients",
    "ClientWorkload",
    "generate_client_workload",
    "client_perceived_latency",
]
