"""Opt-in runtime instrumentation behind the ``sanitize()`` context.

Nothing in this module is imported by the runtime's hot paths:
``repro.utils.rng`` and ``repro.simulator.events`` do not know the
sanitizer exists, so a run without ``sanitize()`` pays exactly zero
overhead.  Entering the context installs the instrumentation by
patching, and leaving restores every original:

* ``RngFactory.stream`` — the returned generator is replaced (in the
  factory's stream cache, so it stays identity-stable) by a
  :class:`np.random.Generator` subclass sharing the *same*
  ``BitGenerator``.  Draws are bit-identical to the uninstrumented run;
  each draw additionally folds a digest into the ledger under the
  site fingerprint ``module:qualname#label`` of the code that first
  acquired the stream.
* ``RngFactory.fork`` — records one ledger event per fork, so label
  drift in a sweep shows up as a site mismatch, not just downstream.
* ``EventQueue.pop`` / ``drain_sorted`` — every popped simulation event
  folds ``(event type, timestamp)`` into a per-phase hash, catching
  event-order divergence independently of RNG draws.
* ``TestbedCache.get_or_build`` — recording is *suspended* inside cache
  builds: a serial run builds each testbed once and reuses it, while
  every pool worker may rebuild it, so build-time draws legitimately
  differ between equivalent runs and must not enter the ledger.
* the task scheduler's ledger hook — each work unit records into a
  fresh segment (under the phase ``"task"``, both inline and pooled)
  and the parent folds segments back **in task order**, which the
  rolling hash makes equivalent to serial recording.

``sanitize()`` does not nest and is not thread-safe — it guards one
run at a time, which is how the CLI and CI use it.
"""

from __future__ import annotations

import sys
import zlib
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.sanitize.ledger import _POLY, Ledger, value_digest

#: The active sanitizer, or None.  Module-global (not a ContextVar):
#: instrumented code checks it on every draw, and fork-started pool
#: workers inherit it with the rest of the module state.
_ACTIVE: Optional["SanitizerState"] = None

#: Frames from these modules never become site fingerprints.
_SKIP_MODULE_PREFIXES = ("repro.sanitize", "repro.utils.rng")

#: Stack frames of context kept per site.
_STACK_DEPTH = 4

#: Generator methods that consume bits and therefore get recorded.
_DRAW_METHODS = (
    "random", "uniform", "integers", "choice", "normal",
    "standard_normal", "exponential", "poisson", "lognormal", "gamma",
    "beta", "binomial", "geometric", "zipf", "pareto", "triangular",
    "shuffle", "permutation", "permuted", "multivariate_normal",
    "standard_exponential", "standard_gamma", "standard_cauchy",
    "standard_t", "chisquare", "dirichlet", "multinomial", "vonmises",
    "wald", "weibull", "laplace", "logistic", "rayleigh", "power",
    "gumbel", "f", "hypergeometric", "negative_binomial",
    "noncentral_chisquare", "noncentral_f", "logseries", "bytes",
)

#: Site used for event-queue pops (one per phase; events carry no label).
EVENT_SITE = "repro.simulator.events:EventQueue.pop#event"


class SanitizeError(RuntimeError):
    """Misuse of the sanitizer (nesting, diffing incompatible ledgers)."""


def active_state() -> Optional["SanitizerState"]:
    """The sanitizer currently recording, if any."""
    return _ACTIVE


def _caller_site() -> Tuple[str, Tuple[str, ...]]:
    """Fingerprint + short stack of the first frame outside plumbing."""
    frame = sys._getframe(1)
    stack: List[str] = []
    fingerprint: Optional[str] = None
    while frame is not None and len(stack) < _STACK_DEPTH:
        module = frame.f_globals.get("__name__", "?")
        skip = any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in _SKIP_MODULE_PREFIXES
        )
        if not skip:
            qualname = getattr(
                frame.f_code, "co_qualname", frame.f_code.co_name
            )
            if fingerprint is None:
                fingerprint = f"{module}:{qualname}"
            stack.append(f"{module}:{qualname}:{frame.f_lineno}")
        frame = frame.f_back
    return fingerprint or "<unknown>", tuple(stack)


#: ``type name -> crc32(name)`` cache for the per-event fast path.
_TYPE_CRC: Dict[str, int] = {}

_HASH_MASK = (1 << 64) - 1


class SanitizerState:
    """Ledger, phase stack, and capture plumbing for one sanitized run."""

    def __init__(self, meta: Optional[Dict[str, Any]] = None) -> None:
        self.ledger = Ledger(meta=meta)
        self._target = self.ledger
        self._phases: List[str] = []
        self._phase_str = "main"
        # Per-(target, phase) cached event entry: pops are by far the
        # hottest record path, so they skip the dict walk entirely.
        self._event_entry: Optional[Any] = None

    # -- phases ------------------------------------------------------

    def current_phase(self) -> str:
        return self._phase_str

    def _phase_changed(self) -> None:
        self._phase_str = "/".join(self._phases) if self._phases else "main"
        self._event_entry = None

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Scope subsequent records under ``name`` (phases nest)."""
        self._phases.append(name)
        self._phase_changed()
        try:
            yield
        finally:
            self._phases.pop()
            self._phase_changed()

    # -- recording ---------------------------------------------------

    def record(
        self, site: str, draw_digest: int, stack: Tuple[str, ...] = ()
    ) -> None:
        self._target.record(self._phase_str, site, draw_digest, stack)

    def record_event(self, event: Any) -> None:
        entry = self._event_entry
        if entry is None:
            entry = self._target.entry(self._phase_str, EVENT_SITE)
            self._event_entry = entry
        name = type(event).__name__
        crc = _TYPE_CRC.get(name)
        if crc is None:
            crc = _TYPE_CRC[name] = zlib.crc32(name.encode("ascii"))
        # hash() of a float is deterministic across processes (only
        # str/bytes hashing is salted), and far cheaper than repr+crc.
        entry.record((crc * 1000003) ^ (hash(event.timestamp_ms)
                                        & _HASH_MASK))

    def record_events(self, events: List[Any]) -> None:
        """Batch :meth:`record_event` — the drained-loop fast path.

        Folds the whole batch locally and writes the entry back once;
        identical digest to per-event recording by construction.
        """
        if not events:
            return
        entry = self._event_entry
        if entry is None:
            entry = self._target.entry(self._phase_str, EVENT_SITE)
            self._event_entry = entry
        crc_cache = _TYPE_CRC
        digest = entry.digest
        for event in events:
            name = type(event).__name__
            crc = crc_cache.get(name)
            if crc is None:
                crc = crc_cache[name] = zlib.crc32(name.encode("ascii"))
            draw = (crc * 1000003) ^ (hash(event.timestamp_ms) & _HASH_MASK)
            digest = (digest * _POLY + draw) & _HASH_MASK
        entry.digest = digest
        entry.count += len(events)

    def record_event_stream(
        self, pairs: Iterator[Tuple[str, float]]
    ) -> None:
        """Fold ``(type name, timestamp)`` pairs — the batched loop path.

        The batched event loop has no event objects for requests, so it
        feeds the merged stream as name/timestamp pairs.  The digest is
        identical to :meth:`record_events` over the event objects the
        legacy loops would have popped, by construction.
        """
        entry = self._event_entry
        if entry is None:
            entry = self._target.entry(self._phase_str, EVENT_SITE)
            self._event_entry = entry
        crc_cache = _TYPE_CRC
        digest = entry.digest
        count = 0
        for name, timestamp_ms in pairs:
            crc = crc_cache.get(name)
            if crc is None:
                crc = crc_cache[name] = zlib.crc32(name.encode("ascii"))
            draw = (crc * 1000003) ^ (hash(timestamp_ms) & _HASH_MASK)
            digest = (digest * _POLY + draw) & _HASH_MASK
            count += 1
        entry.digest = digest
        entry.count += count

    # -- task capture ------------------------------------------------

    def begin_capture(self) -> Tuple[Ledger, List[str]]:
        """Redirect recording into a fresh segment under phase 'task'."""
        saved = (self._target, self._phases)
        self._target = Ledger()
        self._phases = ["task"]
        self._phase_changed()
        return saved

    def end_capture(self, saved: Tuple[Ledger, List[str]]) -> Ledger:
        captured = self._target
        self._target, self._phases = saved
        self._phase_changed()
        return captured


class _RecordingGenerator(np.random.Generator):
    """A Generator that also folds each draw into the active ledger.

    Shares the wrapped generator's ``BitGenerator``, so the stream of
    underlying bits — and therefore every drawn value — is identical to
    the uninstrumented run.  Recording is gated on the module-global
    active state, so instances left behind in long-lived factories go
    quiet the moment ``sanitize()`` exits.
    """

    # Instance attributes are assigned post-construction by
    # _wrap_generator; np.random.Generator.__init__ only takes the
    # bit generator.
    _sanitize_site: str = "<unwrapped>"
    _sanitize_stack: Tuple[str, ...] = ()


def _make_recorder(name: str, original: Any) -> Any:
    def recorder(
        self: _RecordingGenerator, *args: Any, **kwargs: Any
    ) -> Any:
        result = original(self, *args, **kwargs)
        state = _ACTIVE
        if state is not None:
            # In-place methods (shuffle) return None; digest the
            # mutated argument instead.
            payload = result if result is not None else (
                args[0] if args else None
            )
            state.record(
                self._sanitize_site,
                value_digest(name, payload),
                self._sanitize_stack,
            )
        return result

    recorder.__name__ = name
    return recorder


for _name in _DRAW_METHODS:
    _original = getattr(np.random.Generator, _name, None)
    if _original is not None:
        setattr(_RecordingGenerator, _name, _make_recorder(_name, _original))


def _wrap_generator(
    generator: np.random.Generator, site: str, stack: Tuple[str, ...]
) -> _RecordingGenerator:
    wrapped = _RecordingGenerator(generator.bit_generator)
    wrapped._sanitize_site = site
    wrapped._sanitize_stack = stack
    return wrapped


@contextmanager
def _suspended() -> Iterator[None]:
    """Temporarily stop recording (used around testbed-cache builds)."""
    global _ACTIVE  # noqa: PLW0603 - deliberate suspend/restore of the slot
    saved, _ACTIVE = _ACTIVE, None
    try:
        yield
    finally:
        _ACTIVE = saved


class _TaskLedgerHook:
    """Duck-typed hook handed to :mod:`repro.runtime.scheduler`.

    ``capture()`` wraps one work unit: records go into a private
    segment whose dict payload rides back over the pool; ``absorb``
    folds a payload into the parent ledger.  The scheduler only ever
    sees this object — it never imports the sanitizer.
    """

    def __init__(self, state: SanitizerState) -> None:
        self._state = state

    @contextmanager
    def capture(self) -> Iterator["_CaptureBox"]:
        box = _CaptureBox()
        state = _ACTIVE
        if state is None:  # suspended (e.g. inside a cache build)
            yield box
            return
        saved = state.begin_capture()
        try:
            yield box
        finally:
            box.payload = state.end_capture(saved).to_dict()

    def absorb(self, payload: Optional[Dict[str, Any]]) -> None:
        if payload:
            self._state.ledger.absorb(Ledger.from_dict(payload))


class _CaptureBox:
    """Carries one task's ledger segment out of ``capture()``."""

    payload: Optional[Dict[str, Any]] = None


class _ColumnLedgerHook:
    """Duck-typed hook handed to :mod:`repro.simulator.events`.

    The batched event loop calls ``record_stream`` once per run with
    the merged (type name, timestamp) stream; gating on the module
    global keeps suspended sections (testbed-cache builds) out of the
    ledger, exactly like the queue-pop patches.
    """

    def __init__(self, state: SanitizerState) -> None:
        self._state = state

    def record_stream(self, pairs: Iterator[Tuple[str, float]]) -> None:
        active = _ACTIVE
        if active is not None:
            active.record_event_stream(pairs)


class _Patch:
    """One reversible attribute replacement."""

    def __init__(self, holder: Any, attribute: str, replacement: Any) -> None:
        self.holder = holder
        self.attribute = attribute
        self.original = getattr(holder, attribute)
        setattr(holder, attribute, replacement)

    def undo(self) -> None:
        setattr(self.holder, self.attribute, self.original)


def _install(state: SanitizerState) -> List[_Patch]:
    from repro.runtime import scheduler as scheduler_module
    from repro.runtime.cache import TestbedCache
    from repro.simulator import events as events_module
    from repro.simulator.events import EventQueue
    from repro.utils.rng import RngFactory

    patches: List[_Patch] = []
    original_stream = RngFactory.stream

    def stream(self: RngFactory, label: str) -> np.random.Generator:
        generator = original_stream(self, label)
        if _ACTIVE is None or isinstance(generator, _RecordingGenerator):
            return generator
        site, stack = _caller_site()
        wrapped = _wrap_generator(generator, f"{site}#{label}", stack)
        # Replace the cached stream so repeat lookups (and identity
        # checks) see one stable object per (factory, label).
        self._streams[label] = wrapped
        return wrapped

    patches.append(_Patch(RngFactory, "stream", stream))

    original_fork = RngFactory.fork

    def fork(self: RngFactory, label: str) -> RngFactory:
        child = original_fork(self, label)
        active = _ACTIVE
        if active is not None:
            site, stack = _caller_site()
            active.record(
                f"{site}#fork:{label}",
                zlib.crc32(label.encode("utf-8", "backslashreplace")),
                stack,
            )
        return child

    patches.append(_Patch(RngFactory, "fork", fork))

    original_pop = EventQueue.pop

    def pop(self: EventQueue) -> Any:
        event = original_pop(self)
        active = _ACTIVE
        if active is not None:
            active.record_event(event)
        return event

    patches.append(_Patch(EventQueue, "pop", pop))

    original_drain = EventQueue.drain_sorted

    def drain_sorted(self: EventQueue) -> List[Any]:
        events = original_drain(self)
        active = _ACTIVE
        if active is not None:
            active.record_events(events)
        return events

    patches.append(_Patch(EventQueue, "drain_sorted", drain_sorted))

    original_get_or_build = TestbedCache.get_or_build

    def get_or_build(self: TestbedCache, key: str, build: Any) -> Any:
        def suspended_build() -> Any:
            with _suspended():
                return build()

        return original_get_or_build(self, key, suspended_build)

    patches.append(_Patch(TestbedCache, "get_or_build", get_or_build))

    # Module-global assignment and set_task_ledger are equivalent; the
    # patch records the previous hook and restores it on undo.
    patches.append(
        _Patch(scheduler_module, "_TASK_LEDGER", _TaskLedgerHook(state))
    )
    # The batched loop's event-stream feed (set_column_ledger is the
    # equivalent public setter).
    patches.append(
        _Patch(events_module, "_COLUMN_LEDGER", _ColumnLedgerHook(state))
    )
    return patches


@contextmanager
def sanitize(
    meta: Optional[Dict[str, Any]] = None,
) -> Iterator[SanitizerState]:
    """Record a draw ledger for everything run inside the context.

    Yields the :class:`SanitizerState`; its ``ledger`` holds the
    per-phase site entries and can be saved/diffed afterwards::

        with sanitize(meta={"figure": "fig6"}) as state:
            run_experiment("fig6", repetitions=1)
        state.ledger.save("serial.json")
    """
    global _ACTIVE  # noqa: PLW0603 - single non-nesting activation slot
    if _ACTIVE is not None:
        raise SanitizeError(
            "sanitize() is already active; ledgers do not nest"
        )
    state = SanitizerState(meta=meta)
    patches = _install(state)
    _ACTIVE = state
    try:
        yield state
    finally:
        _ACTIVE = None
        for patch in reversed(patches):
            patch.undo()
