"""The ``repro sanitize`` subcommands.

``repro sanitize run`` executes one registered figure experiment under
the draw-ledger sanitizer and writes the ledger as JSON; ``repro
sanitize diff`` compares two ledgers and reports the first divergent
(phase, site) with its stack context.

Exit codes mirror ``repro lint``: ``0`` — success / ledgers match;
``1`` — divergence found; ``2`` — usage error.  The canonical CI use::

    repro sanitize run --figure fig6 --repetitions 1 --out serial.json
    repro sanitize run --figure fig6 --repetitions 1 --jobs 2 \\
        --out parallel.json
    repro sanitize diff serial.json parallel.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, TextIO

from repro.sanitize.instrument import sanitize
from repro.sanitize.ledger import (
    Ledger,
    diff_ledgers,
    render_diff_json,
    render_diff_text,
)


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the ``sanitize`` subcommands to an (sub)parser."""
    from repro.experiments import REGISTRY

    sub = parser.add_subparsers(dest="sanitize_command", required=True)

    run = sub.add_parser(
        "run",
        help="run one figure experiment under the sanitizer and write "
             "its draw ledger",
    )
    run.add_argument("--figure", required=True, choices=sorted(REGISTRY))
    run.add_argument("--out", required=True, metavar="PATH",
                     help="write the ledger JSON here")
    run.add_argument("--jobs", type=int, default=1, metavar="N")
    run.add_argument("--seed", type=int)
    run.add_argument("--repetitions", type=int)
    run.add_argument("--paper-scale", action="store_true")
    run.add_argument(
        "--cache-dir", metavar="DIR",
        help="persist built testbeds under DIR (shared with "
             "'repro experiment')",
    )
    run.add_argument(
        "--registry", metavar="DIR",
        help="append a summary manifest for this sanitized run to the "
             "run registry at DIR (default: $REPRO_REGISTRY)",
    )

    diff = sub.add_parser(
        "diff", help="compare two ledgers; exit 1 on any divergence"
    )
    diff.add_argument("ledger_a", help="ledger JSON (e.g. the serial run)")
    diff.add_argument("ledger_b", help="ledger JSON (e.g. the --jobs run)")
    diff.add_argument(
        "--format", choices=["text", "json"], default="text",
        dest="output_format",
    )
    diff.add_argument(
        "--max-report", type=int, default=5, metavar="N",
        help="cap the divergences listed after the first (default 5)",
    )


def _run(args: argparse.Namespace, out: TextIO) -> int:
    from repro.experiments import run_experiment
    from repro.runtime import TaskScheduler, configure_cache, use_scheduler

    kwargs = {}
    if args.paper_scale:
        kwargs["paper_scale"] = True
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if args.repetitions is not None:
        kwargs["repetitions"] = args.repetitions
    if args.cache_dir:
        configure_cache(disk_dir=args.cache_dir)

    meta = {
        "figure": args.figure,
        "jobs": args.jobs,
        "seed": args.seed,
        "repetitions": args.repetitions,
        "paper_scale": bool(args.paper_scale),
    }
    with sanitize(meta=meta) as state:
        scheduler = TaskScheduler(args.jobs)
        with scheduler, use_scheduler(scheduler):
            with state.phase(f"experiment/{args.figure}"):
                try:
                    run_experiment(args.figure, **kwargs)
                except TypeError:
                    # e.g. fig3 takes no --repetitions (mirrors
                    # `repro experiment`).
                    kwargs.pop("repetitions", None)
                    run_experiment(args.figure, **kwargs)
    state.ledger.save(args.out)
    sites = sum(1 for _ in state.ledger.sites())
    print(
        f"wrote {args.out}: {state.ledger.total_draws()} draws/events "
        f"across {sites} sites in {len(state.ledger.phases)} phase(s)",
        file=out,
    )
    _maybe_register(args, state, sites)
    return 0


def _maybe_register(args: argparse.Namespace, state, sites: int) -> None:
    """Append a summary manifest when a run registry is configured."""
    from repro.obs.registry import resolve_registry

    registry = resolve_registry(args.registry)
    if registry is None:
        return
    from repro.obs.manifest import RunManifest

    manifest = RunManifest(label=f"sanitize:{args.figure}", seed=args.seed)
    manifest.config = {
        "figure": args.figure,
        "jobs": args.jobs,
        "repetitions": args.repetitions,
        "paper_scale": bool(args.paper_scale),
    }
    manifest.run_stats = {
        "draws": float(state.ledger.total_draws()),
        "sites": float(sites),
        "phases": float(len(state.ledger.phases)),
    }
    registry.append(manifest, kind="sanitize")


def _diff(args: argparse.Namespace, out: TextIO, err: TextIO) -> int:
    for path in (args.ledger_a, args.ledger_b):
        if not Path(path).exists():
            print(f"error: ledger not found: {path}", file=err)
            return 2
    try:
        ledger_a = Ledger.load(args.ledger_a)
        ledger_b = Ledger.load(args.ledger_b)
    except ValueError as exc:
        print(f"error: {exc}", file=err)
        return 2
    result = diff_ledgers(ledger_a, ledger_b)
    if args.output_format == "json":
        out.write(render_diff_json(result))
    else:
        print(
            render_diff_text(
                result,
                label_a=args.ledger_a,
                label_b=args.ledger_b,
                max_report=args.max_report,
            ),
            file=out,
        )
    return 0 if result.clean else 1


def run_sanitize(
    args: argparse.Namespace,
    stdout: Optional[TextIO] = None,
    stderr: Optional[TextIO] = None,
) -> int:
    """Execute ``repro sanitize`` for parsed ``args``; returns exit code."""
    out: TextIO = stdout if stdout is not None else sys.stdout
    err: TextIO = stderr if stderr is not None else sys.stderr
    if args.sanitize_command == "run":
        return _run(args, out)
    return _diff(args, out, err)
