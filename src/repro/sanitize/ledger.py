"""The draw ledger: per-phase, per-site counters and rolling hashes.

A :class:`Ledger` summarises every instrumented event of a run —
RNG draws, factory forks, event-queue pops — as a map::

    phase -> site fingerprint -> (count, rolling hash, stack context)

where the *site fingerprint* is ``module:qualname#label`` of the code
that acquired the stream (see :mod:`repro.sanitize.instrument`).  Two
ledgers of equivalent runs (serial vs ``--jobs N``, or two commits)
must be identical; :func:`diff_ledgers` pinpoints the first site where
they are not.

The rolling hash is a polynomial fold over per-draw digests::

    h = (h * P + d) mod 2**64

chosen because it *composes*: a segment of draws recorded into its own
ledger (a worker task) folds into a parent hash as
``h * P**count + h_segment`` — so a parallel run that merges task
deltas **in task order** reproduces the serial hash bit for bit.  The
per-draw digest ``d`` is a CRC32 over the drawn value's bytes, which is
stable across processes (unlike ``hash()``, which is salted).
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

LEDGER_VERSION = 1

#: FNV-1a 64-bit prime; any odd multiplier works, this one mixes well.
_POLY = 1099511628211
_MOD = 1 << 64


def fold(acc: int, digest: int) -> int:
    """Fold one per-draw digest into a rolling hash."""
    return (acc * _POLY + digest) % _MOD


def fold_segment(acc: int, segment_hash: int, segment_count: int) -> int:
    """Fold a whole recorded segment (count draws) into a rolling hash.

    Equivalent to replaying the segment's draws one by one::

    >>> h = fold(fold(0, 3), 7)
    >>> fold_segment(0, h, 2) == h
    True
    >>> prefix = fold(0, 1)
    >>> fold_segment(prefix, h, 2) == fold(fold(prefix, 3), 7)
    True
    """
    return (acc * pow(_POLY, segment_count, _MOD) + segment_hash) % _MOD


def value_digest(method: str, value: Any) -> int:
    """Cross-process-stable digest of one drawn value.

    CRC32 over the value's raw bytes, seeded with the method name so
    ``integers`` and ``random`` draws that happen to share bytes still
    differ.  Values numpy cannot view as a numeric buffer fall back to
    ``repr``.
    """
    seed = zlib.crc32(method.encode("ascii"))
    try:
        array = np.asarray(value)
        if array.dtype == object:
            # Object arrays serialise as pointers — not stable across
            # processes.  repr is.
            raise TypeError("object dtype")
        payload = array.dtype.str.encode("ascii") + array.tobytes()
    except (TypeError, ValueError):
        payload = repr(value).encode("utf-8", "backslashreplace")
    return zlib.crc32(payload, seed)


@dataclass
class SiteEntry:
    """Running record of one site within one phase."""

    count: int = 0
    digest: int = 0
    stack: Tuple[str, ...] = ()

    def record(self, draw_digest: int) -> None:
        self.count += 1
        self.digest = fold(self.digest, draw_digest)

    def absorb(self, other: "SiteEntry") -> None:
        """Append ``other``'s draws (in order) after this entry's."""
        self.digest = fold_segment(self.digest, other.digest, other.count)
        self.count += other.count
        if not self.stack and other.stack:
            self.stack = other.stack


class Ledger:
    """Phase -> site -> :class:`SiteEntry`, with JSON round-tripping."""

    def __init__(self, meta: Optional[Dict[str, Any]] = None) -> None:
        self.meta: Dict[str, Any] = dict(meta or {})
        self.phases: Dict[str, Dict[str, SiteEntry]] = {}

    # -- recording ---------------------------------------------------

    def entry(
        self, phase: str, site: str, stack: Tuple[str, ...] = ()
    ) -> SiteEntry:
        sites = self.phases.setdefault(phase, {})
        found = sites.get(site)
        if found is None:
            found = SiteEntry(stack=stack)
            sites[site] = found
        return found

    def record(
        self,
        phase: str,
        site: str,
        draw_digest: int,
        stack: Tuple[str, ...] = (),
    ) -> None:
        self.entry(phase, site, stack).record(draw_digest)

    def absorb(self, other: "Ledger") -> None:
        """Merge ``other`` (a completed segment) into this ledger.

        Per (phase, site), the segment's draws are appended after the
        draws already recorded here — callers must absorb segments in
        the order the serial run would have produced them (task order).
        """
        for phase in other.phases:
            for site, segment in other.phases[phase].items():
                self.entry(phase, site, segment.stack).absorb(segment)

    # -- introspection -----------------------------------------------

    def total_draws(self) -> int:
        return sum(
            entry.count
            for sites in self.phases.values()
            for entry in sites.values()
        )

    def sites(self) -> Iterator[Tuple[str, str, SiteEntry]]:
        """Every ``(phase, site, entry)`` in canonical order."""
        for phase in sorted(self.phases):
            sites = self.phases[phase]
            for site in sorted(sites):
                yield phase, site, sites[site]

    # -- serialisation -----------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": LEDGER_VERSION,
            "meta": self.meta,
            "phases": {
                phase: {
                    site: {
                        "count": entry.count,
                        "digest": entry.digest,
                        "stack": list(entry.stack),
                    }
                    for site, entry in sorted(sites.items())
                }
                for phase, sites in sorted(self.phases.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Ledger":
        version = data.get("version")
        if version != LEDGER_VERSION:
            raise ValueError(
                f"ledger has version {version!r}, expected {LEDGER_VERSION}"
            )
        ledger = cls(meta=data.get("meta") or {})
        for phase, sites in (data.get("phases") or {}).items():
            for site, raw in sites.items():
                ledger.phases.setdefault(phase, {})[site] = SiteEntry(
                    count=int(raw["count"]),
                    digest=int(raw["digest"]),
                    stack=tuple(raw.get("stack") or ()),
                )
        return ledger

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Ledger":
        return cls.from_dict(
            json.loads(Path(path).read_text(encoding="utf-8"))
        )


# -- diffing ----------------------------------------------------------


@dataclass(frozen=True)
class Divergence:
    """One (phase, site) where two ledgers disagree."""

    phase: str
    site: str
    kind: str  # "missing-in-a" | "missing-in-b" | "count" | "digest"
    a_count: int
    b_count: int
    a_digest: int
    b_digest: int
    stack: Tuple[str, ...] = ()

    def describe(self) -> str:
        if self.kind == "missing-in-a":
            return (f"only in B ({self.b_count} draws) — an extra draw "
                    f"site appeared")
        if self.kind == "missing-in-b":
            return (f"only in A ({self.a_count} draws) — a draw site "
                    f"disappeared")
        if self.kind == "count":
            return f"draw count differs: {self.a_count} vs {self.b_count}"
        return (f"same count ({self.a_count}) but different values "
                f"(digest {self.a_digest:#x} vs {self.b_digest:#x})")


@dataclass
class DiffResult:
    """Outcome of comparing two ledgers (meta is deliberately ignored)."""

    divergences: List[Divergence] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.divergences

    @property
    def first(self) -> Optional[Divergence]:
        return self.divergences[0] if self.divergences else None


def diff_ledgers(a: Ledger, b: Ledger) -> DiffResult:
    """Compare two ledgers site by site, in canonical order.

    ``meta`` never participates: a serial and a ``--jobs 4`` capture of
    the same figure carry different metadata but must have identical
    phases.
    """
    result = DiffResult()
    phases = sorted(set(a.phases) | set(b.phases))
    for phase in phases:
        sites_a = a.phases.get(phase, {})
        sites_b = b.phases.get(phase, {})
        for site in sorted(set(sites_a) | set(sites_b)):
            entry_a = sites_a.get(site)
            entry_b = sites_b.get(site)
            if entry_a is None or entry_b is None:
                present = entry_a or entry_b
                assert present is not None
                result.divergences.append(Divergence(
                    phase=phase, site=site,
                    kind="missing-in-a" if entry_a is None
                    else "missing-in-b",
                    a_count=entry_a.count if entry_a else 0,
                    b_count=entry_b.count if entry_b else 0,
                    a_digest=entry_a.digest if entry_a else 0,
                    b_digest=entry_b.digest if entry_b else 0,
                    stack=present.stack,
                ))
                continue
            if entry_a.count != entry_b.count:
                kind = "count"
            elif entry_a.digest != entry_b.digest:
                kind = "digest"
            else:
                continue
            result.divergences.append(Divergence(
                phase=phase, site=site, kind=kind,
                a_count=entry_a.count, b_count=entry_b.count,
                a_digest=entry_a.digest, b_digest=entry_b.digest,
                stack=entry_a.stack or entry_b.stack,
            ))
    return result


def render_diff_text(
    result: DiffResult, label_a: str = "A", label_b: str = "B",
    max_report: int = 5,
) -> str:
    """Human-readable diff report; the first divergence leads."""
    if result.clean:
        return "ledgers match: zero divergence"
    lines = [
        f"{len(result.divergences)} divergent site(s) between "
        f"{label_a} and {label_b}; first divergence:"
    ]
    first = result.first
    assert first is not None
    lines.append(f"  phase {first.phase!r}, site {first.site}")
    lines.append(f"    {first.describe()}")
    for frame in first.stack:
        lines.append(f"    at {frame}")
    remainder = result.divergences[1:max_report]
    if remainder:
        lines.append("also divergent:")
        for div in remainder:
            lines.append(
                f"  {div.phase!r} {div.site}: {div.describe()}"
            )
    hidden = len(result.divergences) - max_report
    if hidden > 0:
        lines.append(f"  ... and {hidden} more")
    return "\n".join(lines)


def render_diff_json(result: DiffResult) -> str:
    payload = {
        "clean": result.clean,
        "divergences": [
            {
                "phase": div.phase,
                "site": div.site,
                "kind": div.kind,
                "a_count": div.a_count,
                "b_count": div.b_count,
                "a_digest": div.a_digest,
                "b_digest": div.b_digest,
                "stack": list(div.stack),
                "detail": div.describe(),
            }
            for div in result.divergences
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
