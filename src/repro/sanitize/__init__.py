"""``repro.sanitize`` — the runtime determinism sanitizer.

The static passes in :mod:`repro.lint` prove the *absence of known-bad
shapes*; this package is their runtime companion for when determinism
breaks anyway.  Inside the opt-in :func:`sanitize` context every RNG
draw from an :class:`~repro.utils.rng.RngFactory` stream, every factory
fork, and every popped simulation event folds into a per-phase
:class:`~repro.sanitize.ledger.Ledger` keyed by *site fingerprint*
(``module:qualname#label`` of the code that acquired the stream).  Two
equivalent runs — serial vs ``--jobs N``, or two commits — must produce
identical ledgers; :func:`diff_ledgers` names the first site where they
do not, with stack context, turning "the archives differ" into a
one-line diagnosis.

Nothing here is imported by the runtime's hot paths: with the context
inactive the instrumentation does not exist (0% overhead); inside the
context draws stay bit-identical (the wrapped generators share the
original ``BitGenerator``).

CLI: ``repro sanitize run --figure fig6 --out ledger.json`` and
``repro sanitize diff A B``; see :mod:`repro.sanitize.cli` and
``docs/static-analysis.md``.
"""

from repro.sanitize.instrument import (
    EVENT_SITE,
    SanitizeError,
    SanitizerState,
    active_state,
    sanitize,
)
from repro.sanitize.ledger import (
    DiffResult,
    Divergence,
    Ledger,
    SiteEntry,
    diff_ledgers,
    fold,
    fold_segment,
    render_diff_json,
    render_diff_text,
    value_digest,
)

__all__ = [
    "DiffResult",
    "Divergence",
    "EVENT_SITE",
    "Ledger",
    "SanitizeError",
    "SanitizerState",
    "SiteEntry",
    "active_state",
    "diff_ledgers",
    "fold",
    "fold_segment",
    "render_diff_json",
    "render_diff_text",
    "sanitize",
    "value_digest",
]
