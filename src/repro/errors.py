"""Exception hierarchy for the ``repro`` library.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class.  Subclasses are grouped per subsystem;
raising a built-in ``ValueError``/``TypeError`` is reserved for plain
argument-validation errors at public API boundaries (see
``repro.utils.validation``).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A configuration object is internally inconsistent.

    Raised by the ``validate()`` methods of the dataclasses in
    :mod:`repro.config`, e.g. when the number of requested landmarks
    exceeds the number of available nodes.
    """


class TopologyError(ReproError):
    """A topology could not be generated or is structurally invalid."""


class DisconnectedTopologyError(TopologyError):
    """A generated or supplied topology graph is not connected.

    All RTT computations assume finite shortest-path distances between
    every pair of placed nodes, so a disconnected graph is unusable.
    """


class PlacementError(TopologyError):
    """Caches/server could not be placed on the topology.

    Typically the topology has fewer candidate nodes than the requested
    number of edge caches.
    """


class ProbingError(ReproError):
    """An RTT probe was issued against an unknown or unreachable node."""


class LandmarkSelectionError(ReproError):
    """A landmark set could not be constructed.

    For instance the potential-landmark multiplier ``M`` demands more
    potential landmarks than there are edge caches.
    """


class ClusteringError(ReproError):
    """Clustering failed (bad K, empty input, non-convergence guard)."""


class EmbeddingError(ReproError):
    """A coordinate embedding (GNP / Vivaldi) failed to converge or was
    given inconsistent dimensions."""


class WorkloadError(ReproError):
    """A workload/trace could not be generated, parsed, or validated."""


class TraceFormatError(WorkloadError):
    """A trace file violates the on-disk record format."""


class SimulationError(ReproError):
    """The discrete event simulation reached an inconsistent state."""


class SchemeError(ReproError):
    """A group-formation scheme was mis-invoked (e.g. clustering before
    landmarks were selected)."""


class SchedulerError(ReproError):
    """A parallel task fan failed in the runtime layer itself.

    Raised by :class:`repro.runtime.scheduler.TaskScheduler` when a work
    unit cannot be completed for *infrastructure* reasons — a worker
    crashed and its retry budget is exhausted, a per-task deadline kept
    expiring, or the task payload/result is not picklable.  Exceptions
    raised *by* the task function itself propagate unwrapped, exactly as
    a serial run would raise them.

    ``task_index``, ``qualname``, ``attempts``, and ``last_error`` are
    carried as attributes so callers (and tests) can act on the failing
    unit without parsing the message.
    """

    def __init__(
        self,
        message: str,
        task_index: int = -1,
        qualname: str = "",
        attempts: int = 0,
        last_error: str = "",
    ) -> None:
        super().__init__(message)
        self.task_index = task_index
        self.qualname = qualname
        self.attempts = attempts
        self.last_error = last_error


class JournalError(ReproError):
    """A task journal could not be read/written, or a work-unit payload
    is not content-keyable (see :mod:`repro.runtime.journal`)."""


class RegistryError(ReproError):
    """The run registry is missing, corrupt, or a run reference did not
    resolve (see :mod:`repro.obs.registry`)."""


class BenchmarkError(ReproError):
    """A benchmark result could not be read, or two results are not
    comparable (see :mod:`repro.bench`)."""
