"""Text and JSON renderings of a :class:`~repro.lint.runner.LintReport`.

Both formats list findings in the canonical order and end with the same
summary counts, so a CI log and a machine-read JSON artifact always
agree about what failed.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Union

from repro.lint.findings import Finding
from repro.lint.runner import LintReport


def _summary(report: LintReport) -> str:
    parts = [
        f"{len(report.findings)} finding"
        f"{'' if len(report.findings) == 1 else 's'}",
        f"{report.files_checked} files checked",
    ]
    if report.grandfathered:
        parts.insert(1, f"{len(report.grandfathered)} baselined")
    if report.suppressed:
        parts.insert(1, f"{report.suppressed} suppressed")
    return ", ".join(parts)


def render_text(report: LintReport, verbose: bool = False) -> str:
    """Human-readable report: one ``path:line: rule: message`` per line.

    ``verbose`` also lists grandfathered (baselined) findings, marked
    so they are not mistaken for build-failing ones.
    """
    lines: List[str] = []
    for finding in report.findings:
        lines.append(
            f"{finding.location}:{finding.col}: "
            f"{finding.rule_id}: {finding.message}"
        )
    if verbose:
        for finding in report.grandfathered:
            lines.append(
                f"{finding.location}:{finding.col}: "
                f"{finding.rule_id}: [baselined] {finding.message}"
            )
    lines.append(_summary(report))
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report (stable key order, trailing newline)."""

    def encode(findings: List[Finding]) -> List[Dict[str, Union[str, int]]]:
        return [finding.to_dict() for finding in findings]

    payload: Dict[str, Any] = {
        "clean": report.clean,
        "files_checked": report.files_checked,
        "suppressed": report.suppressed,
        "findings": encode(report.findings),
        "grandfathered": encode(report.grandfathered),
        "summary": _summary(report),
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
