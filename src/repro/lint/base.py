"""Checker base class and rule metadata.

A checker inspects one :class:`~repro.lint.source.SourceFile` at a time
and yields :class:`~repro.lint.findings.Finding` records.  Checkers are
pure functions of the file's AST facts: no I/O, no cross-file state —
which keeps the whole pass trivially deterministic and lets the test
suite drive every checker with inline fixture snippets.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import ClassVar, Iterator, Tuple

from repro.lint.findings import Finding
from repro.lint.source import SourceFile


@dataclass(frozen=True)
class Rule:
    """Identity and one-line rationale of one lint rule."""

    rule_id: str
    summary: str


class Checker(abc.ABC):
    """Base class for AST-walking invariant checkers.

    Subclasses declare the rules they may emit (``rules``) and implement
    :meth:`check`.  ``name`` is the checker's stable registry key.
    """

    name: ClassVar[str] = "checker"
    rules: ClassVar[Tuple[Rule, ...]] = ()

    @abc.abstractmethod
    def check(self, source: SourceFile) -> Iterator[Finding]:
        """Yield every violation this checker sees in ``source``."""

    def finding(
        self, rule_id: str, source: SourceFile, line: int, message: str,
        col: int = 0,
    ) -> Finding:
        """Build a finding anchored in ``source`` (rule id sanity-checked)."""
        if rule_id not in {rule.rule_id for rule in self.rules}:
            raise ValueError(
                f"checker {self.name!r} does not declare rule {rule_id!r}"
            )
        return Finding(
            rule_id=rule_id,
            path=source.display_path,
            line=line,
            message=message,
            col=col,
        )
