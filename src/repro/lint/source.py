"""Parsed source files and the shared AST facts checkers query.

:class:`SourceFile` loads a file once and precomputes everything every
checker needs: the AST, a child->parent map (for "is this call wrapped
in ``sorted(...)``" questions), an import-alias map that resolves local
names back to canonical dotted module paths (``np.random.seed`` and
``from numpy import random; random.seed`` both resolve to
``numpy.random.seed``), and the ``# repro-lint: allow[rule-id]``
suppression pragmas extracted from comment tokens.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from typing import Dict, FrozenSet, List, Optional, Set

_PRAGMA = re.compile(r"#\s*repro-lint:\s*allow\[([^\]]*)\]")

#: Wildcard rule id accepted inside an allow pragma.
ALLOW_ALL = "*"


def parse_pragmas(text: str) -> Dict[int, FrozenSet[str]]:
    """Extract suppression pragmas from comment tokens.

    Returns ``line -> frozenset of rule ids`` (possibly containing
    :data:`ALLOW_ALL`).  Only real comment tokens are honoured, so a
    pragma spelled inside a string literal does not suppress anything.
    """
    pragmas: Dict[int, Set[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return {}
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PRAGMA.search(token.string)
        if match is None:
            continue
        rules = {
            rule.strip()
            for rule in match.group(1).split(",")
            if rule.strip()
        }
        if rules:
            pragmas.setdefault(token.start[0], set()).update(rules)
    return {line: frozenset(rules) for line, rules in pragmas.items()}


def build_import_aliases(tree: ast.AST) -> Dict[str, str]:
    """Map local names to the canonical dotted path they import.

    ``import numpy as np`` maps ``np -> numpy``; ``import numpy.random``
    maps ``numpy -> numpy``; ``from numpy import random as r`` maps
    ``r -> numpy.random``; ``from time import perf_counter`` maps
    ``perf_counter -> time.perf_counter``.  Relative imports are skipped
    (they never denote the stdlib/numpy surfaces the checkers police).
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.asname is not None:
                    aliases[item.asname] = item.name
                else:
                    root = item.name.split(".")[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level != 0 or node.module is None:
                continue
            for item in node.names:
                local = item.asname or item.name
                aliases[local] = f"{node.module}.{item.name}"
    return aliases


def resolve_dotted(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve an attribute chain or name to its canonical dotted path.

    Returns ``None`` when the chain does not bottom out in an imported
    name (e.g. ``self.rng.random`` — a local object, not a module).
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = aliases.get(node.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


class SourceFile:
    """One parsed Python file plus the precomputed facts checkers use."""

    def __init__(self, display_path: str, text: str) -> None:
        self.display_path = display_path
        self.text = text
        self.parse_error: Optional[SyntaxError] = None
        try:
            self.tree: ast.Module = ast.parse(text, filename=display_path)
        except SyntaxError as exc:
            self.parse_error = exc
            self.tree = ast.Module(body=[], type_ignores=[])
        self.suppressions = parse_pragmas(text)
        self.aliases = build_import_aliases(self.tree)
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None

    @property
    def parents(self) -> Dict[ast.AST, ast.AST]:
        """Child node -> parent node map (built lazily, once)."""
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    parents[child] = parent
            self._parents = parents
        return self._parents

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted path of a name/attribute chain, if imported."""
        return resolve_dotted(node, self.aliases)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """Whether a pragma on ``line`` (or the line above) allows the rule.

        Accepting the preceding line lets a pragma sit in a standalone
        comment directly above a long statement.
        """
        for candidate in (line, line - 1):
            rules = self.suppressions.get(candidate)
            if rules is not None and (rule_id in rules or ALLOW_ALL in rules):
                return True
        return False

    def path_parts(self) -> List[str]:
        """The display path split on ``/`` (for directory scoping)."""
        return self.display_path.split("/")
