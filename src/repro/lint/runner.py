"""File discovery and the lint pass itself.

:func:`lint_paths` is the library entry point: it walks the requested
files/directories in sorted order, runs every checker over each parsed
file, applies inline pragma suppressions and the baseline, and returns a
:class:`LintReport` whose findings are canonically ordered — two runs
over the same tree produce byte-identical reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.lint.base import Checker
from repro.lint.baseline import Baseline
from repro.lint.checkers import default_checkers
from repro.lint.findings import Finding, sort_findings
from repro.lint.source import SourceFile

#: Pseudo-rule for files the linter cannot parse at all.  Not part of
#: any checker: a syntax error defeats every other check, so it is
#: always fatal and cannot be pragma-suppressed (pragmas need a parse).
PARSE_ERROR = "parse-error"

#: Directory names never descended into during discovery.
_SKIPPED_DIRS = frozenset({
    "__pycache__", ".git", ".hypothesis", ".pytest_cache", "build", "dist",
})


@dataclass
class LintReport:
    """Outcome of one lint pass."""

    findings: List[Finding] = field(default_factory=list)
    grandfathered: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0
    checked_files: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def all_findings(self) -> List[Finding]:
        """New + grandfathered findings, canonically ordered."""
        return sort_findings([*self.findings, *self.grandfathered])


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths``, deterministically.

    Files are yielded in sorted posix-path order; hidden directories,
    caches, and ``*.egg-info`` trees are skipped.
    """
    collected: List[Path] = []
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                collected.append(path)
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"lint path does not exist: {path}")
        # Discovery order is normalised by the sort below, so the raw
        # filesystem order never reaches callers.
        for candidate in path.rglob("*.py"):  # repro-lint: allow[iter-order]
            relative_parts = candidate.relative_to(path).parts
            if any(
                part in _SKIPPED_DIRS
                or part.startswith(".")
                or part.endswith(".egg-info")
                for part in relative_parts
            ):
                continue
            collected.append(candidate)
    unique = {file.resolve(): file for file in collected}
    yield from sorted(unique.values(), key=lambda file: file.as_posix())


def display_path(path: Path, root: Optional[Path] = None) -> str:
    """Posix path used in findings: relative to ``root`` when possible."""
    base = (root or Path.cwd()).resolve()
    resolved = path.resolve()
    try:
        return resolved.relative_to(base).as_posix()
    except ValueError:
        return resolved.as_posix()


def lint_source(
    source: SourceFile, checkers: Sequence[Checker]
) -> Tuple[List[Finding], int]:
    """Run ``checkers`` over one parsed file.

    Returns ``(findings, suppressed_count)``; findings are sorted.
    """
    if source.parse_error is not None:
        error = source.parse_error
        return (
            [
                Finding(
                    rule_id=PARSE_ERROR,
                    path=source.display_path,
                    line=error.lineno or 1,
                    message=f"cannot parse file: {error.msg}",
                    col=(error.offset or 1) - 1,
                )
            ],
            0,
        )
    kept: List[Finding] = []
    suppressed = 0
    for checker in checkers:
        for finding in checker.check(source):
            if source.is_suppressed(finding.rule_id, finding.line):
                suppressed += 1
            else:
                kept.append(finding)
    return sort_findings(kept), suppressed


def lint_paths(
    paths: Sequence[Path],
    checkers: Optional[Sequence[Checker]] = None,
    baseline: Optional[Baseline] = None,
    root: Optional[Path] = None,
    project: bool = True,
) -> LintReport:
    """Lint every Python file under ``paths`` and build the report.

    ``root`` anchors the relative paths used in findings and baseline
    keys (defaults to the current working directory).  With ``project``
    (the default) the cross-module passes in :mod:`repro.lint.project`
    also run, over the same parsed sources — files are read and parsed
    exactly once either way.
    """
    active = list(checkers) if checkers is not None else list(default_checkers())
    report = LintReport()
    collected: List[Finding] = []
    sources: List[SourceFile] = []
    for file in iter_python_files(paths):
        text = file.read_text(encoding="utf-8")
        source = SourceFile(display_path(file, root=root), text)
        sources.append(source)
        findings, suppressed = lint_source(source, active)
        collected.extend(findings)
        report.suppressed += suppressed
        report.files_checked += 1
        report.checked_files.append(source.display_path)
    if project:
        # Imported lazily so `checkers`-only callers never pay for the
        # graph machinery.
        from repro.lint.project import run_project_passes

        project_findings, project_suppressed = run_project_passes(sources)
        collected.extend(project_findings)
        report.suppressed += project_suppressed
    collected = sort_findings(collected)
    if baseline is not None:
        report.findings, report.grandfathered = baseline.partition(collected)
    else:
        report.findings = collected
    return report
