"""Interprocedural dimensional analysis: units and time domains.

The reproduction juggles three clocks: the *simulated* millisecond
clock the engine advances (``EventQueue.now_ms``, event
``timestamp_ms``, RTTs, ``partition_timeout_ms``), the *host* monotonic
second clock behind :func:`repro.obs.profiling.perf_seconds` (scheduler
deadlines, retry backoff, bench timing), and the *unix epoch*
(``RunManifest.created_unix``).  Nothing in Python stops a seconds
value flowing into a milliseconds slot, or a host-clock stamp being
compared with sim time — both are plain floats.  This module closes
that gap the same way :mod:`repro.lint.effects` closed the effect gap:
a whole-program pass over the PR 5 call graph.

Every function gets a **unit summary** — a lattice point per parameter
plus one for its return value — inferred from three sources and joined
to a fixpoint over the call graph:

* **naming conventions** — ``*_ms`` is milliseconds, ``*_s`` /
  ``*_sec`` / ``*_seconds`` is seconds, ``*_unix`` is a unix-epoch
  timestamp; duration words (``timeout``, ``rtt``, ``backoff``, ...)
  and timestamp words (``now``, ``deadline``, ``created``, ...) set
  the duration-vs-timestamp role;
* **provenance anchors** — ``perf_seconds()`` yields host-seconds,
  ``time.time()`` yields unix-epoch, the ``.now_ms`` /
  ``.timestamp_ms`` attributes are the simulated clock, and the
  :mod:`repro.types` aliases (``Ms``/``Seconds``/``SimMs``/
  ``UnixSeconds``) declare units in annotations;
* **propagation** — through assignments, arithmetic (``timestamp -
  timestamp`` is a duration, ``timestamp + duration`` a timestamp,
  scaling by a dimensionless factor preserves the unit), returns, and
  call-argument binding.  The per-field lattice is ``unknown <
  concrete < mixed``, so the worklist converges on recursive and
  mutually-recursive call chains.

The lattice element is ``scale x domain x role``:

* ``scale`` — ``ms`` | ``s`` (the dimension; unknown = dimensionless);
* ``domain`` — ``sim`` | ``host`` | ``epoch`` (which clock);
* ``role`` — ``duration`` | ``timestamp``.

Four rules consume the summaries (pragma-suppressible at the reported
line, baseline-integrated like every other rule):

* ``unit-mismatch`` — a milliseconds value meets a seconds value: in
  ``+``/``-``/comparison arithmetic, in an assignment to a
  unit-suffixed name, or flowing into a call parameter whose declared
  unit differs;
* ``time-domain-mixing`` — sim, host and epoch clocks are unrelated
  timelines; arithmetic or bindings mixing them are reported with the
  provenance chain of each side (anchor, and the call chain a domain
  travelled through);
* ``magic-unit-conversion`` — a bare ``* 1000`` / ``/ 1000`` on a time
  value: route conversions through :func:`repro.types.ms_to_s` /
  :func:`repro.types.s_to_ms` (the helpers' home module is exempt);
* ``unitless-duration-boundary`` — a public function parameter that
  names a duration/timestamp (``timeout``, ``rtt``, ``deadline``, ...)
  but carries neither a unit suffix nor a :mod:`repro.types` time
  annotation, so call sites cannot know what to pass.

Precision notes: the analysis is flow-insensitive within a statement
list (last assignment wins, loop bodies are visited once), container
element units survive subscripting but not literal construction, and
attribute state is inferred from the attribute's *name* only.  Units
never override a declared (name/annotation) unit at a parameter — the
declaration is ground truth and a conflicting inflow is the finding.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.lint.base import Rule
from repro.lint.findings import Finding, sort_findings
from repro.lint.project import MODULE_SCOPE, ModuleInfo, ProjectModel, _RawCall

UNIT_MISMATCH = "unit-mismatch"
TIME_DOMAIN_MIXING = "time-domain-mixing"
MAGIC_UNIT_CONVERSION = "magic-unit-conversion"
UNITLESS_DURATION_BOUNDARY = "unitless-duration-boundary"

UNIT_RULES: Tuple[Rule, ...] = (
    Rule(UNIT_MISMATCH,
         "milliseconds value meets a seconds value in arithmetic, "
         "assignment, or call-argument binding"),
    Rule(TIME_DOMAIN_MIXING,
         "simulated, host-monotonic, and unix-epoch clock values mixed "
         "in arithmetic or a call binding"),
    Rule(MAGIC_UNIT_CONVERSION,
         "bare * 1000 / / 1000 time conversion outside the sanctioned "
         "repro.types helpers"),
    Rule(UNITLESS_DURATION_BOUNDARY,
         "public duration/timestamp parameter with no unit suffix or "
         "repro.types time annotation"),
)

#: Top element of each lattice field: two different concrete values met.
MIXED = "mixed"

_CONCRETE_SCALES = ("ms", "s")
_CONCRETE_DOMAINS = ("sim", "host", "epoch")

#: The conversion helpers live here; its internals are exempt from
#: ``magic-unit-conversion`` (something has to hold the bare factor).
_CONVERSION_HOME = "repro.types"

#: Longest-match-first unit suffixes on names and attributes.
_SCALE_SUFFIXES: Tuple[Tuple[str, str], ...] = (
    ("_seconds", "s"),
    ("_secs", "s"),
    ("_sec", "s"),
    ("_unix", "s"),
    ("_ms", "ms"),
    ("_s", "s"),
)

#: Suffixes marking a value as explicitly dimensionless even when the
#: name contains a time word (``wall_ratio``, ``request_rate_rps``).
_DIMENSIONLESS_SUFFIXES = (
    "_ratio", "_frac", "_fraction", "_pct", "_percent", "_rate", "_rps",
    "_count", "_counts", "_factor", "_scale", "_mult", "_multiplier",
    "_prob", "_probability", "_share", "_per_core",
)

#: Name parts implying the duration role.
_DURATION_WORDS = frozenset({
    "timeout", "timeouts", "rtt", "rtts", "latency", "latencies",
    "backoff", "elapsed", "duration", "durations", "interval",
    "intervals", "delay", "delays", "ttl", "expiry", "wait", "waits",
    "lag", "wall", "uptime", "age",
})

#: Name parts implying the timestamp role.
_TIMESTAMP_WORDS = frozenset({
    "now", "deadline", "deadlines", "timestamp", "timestamps",
    "created", "started", "submitted", "until", "expires", "at",
})

#: Duration/timestamp words that *demand* a unit suffix on a public
#: parameter (``unitless-duration-boundary``).  Narrower than the role
#: words: only names where the unit genuinely matters at the boundary.
_BOUNDARY_WORDS = frozenset({
    "timeout", "timeouts", "deadline", "deadlines", "rtt", "rtts",
    "latency", "latencies", "backoff", "duration", "durations",
    "interval", "intervals", "delay", "delays", "ttl", "expiry",
    "elapsed", "timestamp", "timestamps",
})

#: Known clock reads, by resolved dotted call target.
_CALL_ANCHORS: Dict[str, "Unit"] = {}  # populated below Unit

#: Attribute names that *are* the simulated clock, wherever they appear.
_SIM_CLOCK_ATTRS = frozenset({"now_ms", "timestamp_ms"})

#: ``repro.types`` aliases recognised in annotations.
_ANNOTATION_UNITS: Dict[str, "Unit"] = {}  # populated below Unit

#: Builtins whose result carries the joined unit of their arguments.
_UNIT_PRESERVING_BUILTINS = frozenset({
    "min", "max", "abs", "round", "float", "sum", "sorted",
})


@dataclass(frozen=True)
class Unit:
    """One point of the ``scale x domain x role`` lattice.

    ``None`` is the bottom (unknown) element of each field and
    :data:`MIXED` the top; everything in between is a concrete value.
    """

    scale: Optional[str] = None    # "ms" | "s" | MIXED
    domain: Optional[str] = None   # "sim" | "host" | "epoch" | MIXED
    role: Optional[str] = None     # "duration" | "timestamp" | MIXED

    def is_empty(self) -> bool:
        return self.scale is None and self.domain is None and (
            self.role is None
        )

    def label(self) -> str:
        """Deterministic human-readable rendering for messages/tables."""
        if self.is_empty():
            return "dimensionless"
        bits: List[str] = []
        if self.domain is not None:
            bits.append("unix" if self.domain == "epoch" else self.domain)
        if self.scale is not None:
            bits.append(self.scale)
        base = "-".join(bits) if bits else "time"
        if self.role is not None:
            base = f"{base} {self.role}"
        return base


_CALL_ANCHORS.update({
    "repro.obs.profiling.perf_seconds": Unit("s", "host", "timestamp"),
    "time.time": Unit("s", "epoch", "timestamp"),
    "time.perf_counter": Unit("s", "host", "timestamp"),
    "time.monotonic": Unit("s", "host", "timestamp"),
    "time.process_time": Unit("s", "host", "timestamp"),
    "time.thread_time": Unit("s", "host", "timestamp"),
})

_ANNOTATION_UNITS.update({
    "Ms": Unit("ms"),
    "Seconds": Unit("s", "host"),
    "SimMs": Unit("ms", "sim"),
    "UnixSeconds": Unit("s", "epoch", "timestamp"),
})


def _join_field(a: Optional[str], b: Optional[str]) -> Optional[str]:
    if a is None:
        return b
    if b is None or a == b:
        return a
    return MIXED


def join(a: Unit, b: Unit) -> Unit:
    """Pointwise lattice join (``unknown < concrete < mixed``)."""
    return Unit(
        scale=_join_field(a.scale, b.scale),
        domain=_join_field(a.domain, b.domain),
        role=_join_field(a.role, b.role),
    )


def unit_from_name(name: str) -> Unit:
    """Unit implied by a bare identifier or attribute name."""
    lowered = name.lower()
    for suffix in _DIMENSIONLESS_SUFFIXES:
        if lowered.endswith(suffix):
            return Unit()
    scale: Optional[str] = None
    domain: Optional[str] = None
    role: Optional[str] = None
    for suffix, implied in _SCALE_SUFFIXES:
        if lowered.endswith(suffix):
            scale = implied
            break
    parts = lowered.split("_")
    if "unix" in parts or "epoch" in parts:
        domain = "epoch"
        scale = scale or "s"
        role = "timestamp"
    if role is None:
        if any(part in _TIMESTAMP_WORDS for part in parts):
            role = "timestamp"
        elif any(part in _DURATION_WORDS for part in parts):
            role = "duration"
    return Unit(scale=scale, domain=domain, role=role)


def unit_from_annotation(
    node: Optional[ast.expr], info: ModuleInfo
) -> Unit:
    """Unit declared by a :mod:`repro.types` time alias annotation."""
    if node is None:
        return Unit()
    if isinstance(node, ast.Subscript):
        # Optional[Ms] / Optional["Seconds"] — look inside the wrapper.
        return unit_from_annotation(node.slice, info)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return _ANNOTATION_UNITS.get(node.value.split(".")[-1], Unit())
    resolved = info.source.resolve(node)
    terminal: Optional[str] = None
    if resolved is not None:
        terminal = resolved.split(".")[-1]
    elif isinstance(node, ast.Name):
        terminal = node.id
    elif isinstance(node, ast.Attribute):
        terminal = node.attr
    if terminal is None:
        return Unit()
    return _ANNOTATION_UNITS.get(terminal, Unit())


# -- the per-function definition table --------------------------------


@dataclass
class _FnDef:
    """One function's static shape: params, declared units, body."""

    key: str
    module: str
    qualname: str
    path: str
    line: int
    params: List[str]
    declared: Dict[str, Unit]
    body: Sequence[ast.stmt]
    enclosing_class: Optional[str]
    public: bool
    node: Optional[ast.AST] = None


@dataclass
class FnUnits:
    """The evolving interprocedural summary of one function."""

    params: Dict[str, Unit] = field(default_factory=dict)
    returns: Unit = field(default_factory=Unit)
    #: ``param -> provenance chain`` recording where a *flowed* clock
    #: domain came from; set once (first concrete inflow) so chains
    #: stay stable across fixpoint rounds.
    param_origin: Dict[str, str] = field(default_factory=dict)
    return_origin: Optional[str] = None


def _is_public_qualname(qualname: str) -> bool:
    for segment in qualname.split("."):
        if segment.startswith("_") and not (
            segment.startswith("__") and segment.endswith("__")
        ):
            return False
    return True


class _DefCollector:
    """Mirror of the project/effects scope walk, collecting defs."""

    def __init__(self, info: ModuleInfo, defs: Dict[str, _FnDef]) -> None:
        self._info = info
        self._defs = defs

    def run(self) -> None:
        info = self._info
        module_key = f"{info.name}:{MODULE_SCOPE}"
        self._defs[module_key] = _FnDef(
            key=module_key, module=info.name, qualname=MODULE_SCOPE,
            path=info.source.display_path, line=1, params=[],
            declared={}, body=info.source.tree.body,
            enclosing_class=None, public=False,
        )
        self._walk_body(info.source.tree.body, scope=(),
                        enclosing_class=None)

    def _walk_body(
        self, body: Sequence[ast.stmt], scope: Tuple[str, ...],
        enclosing_class: Optional[str],
    ) -> None:
        for stmt in body:
            self._walk(stmt, scope, enclosing_class)

    def _walk(
        self, node: ast.AST, scope: Tuple[str, ...],
        enclosing_class: Optional[str],
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = ".".join((*scope, node.name))
            key = f"{self._info.name}:{qualname}"
            args = node.args
            ordered = [*args.posonlyargs, *args.args, *args.kwonlyargs]
            params = [arg.arg for arg in ordered]
            declared = {
                arg.arg: join(
                    unit_from_name(arg.arg),
                    unit_from_annotation(arg.annotation, self._info),
                )
                for arg in ordered
            }
            self._defs[key] = _FnDef(
                key=key, module=self._info.name, qualname=qualname,
                path=self._info.source.display_path, line=node.lineno,
                params=params, declared=declared, body=node.body,
                enclosing_class=enclosing_class,
                public=_is_public_qualname(qualname), node=node,
            )
            self._walk_body(node.body, (*scope, node.name),
                            enclosing_class)
            return
        if isinstance(node, ast.ClassDef):
            qualname = ".".join((*scope, node.name))
            self._walk_body(node.body, (*scope, node.name), qualname)
            return
        for child in ast.iter_child_nodes(node):
            self._walk(child, scope, enclosing_class)


# -- the analysis container -------------------------------------------


@dataclass
class UnitAnalysis:
    """Computed unit tables for one :class:`ProjectModel`."""

    model: ProjectModel
    defs: Dict[str, _FnDef]
    summaries: Dict[str, FnUnits]
    findings: List[Finding] = field(default_factory=list)

    def summary(self, key: str) -> FnUnits:
        return self.summaries[key]


#: One evaluated expression: its unit and a provenance note for
#: messages (``None`` when there is nothing interesting to say).
_Val = Tuple[Unit, Optional[str]]


class _BodyAnalyzer:
    """One forward pass over one function body.

    During fixpoint rounds (``report=False``) it only propagates units
    into callee summaries and the function's return unit; in the final
    reporting pass it also emits findings (summaries are stable by
    then, so the extra pass changes nothing).
    """

    def __init__(
        self, analysis: UnitAnalysis, fn: _FnDef, report: bool
    ) -> None:
        self._a = analysis
        self._fn = fn
        self._info = analysis.model.modules[fn.module]
        self._report = report
        self._changed = False
        self.findings: List[Finding] = []
        summary = analysis.summaries[fn.key]
        self._env: Dict[str, _Val] = {}
        for name in fn.params:
            unit = summary.params[name]
            why = f"parameter '{name}'"
            origin = summary.param_origin.get(name)
            if origin is not None:
                why = f"{why} <- {origin}"
            self._env[name] = (unit, why)
        self._ret = Unit()
        self._ret_why: Optional[str] = None

    # -- driver -------------------------------------------------------

    def run(self) -> bool:
        for stmt in self._fn.body:
            self._stmt(stmt)
        summary = self._a.summaries[self._fn.key]
        new_ret = join(summary.returns, self._ret)
        if new_ret != summary.returns:
            summary.returns = new_ret
            self._changed = True
        if (
            summary.return_origin is None
            and new_ret.domain in _CONCRETE_DOMAINS
            and self._ret_why is not None
        ):
            summary.return_origin = self._ret_why
        return self._changed

    # -- findings -----------------------------------------------------

    def _emit(self, rule_id: str, line: int, message: str) -> None:
        if not self._report:
            return
        if self._info.source.is_suppressed(rule_id, line):
            return
        self.findings.append(Finding(
            rule_id=rule_id, path=self._fn.path, line=line,
            message=message,
        ))

    @staticmethod
    def _describe(unit: Unit, why: Optional[str]) -> str:
        return f"{unit.label()} ({why})" if why else unit.label()

    # -- statements ---------------------------------------------------

    def _stmt(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # separate function key; analysed on its own
        if isinstance(node, ast.ClassDef):
            # Class bodies execute in the enclosing scope (matches the
            # call-graph ownership rules) — dataclass fields included.
            for stmt in node.body:
                self._stmt(stmt)
            return
        if isinstance(node, ast.Assign):
            value = self._eval(node.value)
            for target in node.targets:
                self._assign(target, value, node.lineno)
            return
        if isinstance(node, ast.AnnAssign):
            declared = unit_from_annotation(node.annotation, self._info)
            value = (Unit(), None) if node.value is None else (
                self._eval(node.value)
            )
            merged = (join(declared, value[0]), value[1])
            self._assign(node.target, merged, node.lineno,
                         annotation=declared)
            return
        if isinstance(node, ast.AugAssign):
            target = self._load_target(node.target)
            value = self._eval(node.value)
            self._combine_additive(target, value, node.lineno,
                                   op_label=type(node.op).__name__)
            return
        if isinstance(node, ast.Return):
            if node.value is not None:
                unit, why = self._eval(node.value)
                self._ret = join(self._ret, unit)
                if self._ret_why is None and why is not None and (
                    unit.domain in _CONCRETE_DOMAINS
                ):
                    self._ret_why = why
            return
        if isinstance(node, ast.Expr):
            self._eval(node.value)
            return
        if isinstance(node, (ast.If, ast.While)):
            self._eval(node.test)
            for stmt in (*node.body, *node.orelse):
                self._stmt(stmt)
            return
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iterated = self._eval(node.iter)
            if isinstance(node.target, ast.Name):
                # Element units survive iteration (a list of RTTs in ms
                # yields ms entries).
                self._env[node.target.id] = (
                    join(iterated[0], unit_from_name(node.target.id)),
                    iterated[1],
                )
            for stmt in (*node.body, *node.orelse):
                self._stmt(stmt)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                value = self._eval(item.context_expr)
                if isinstance(item.optional_vars, ast.Name):
                    self._env[item.optional_vars.id] = value
            for stmt in node.body:
                self._stmt(stmt)
            return
        if isinstance(node, ast.Try):
            for stmt in node.body:
                self._stmt(stmt)
            for handler in node.handlers:
                for stmt in handler.body:
                    self._stmt(stmt)
            for stmt in (*node.orelse, *node.finalbody):
                self._stmt(stmt)
            return
        if isinstance(node, ast.Raise):
            if node.exc is not None:
                self._eval(node.exc)
            return
        if isinstance(node, ast.Assert):
            self._eval(node.test)
            if node.msg is not None:
                self._eval(node.msg)
            return
        # Import / Global / Pass / Delete / ... — nothing to track.

    def _load_target(self, node: ast.expr) -> _Val:
        if isinstance(node, ast.Name):
            return self._env.get(
                node.id,
                (unit_from_name(node.id), f"name '{node.id}'"),
            )
        if isinstance(node, ast.Attribute):
            return (unit_from_name(node.attr),
                    f"attribute '.{node.attr}'")
        return (Unit(), None)

    def _assign(
        self,
        target: ast.expr,
        value: _Val,
        line: int,
        annotation: Optional[Unit] = None,
    ) -> None:
        unit, why = value
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, (Unit(), None), line)
            return
        name: Optional[str] = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name is None:
            return
        declared = unit_from_name(name)
        if annotation is not None:
            declared = join(declared, annotation)
        if (
            declared.scale in _CONCRETE_SCALES
            and unit.scale in _CONCRETE_SCALES
            and declared.scale != unit.scale
        ):
            self._emit(UNIT_MISMATCH, line, (
                f"assignment to '{name}' ({declared.label()}) from a "
                f"{self._describe(unit, why)} value; convert explicitly "
                f"via repro.types.ms_to_s/s_to_ms"
            ))
        if (
            declared.domain in _CONCRETE_DOMAINS
            and unit.domain in _CONCRETE_DOMAINS
            and declared.domain != unit.domain
        ):
            self._emit(TIME_DOMAIN_MIXING, line, (
                f"assignment to '{name}' ({declared.label()}) from a "
                f"{self._describe(unit, why)} value; simulated, host, "
                f"and unix-epoch clocks are unrelated timelines"
            ))
        if isinstance(target, ast.Name):
            # The declared unit is ground truth where it exists; the
            # flowed value fills in what the name leaves open.
            self._env[target.id] = (join(declared, unit), why)

    # -- expressions --------------------------------------------------

    def _eval(self, node: ast.expr) -> _Val:
        if isinstance(node, ast.Name):
            if node.id in self._env:
                return self._env[node.id]
            unit = unit_from_name(node.id)
            return (unit, None if unit.is_empty() else
                    f"name '{node.id}'")
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node)
        if isinstance(node, ast.Compare):
            values = [self._eval(node.left)]
            for comparator in node.comparators:
                values.append(self._eval(comparator))
            for left, right in zip(values, values[1:]):
                self._check_pair(left, right, node.lineno, "comparison")
            return (Unit(), None)
        if isinstance(node, ast.BoolOp):
            out: _Val = (Unit(), None)
            for value in node.values:
                evaluated = self._eval(value)
                out = (join(out[0], evaluated[0]), out[1] or evaluated[1])
            return out
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            body = self._eval(node.body)
            orelse = self._eval(node.orelse)
            return (join(body[0], orelse[0]), body[1] or orelse[1])
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.Subscript):
            value = self._eval(node.value)
            if isinstance(node.slice, ast.expr):
                self._eval(node.slice)
            return value
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            for generator in node.generators:
                self._eval(generator.iter)
            element = self._eval(node.elt)
            return element
        if isinstance(node, ast.DictComp):
            for generator in node.generators:
                self._eval(generator.iter)
            self._eval(node.key)
            self._eval(node.value)
            return (Unit(), None)
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self._eval(value.value)
            return (Unit(), None)
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            out = (Unit(), None)
            for element in node.elts:
                evaluated = self._eval(element)
                out = (join(out[0], evaluated[0]), out[1] or evaluated[1])
            return out
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    self._eval(key)
            for value in node.values:
                self._eval(value)
            return (Unit(), None)
        if isinstance(node, ast.Lambda):
            return (Unit(), None)  # deferred body: separate concern
        if isinstance(node, ast.NamedExpr):
            value = self._eval(node.value)
            self._assign(node.target, value, node.lineno)
            return value
        return (Unit(), None)  # constants and everything else

    def _eval_attribute(self, node: ast.Attribute) -> _Val:
        if node.attr in _SIM_CLOCK_ATTRS:
            return (
                Unit("ms", "sim", "timestamp"),
                f".{node.attr} (simulated clock)",
            )
        if isinstance(node.value, (ast.Call, ast.Subscript,
                                   ast.Attribute)):
            self._eval(node.value)  # nested calls still get checked
        unit = unit_from_name(node.attr)
        return (unit,
                None if unit.is_empty() else f"attribute '.{node.attr}'")

    # -- calls --------------------------------------------------------

    def _eval_call(self, node: ast.Call) -> _Val:
        arg_vals: List[Tuple[ast.expr, _Val]] = []
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                self._eval(arg.value)
            else:
                arg_vals.append((arg, self._eval(arg)))
        kw_vals: List[Tuple[str, ast.expr, _Val]] = []
        for keyword in node.keywords:
            if keyword.arg is None:
                self._eval(keyword.value)
            else:
                kw_vals.append(
                    (keyword.arg, keyword.value,
                     self._eval(keyword.value))
                )

        func = node.func
        resolved = self._info.source.resolve(func)
        anchor = None if resolved is None else _CALL_ANCHORS.get(resolved)
        if anchor is not None:
            return (anchor, f"{resolved}()")

        converter = self._converter_for(func, resolved)
        if converter is not None and arg_vals:
            _, (arg_unit, arg_why) = arg_vals[0]
            return (
                Unit(scale=converter, domain=arg_unit.domain,
                     role=arg_unit.role),
                arg_why,
            )

        if (
            isinstance(func, ast.Name)
            and func.id in _UNIT_PRESERVING_BUILTINS
            and func.id not in self._info.functions
        ):
            out: _Val = (Unit(), None)
            for _, (unit, why) in arg_vals:
                out = (join(out[0], unit), out[1] or why)
            return out

        key = self._resolve_internal(node)
        if key is not None and key in self._a.defs:
            self._bind(key, arg_vals, kw_vals)
            summary = self._a.summaries[key]
            why: Optional[str] = None
            if not summary.returns.is_empty():
                why = f"return of {key}"
                if summary.return_origin is not None:
                    why = f"{why} <- {summary.return_origin}"
            return (summary.returns, why)

        # Unresolved call: fall back to the callee's terminal name.
        terminal: Optional[str] = None
        if resolved is not None:
            terminal = resolved.split(".")[-1]
        elif isinstance(func, ast.Name):
            terminal = func.id
        elif isinstance(func, ast.Attribute):
            terminal = func.attr
        if terminal is not None:
            unit = unit_from_name(terminal)
            if not unit.is_empty():
                return (unit, f"call to {terminal}()")
        return (Unit(), None)

    @staticmethod
    def _converter_for(
        func: ast.expr, resolved: Optional[str]
    ) -> Optional[str]:
        """Result scale of a sanctioned conversion-helper call."""
        name: Optional[str] = None
        if resolved is not None:
            name = resolved.split(".")[-1]
        elif isinstance(func, ast.Name):
            name = func.id
        if name == "ms_to_s":
            return "s"
        if name == "s_to_ms":
            return "ms"
        return None

    def _resolve_internal(self, node: ast.Call) -> Optional[str]:
        raw = _RawCall(owner=self._fn.key, node=node,
                       enclosing_class=self._fn.enclosing_class)
        edge = self._a.model._resolve_call(self._info, raw)
        if edge is not None and edge.internal:
            return edge.target
        return None

    def _bind(
        self,
        callee_key: str,
        arg_vals: List[Tuple[ast.expr, _Val]],
        kw_vals: List[Tuple[str, ast.expr, _Val]],
    ) -> None:
        callee = self._a.defs[callee_key]
        summary = self._a.summaries[callee_key]
        start = 1 if callee.params and callee.params[0] in (
            "self", "cls"
        ) else 0
        pairs: List[Tuple[str, ast.expr, _Val]] = []
        for index, (arg_node, value) in enumerate(arg_vals):
            position = start + index
            if position < len(callee.params):
                pairs.append((callee.params[position], arg_node, value))
        for name, arg_node, value in kw_vals:
            if name in callee.declared:
                pairs.append((name, arg_node, value))
        for name, arg_node, (unit, why) in pairs:
            declared = callee.declared[name]
            line = getattr(arg_node, "lineno", 1)
            if (
                unit.scale in _CONCRETE_SCALES
                and declared.scale in _CONCRETE_SCALES
                and unit.scale != declared.scale
            ):
                self._emit(UNIT_MISMATCH, line, (
                    f"{self._fn.qualname} passes a "
                    f"{self._describe(unit, why)} value into parameter "
                    f"'{name}' of {callee_key}, declared "
                    f"{declared.label()}; convert explicitly via "
                    f"repro.types.ms_to_s/s_to_ms"
                ))
            if (
                unit.domain in _CONCRETE_DOMAINS
                and declared.domain in _CONCRETE_DOMAINS
                and unit.domain != declared.domain
            ):
                self._emit(TIME_DOMAIN_MIXING, line, (
                    f"{self._fn.qualname} passes a "
                    f"{self._describe(unit, why)} value into parameter "
                    f"'{name}' of {callee_key}, declared "
                    f"{declared.label()}; simulated, host, and "
                    f"unix-epoch clocks are unrelated timelines"
                ))
            flowed = Unit(
                scale=unit.scale if declared.scale is None else None,
                domain=unit.domain if declared.domain is None else None,
                role=unit.role if declared.role is None else None,
            )
            if flowed.is_empty():
                continue
            old = summary.params[name]
            new = join(old, flowed)
            if new != old:
                summary.params[name] = new
                self._changed = True
            if (
                new.domain in _CONCRETE_DOMAINS
                and name not in summary.param_origin
            ):
                source = why if why is not None else unit.label()
                summary.param_origin[name] = (
                    f"{source} bound at {self._fn.path}:{line} in "
                    f"{self._fn.qualname}"
                )

    # -- arithmetic ---------------------------------------------------

    def _check_pair(
        self, left: _Val, right: _Val, line: int, context: str
    ) -> Tuple[Optional[str], Optional[str]]:
        """Emit scale/domain conflicts; returns the joined fields
        (``None`` where a conflict was already reported)."""
        (lu, lwhy), (ru, rwhy) = left, right
        scale: Optional[str]
        domain: Optional[str]
        if (
            lu.scale in _CONCRETE_SCALES
            and ru.scale in _CONCRETE_SCALES
            and lu.scale != ru.scale
        ):
            self._emit(UNIT_MISMATCH, line, (
                f"{context} mixes {self._describe(lu, lwhy)} with "
                f"{self._describe(ru, rwhy)}; convert explicitly via "
                f"repro.types.ms_to_s/s_to_ms"
            ))
            scale = None
        else:
            scale = _join_field(lu.scale, ru.scale)
        if (
            lu.domain in _CONCRETE_DOMAINS
            and ru.domain in _CONCRETE_DOMAINS
            and lu.domain != ru.domain
        ):
            self._emit(TIME_DOMAIN_MIXING, line, (
                f"{context} mixes {self._describe(lu, lwhy)} with "
                f"{self._describe(ru, rwhy)}; simulated, host, and "
                f"unix-epoch clocks are unrelated timelines"
            ))
            domain = None
        else:
            domain = _join_field(lu.domain, ru.domain)
        return scale, domain

    def _combine_additive(
        self, left: _Val, right: _Val, line: int, op_label: str
    ) -> _Val:
        scale, domain = self._check_pair(left, right, line,
                                         f"'{op_label}' arithmetic")
        (lu, lwhy), (ru, rwhy) = left, right
        role: Optional[str]
        if op_label == "Sub" and lu.role == "timestamp" and (
            ru.role == "timestamp"
        ):
            role = "duration"
        elif "timestamp" in (lu.role, ru.role) and "duration" in (
            lu.role, ru.role
        ):
            role = "timestamp"
        else:
            role = _join_field(lu.role, ru.role)
        return (Unit(scale=scale, domain=domain, role=role),
                lwhy or rwhy)

    @staticmethod
    def _magic_constant(node: ast.expr) -> bool:
        return isinstance(node, ast.Constant) and isinstance(
            node.value, (int, float)
        ) and float(node.value) == 1000.0

    def _eval_binop(self, node: ast.BinOp) -> _Val:
        left = self._eval(node.left)
        right = self._eval(node.right)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            return self._combine_additive(
                left, right, node.lineno, type(node.op).__name__
            )
        if isinstance(node.op, (ast.Mult, ast.Div, ast.FloorDiv,
                                ast.Mod)):
            return self._eval_scaling(node, left, right)
        return (Unit(), None)

    def _eval_scaling(
        self, node: ast.BinOp, left: _Val, right: _Val
    ) -> _Val:
        (lu, lwhy), (ru, rwhy) = left, right
        is_div = isinstance(node.op, (ast.Div, ast.FloorDiv))
        is_mult = isinstance(node.op, ast.Mult)

        operand: Optional[_Val] = None
        if (is_div or is_mult) and self._magic_constant(node.right) and (
            lu.scale in _CONCRETE_SCALES
        ):
            operand = left
        elif is_mult and self._magic_constant(node.left) and (
            ru.scale in _CONCRETE_SCALES
        ):
            operand = right
        if operand is not None and self._fn.module != _CONVERSION_HOME:
            unit, why = operand
            helper = "repro.types.ms_to_s" if (
                is_div and unit.scale == "ms"
            ) else "repro.types.s_to_ms" if (
                is_mult and unit.scale == "s"
            ) else "repro.types.ms_to_s/s_to_ms"
            literal = "/ 1000" if is_div else "* 1000"
            self._emit(MAGIC_UNIT_CONVERSION, node.lineno, (
                f"bare '{literal}' conversion of a "
                f"{self._describe(unit, why)} value; route it through "
                f"{helper} (or repro.types.MS_PER_S for rates) so time "
                f"conversions stay greppable and dimension-checked"
            ))
        if operand is not None:
            unit = operand[0]
            converted: Optional[str]
            if is_div:
                converted = "s" if unit.scale == "ms" else None
            else:
                converted = "ms" if unit.scale == "s" else None
            return (
                Unit(scale=converted, domain=unit.domain,
                     role=unit.role),
                operand[1],
            )

        if isinstance(node.op, ast.Mod):
            # t % interval keeps the unit when both sides share it.
            if lu.scale is not None:
                return (lu, lwhy)
            return (Unit(), None)
        if lu.scale is not None and ru.scale is None:
            return (lu, lwhy)  # time scaled by a dimensionless factor
        if is_mult and ru.scale is not None and lu.scale is None:
            return (ru, rwhy)
        return (Unit(), None)  # time/time, scalar/time, scalar/scalar


# -- the boundary rule (purely local) ---------------------------------


def _boundary_findings(analysis: UnitAnalysis) -> List[Finding]:
    findings: List[Finding] = []
    for key in sorted(analysis.defs):
        fn = analysis.defs[key]
        if not fn.public or fn.node is None:
            continue
        info = analysis.model.modules[fn.module]
        for name in fn.params:
            if name in ("self", "cls"):
                continue
            declared = fn.declared[name]
            if declared.scale is not None or declared.domain is not None:
                continue
            parts = name.lower().split("_")
            if not any(part in _BOUNDARY_WORDS for part in parts):
                continue
            if info.source.is_suppressed(
                UNITLESS_DURATION_BOUNDARY, fn.line
            ):
                continue
            findings.append(Finding(
                rule_id=UNITLESS_DURATION_BOUNDARY,
                path=fn.path,
                line=fn.line,
                message=(
                    f"public parameter '{name}' of {fn.qualname} names "
                    f"a duration/timestamp but declares no unit: "
                    f"suffix it (_ms/_s/_unix) or annotate it with a "
                    f"repro.types time alias so call sites know what "
                    f"to pass"
                ),
            ))
    return findings


# -- the analysis entry point -----------------------------------------

#: Fixpoint safety valve; the per-field lattice has height 2, so real
#: trees converge in a handful of rounds.
_MAX_ROUNDS = 20


def analyze_units(model: ProjectModel) -> UnitAnalysis:
    """Run the whole dimensional pass over a built project model."""
    defs: Dict[str, _FnDef] = {}
    for name in sorted(model.modules):
        _DefCollector(model.modules[name], defs).run()
    summaries = {
        key: FnUnits(params={
            name: defs[key].declared[name] for name in defs[key].params
        })
        for key in defs
    }
    analysis = UnitAnalysis(model=model, defs=defs, summaries=summaries)
    for _ in range(_MAX_ROUNDS):
        changed = False
        for key in sorted(defs):
            if _BodyAnalyzer(analysis, defs[key], report=False).run():
                changed = True
        if not changed:
            break
    findings: List[Finding] = []
    for key in sorted(defs):
        analyzer = _BodyAnalyzer(analysis, defs[key], report=True)
        analyzer.run()
        findings.extend(analyzer.findings)
    findings.extend(_boundary_findings(analysis))
    analysis.findings = sort_findings(findings)
    return analysis


def unit_findings(analysis: UnitAnalysis) -> List[Finding]:
    """The four rules' findings, canonically ordered."""
    return list(analysis.findings)


def unit_rule_catalog() -> Dict[str, str]:
    """``rule id -> summary`` for the dimensional rules."""
    return {rule.rule_id: rule.summary for rule in UNIT_RULES}


# -- the unit report (CLI / CI artifact) ------------------------------


def unit_report(
    analysis: UnitAnalysis,
    findings: Iterable[Finding],
    function: Optional[str] = None,
) -> Dict[str, object]:
    """Deterministic JSON-ready dump of the per-function unit table.

    Every function in the model (plus each module's ``<module>``
    pseudo-function) gets a row: per-parameter unit labels and the
    return unit.  ``function`` filters like ``repro lint effects
    --function`` — exact key, qualname, or bare-name match.
    """
    model = analysis.model

    def matches(key: str, qualname: str) -> bool:
        if function is None:
            return True
        return function in (key, qualname) or key.endswith(
            f":{function}"
        )

    functions: List[Dict[str, object]] = []
    for key in sorted(model.functions):
        node = model.functions[key]
        if not matches(key, node.qualname):
            continue
        fn = analysis.defs.get(key)
        summary = analysis.summaries.get(key)
        if fn is None or summary is None:
            params: Dict[str, str] = {}
            returns = Unit()
            public = False
        else:
            params = {
                name: summary.params[name].label()
                for name in fn.params
            }
            returns = summary.returns
            public = fn.public
        functions.append({
            "function": key,
            "path": node.path,
            "line": node.line,
            "params": params,
            "returns": returns.label(),
            "public": public,
        })
    return {
        "functions": functions,
        "findings": [finding.to_dict() for finding in findings],
        "rules": unit_rule_catalog(),
    }
