"""Finding records emitted by :mod:`repro.lint` checkers.

A :class:`Finding` pins one rule violation to a file and line.  Findings
order deterministically (path, then line, then column, then rule id) so
reports, baselines, and CI logs are stable across runs and platforms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, Union


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location.

    >>> f = Finding("rng-stdlib-random", "src/a.py", 3, "no random.random()")
    >>> f.location
    'src/a.py:3'
    """

    rule_id: str
    path: str
    line: int
    message: str
    col: int = 0

    @property
    def location(self) -> str:
        """``path:line`` — the clickable anchor used by the text report."""
        return f"{self.path}:{self.line}"

    @property
    def baseline_key(self) -> str:
        """The ``path::rule`` key findings are grandfathered under.

        Deliberately excludes the line number: baselined findings should
        survive unrelated edits that shift lines, and tighten (one fewer
        allowed) as soon as an occurrence is actually removed.
        """
        return f"{self.path}::{self.rule_id}"

    def sort_key(self) -> Tuple[str, int, int, str, str]:
        return (self.path, self.line, self.col, self.rule_id, self.message)

    def to_dict(self) -> Dict[str, Union[str, int]]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


def sort_findings(findings: List[Finding]) -> List[Finding]:
    """Return ``findings`` in the canonical deterministic order."""
    return sorted(findings, key=Finding.sort_key)
