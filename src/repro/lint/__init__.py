"""``repro.lint`` — AST-based invariant linting for the repro codebase.

The runtime's headline guarantee (*parallel == serial, bit-identical*;
see ``docs/performance.md``) rests on codebase-wide conventions: all
randomness flows through explicit seeded ``numpy.random.Generator``
streams, simulator code reads simulated time only, scheduler work units
are module-level picklables, and nothing iterates filesystem listings
or sets in an order-sensitive way.  This package turns those
conventions into machine-checked invariants: a small checker framework
(:mod:`repro.lint.base`), six built-in checkers
(:mod:`repro.lint.checkers`), inline ``# repro-lint: allow[rule-id]``
suppressions, a grandfathering baseline (:mod:`repro.lint.baseline`),
and text/JSON reporters — all wired up as the ``repro lint`` CLI
subcommand (:mod:`repro.lint.cli`).

Library use::

    from pathlib import Path
    from repro.lint import lint_paths

    report = lint_paths([Path("src")])
    assert report.clean, [f.location for f in report.findings]
"""

from repro.lint.base import Checker, Rule
from repro.lint.baseline import Baseline
from repro.lint.checkers import (
    ForkSafetyChecker,
    IterationOrderChecker,
    MutableDefaultChecker,
    RngDisciplineChecker,
    SimulatedTimeChecker,
    SwallowedExceptionChecker,
    default_checkers,
    rule_catalog,
)
from repro.lint.findings import Finding, sort_findings
from repro.lint.project import (
    PROJECT_RULES,
    ProjectModel,
    project_rule_catalog,
    run_project_passes,
)
from repro.lint.reporters import render_json, render_text
from repro.lint.runner import (
    PARSE_ERROR,
    LintReport,
    iter_python_files,
    lint_paths,
    lint_source,
)
from repro.lint.source import SourceFile
from repro.lint.units import (
    UNIT_RULES,
    UnitAnalysis,
    analyze_units,
    unit_findings,
    unit_report,
    unit_rule_catalog,
)

__all__ = [
    "Baseline",
    "Checker",
    "Finding",
    "ForkSafetyChecker",
    "IterationOrderChecker",
    "LintReport",
    "MutableDefaultChecker",
    "PARSE_ERROR",
    "PROJECT_RULES",
    "ProjectModel",
    "RngDisciplineChecker",
    "Rule",
    "SimulatedTimeChecker",
    "SourceFile",
    "SwallowedExceptionChecker",
    "UNIT_RULES",
    "UnitAnalysis",
    "analyze_units",
    "default_checkers",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "project_rule_catalog",
    "render_json",
    "render_text",
    "rule_catalog",
    "run_project_passes",
    "sort_findings",
    "unit_findings",
    "unit_report",
    "unit_rule_catalog",
]
