"""The built-in invariant checkers.

Each checker machine-checks one convention the runtime's determinism
guarantee rests on (see ``docs/static-analysis.md`` for the rationale
and ``docs/performance.md`` for the guarantee itself):

* :class:`RngDisciplineChecker` — all randomness flows through explicit
  ``numpy.random.Generator`` streams (``repro.utils.rng``), never the
  stdlib ``random`` module or numpy's legacy global state.
* :class:`SimulatedTimeChecker` — simulator/experiment/pipeline code
  reads simulated time only; host clocks live in ``repro.obs``.
* :class:`ForkSafetyChecker` — work units handed to the process pool
  must be module-level picklables.
* :class:`IterationOrderChecker` — no unsorted filesystem listings or
  set iteration where order can leak into outputs or RNG consumption.
* :class:`MutableDefaultChecker` — no mutable default arguments.
* :class:`SwallowedExceptionChecker` — no silently-swallowed broad
  exception handlers (``except: pass`` and friends): fault-injection
  bugs hide exactly there.

Checkers are syntactic: they prove the *absence of known-bad shapes*,
not the correctness of arbitrary code, and every rule is suppressible
with ``# repro-lint: allow[rule-id]`` where a human has checked the
exception (each shipped pragma should say why).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.base import Checker, Rule
from repro.lint.findings import Finding
from repro.lint.source import SourceFile

RNG_STDLIB = "rng-stdlib-random"
RNG_NUMPY_GLOBAL = "rng-numpy-global"
RNG_UNSEEDED = "rng-unseeded-default-rng"
SIM_WALLCLOCK = "sim-wallclock"
FORK_UNSAFE = "fork-unsafe-task"
ITER_ORDER = "iter-order"
MUTABLE_DEFAULT = "mutable-default"
SWALLOWED_EXCEPTION = "swallowed-exception"

#: Host-clock reads banned in simulated-time code.  Shared with the
#: cross-module pass (:mod:`repro.lint.project`), which treats the same
#: calls as taint sinks when reached *through helpers*.
WALLCLOCK_BANNED = frozenset({
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: ``numpy.random`` attributes that are generator plumbing, not the
#: legacy global-state surface.  Shared with :mod:`repro.lint.project`.
NUMPY_RNG_ALLOWED = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})


class RngDisciplineChecker(Checker):
    """All randomness must flow through seeded ``np.random.Generator``s."""

    name = "rng-discipline"
    rules = (
        Rule(RNG_STDLIB,
             "stdlib random.* call; use a numpy Generator stream"),
        Rule(RNG_NUMPY_GLOBAL,
             "legacy numpy global-state RNG call (np.random.seed/rand/...)"),
        Rule(RNG_UNSEEDED,
             "np.random.default_rng() without a seed outside utils/rng.py"),
    )

    #: numpy.random attributes that are generator plumbing, not the
    #: legacy global-state surface.
    _NUMPY_ALLOWED = NUMPY_RNG_ALLOWED

    #: The one module allowed to normalise a None seed into OS entropy.
    _UNSEEDED_ALLOWED_SUFFIX = "utils/rng.py"

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = source.resolve(node.func)
            if resolved is None:
                continue
            if resolved == "random" or resolved.startswith("random."):
                yield self.finding(
                    RNG_STDLIB, source, node.lineno,
                    f"call to stdlib {resolved!r}: all randomness must "
                    f"flow through a seeded numpy Generator "
                    f"(repro.utils.rng)",
                    col=node.col_offset,
                )
            elif resolved.startswith("numpy.random."):
                tail = resolved.split(".")[2]
                if tail not in self._NUMPY_ALLOWED:
                    yield self.finding(
                        RNG_NUMPY_GLOBAL, source, node.lineno,
                        f"legacy global-state numpy RNG {resolved!r}: "
                        f"seed an explicit np.random.Generator instead",
                        col=node.col_offset,
                    )
                elif (
                    tail == "default_rng"
                    and not node.args
                    and not node.keywords
                    and not source.display_path.endswith(
                        self._UNSEEDED_ALLOWED_SUFFIX
                    )
                ):
                    yield self.finding(
                        RNG_UNSEEDED, source, node.lineno,
                        "np.random.default_rng() without a seed draws OS "
                        "entropy; pass a seed (only repro.utils.rng may "
                        "normalise None)",
                        col=node.col_offset,
                    )


class SimulatedTimeChecker(Checker):
    """Simulation-facing code must read simulated time, never host clocks."""

    name = "simulated-time"
    rules = (
        Rule(SIM_WALLCLOCK,
             "host wall-clock read inside simulated-time code"),
    )

    #: Directories (path components) the ban applies to.
    _SCOPED_DIRS = frozenset({"simulator", "experiments", "core", "obs"})

    #: Genuine profiling is centralised here; everything else must route
    #: wall-clock reads through it (e.g. ``perf_seconds``).
    _ALLOWED_SUFFIXES = ("obs/profiling.py",)

    _BANNED = WALLCLOCK_BANNED

    def _in_scope(self, source: SourceFile) -> bool:
        for suffix in self._ALLOWED_SUFFIXES:
            if source.display_path.endswith(suffix):
                return False
        directories = source.path_parts()[:-1]
        return any(part in self._SCOPED_DIRS for part in directories)

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if not self._in_scope(source):
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            resolved = source.resolve(node)
            if resolved in self._BANNED:
                yield self.finding(
                    SIM_WALLCLOCK, source, node.lineno,
                    f"{resolved} reads the host clock inside "
                    f"simulated-time code; use engine/event time, or "
                    f"route profiling through repro.obs.profiling",
                    col=node.col_offset,
                )


class ForkSafetyChecker(Checker):
    """Work units given to the task scheduler must be module-level."""

    name = "fork-safety"
    rules = (
        Rule(FORK_UNSAFE,
             "non-picklable callable handed to map_tasks/TaskScheduler"),
    )

    _METHODS = frozenset({"map", "submit"})

    def check(self, source: SourceFile) -> Iterator[Finding]:
        nested = self._nested_def_names(source)
        lambda_names = self._lambda_bound_names(source)
        scheduler_names = self._scheduler_names(source)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            if not self._is_task_dispatch(source, node, scheduler_names):
                continue
            if not node.args:
                continue
            reason = self._unpicklable_reason(
                source, node.args[0], nested, lambda_names
            )
            if reason is not None:
                yield self.finding(
                    FORK_UNSAFE, source, node.lineno,
                    f"{reason} cannot be pickled by the fork pool; pass "
                    f"a module-level function (see repro.runtime."
                    f"scheduler)",
                    col=node.col_offset,
                )

    def _is_task_dispatch(
        self, source: SourceFile, node: ast.Call, scheduler_names: Set[str]
    ) -> bool:
        func = node.func
        resolved = source.resolve(func)
        if resolved is not None and (
            resolved == "map_tasks" or resolved.endswith(".map_tasks")
        ):
            return True
        if (
            resolved is None
            and isinstance(func, ast.Name)
            and func.id == "map_tasks"
        ):
            return True
        if isinstance(func, ast.Attribute) and func.attr in self._METHODS:
            receiver = func.value
            if isinstance(receiver, ast.Name):
                name = receiver.id
                return name in scheduler_names or "scheduler" in name.lower()
            if isinstance(receiver, ast.Call):
                ctor = source.resolve(receiver.func)
                if ctor is not None and ctor.endswith("TaskScheduler"):
                    return True
                return (
                    isinstance(receiver.func, ast.Name)
                    and receiver.func.id == "TaskScheduler"
                )
        return False

    def _unpicklable_reason(
        self,
        source: SourceFile,
        arg: ast.AST,
        nested: Set[str],
        lambda_names: Set[str],
    ) -> Optional[str]:
        if isinstance(arg, ast.Lambda):
            return "a lambda"
        if isinstance(arg, ast.Name):
            if arg.id in nested:
                return f"nested function {arg.id!r} (a closure)"
            if arg.id in lambda_names:
                return f"{arg.id!r} (bound to a lambda)"
            return None
        if isinstance(arg, ast.Attribute):
            if source.resolve(arg) is not None:
                return None  # module-level attribute; picklable by name
            return f"bound method / object attribute {arg.attr!r}"
        if isinstance(arg, ast.Call):
            ctor = source.resolve(arg.func)
            is_partial = ctor == "functools.partial" or (
                isinstance(arg.func, ast.Name) and arg.func.id == "partial"
            )
            if is_partial and arg.args:
                return self._unpicklable_reason(
                    source, arg.args[0], nested, lambda_names
                )
        return None

    def _nested_def_names(self, source: SourceFile) -> Set[str]:
        names: Set[str] = set()
        parents = source.parents
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            ancestor = parents.get(node)
            while ancestor is not None:
                if isinstance(
                    ancestor, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.Lambda)
                ):
                    names.add(node.name)
                    break
                ancestor = parents.get(ancestor)
        return names

    def _lambda_bound_names(self, source: SourceFile) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(source.tree):
            value: Optional[ast.AST] = None
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                value, targets = node.value, list(node.targets)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, targets = node.value, [node.target]
            if isinstance(value, ast.Lambda):
                for target in targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    def _scheduler_names(self, source: SourceFile) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            if not isinstance(value, ast.Call):
                continue
            ctor = source.resolve(value.func)
            is_scheduler = (ctor is not None and
                            ctor.endswith("TaskScheduler")) or (
                isinstance(value.func, ast.Name)
                and value.func.id == "TaskScheduler"
            )
            if not is_scheduler:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return names


class IterationOrderChecker(Checker):
    """No unsorted filesystem listings or set iteration."""

    name = "iteration-order"
    rules = (
        Rule(ITER_ORDER,
             "nondeterministic iteration order (unsorted listing / set)"),
    )

    _LISTING_CALLS = frozenset({
        "os.listdir", "os.scandir", "os.walk", "os.fwalk",
        "glob.glob", "glob.iglob",
    })
    _PATHLIB_METHODS = frozenset({"iterdir", "glob", "rglob", "walk"})
    _SEQUENCING_BUILTINS = frozenset({"list", "tuple", "enumerate", "iter"})

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            listing = self._listing_label(source, node)
            if listing is not None and not self._sorted_wrapped(source, node):
                yield self.finding(
                    ITER_ORDER, source, node.lineno,
                    f"{listing} order is filesystem-dependent; wrap the "
                    f"call in sorted(...)",
                    col=node.col_offset,
                )
        for node in ast.walk(source.tree):
            if not self._is_set_expression(source, node):
                continue
            consumed = self._ordered_consumption(source, node)
            if consumed is not None:
                yield self.finding(
                    ITER_ORDER, source, node.lineno,
                    f"set iteration order is unspecified ({consumed}); "
                    f"iterate sorted(...) instead",
                    col=node.col_offset,
                )

    def _listing_label(
        self, source: SourceFile, node: ast.Call
    ) -> Optional[str]:
        resolved = source.resolve(node.func)
        if resolved in self._LISTING_CALLS:
            return resolved
        func = node.func
        if (
            resolved is None
            and isinstance(func, ast.Attribute)
            and func.attr in self._PATHLIB_METHODS
        ):
            return f".{func.attr}()"
        return None

    def _sorted_wrapped(self, source: SourceFile, node: ast.AST) -> bool:
        parent = source.parents.get(node)
        return (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id == "sorted"
        )

    def _is_set_expression(self, source: SourceFile, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
            and source.resolve(node.func) is None
        )

    def _ordered_consumption(
        self, source: SourceFile, node: ast.AST
    ) -> Optional[str]:
        """How ``node`` is consumed in an order-sensitive way, if it is."""
        parent = source.parents.get(node)
        if isinstance(parent, (ast.For, ast.AsyncFor)) and parent.iter is node:
            return "for loop"
        if isinstance(parent, ast.comprehension) and parent.iter is node:
            return "comprehension"
        if (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id in self._SEQUENCING_BUILTINS
            and parent.args
            and parent.args[0] is node
        ):
            return f"{parent.func.id}(...)"
        return None


class MutableDefaultChecker(Checker):
    """No mutable default argument values, anywhere."""

    name = "mutable-defaults"
    rules = (
        Rule(MUTABLE_DEFAULT,
             "mutable default argument (shared across calls)"),
    )

    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})
    _MUTABLE_DOTTED = frozenset({
        "collections.defaultdict", "collections.OrderedDict",
        "collections.deque", "collections.Counter",
    })

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            label = getattr(node, "name", "<lambda>")
            defaults: List[Optional[ast.expr]] = [
                *node.args.defaults, *node.args.kw_defaults
            ]
            for default in defaults:
                if default is None:
                    continue
                if self._is_mutable(source, default):
                    yield self.finding(
                        MUTABLE_DEFAULT, source, default.lineno,
                        f"mutable default in {label!r} is shared across "
                        f"calls; default to None and create inside",
                        col=default.col_offset,
                    )

    def _is_mutable(self, source: SourceFile, node: ast.expr) -> bool:
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
             ast.SetComp),
        ):
            return True
        if isinstance(node, ast.Call):
            resolved = source.resolve(node.func)
            if resolved in self._MUTABLE_DOTTED:
                return True
            return (
                resolved is None
                and isinstance(node.func, ast.Name)
                and node.func.id in self._MUTABLE_CALLS
            )
        return False


class SwallowedExceptionChecker(Checker):
    """No broad exception handlers that silently discard the error.

    A bare ``except:`` or ``except Exception/BaseException:`` whose body
    neither re-raises nor reports (logging / ``warnings.warn`` /
    ``traceback.print_exc`` / ``print``) turns every unexpected failure
    into silence — in a fault-injection codebase that means an injected
    fault can be eaten instead of surfacing as a degraded-mode signal.
    Narrow handlers (``except KeyError:``) are fine: catching a named
    exception is a statement of intent.
    """

    name = "exception-discipline"
    rules = (
        Rule(SWALLOWED_EXCEPTION,
             "broad exception handler with no re-raise or report"),
    )

    _BROAD = frozenset({"Exception", "BaseException"})
    _LOG_METHODS = frozenset({
        "debug", "info", "warning", "error", "exception", "critical", "log",
    })
    _REPORT_CALLS = frozenset({
        "warnings.warn", "traceback.print_exc", "traceback.format_exc",
    })

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            label = self._broad_label(source, node.type)
            if label is None:
                continue
            if self._handles(source, node.body):
                continue
            yield self.finding(
                SWALLOWED_EXCEPTION, source, node.lineno,
                f"{label} swallows every error silently; re-raise, "
                f"narrow the exception type, or report it "
                f"(logging/warnings)",
                col=node.col_offset,
            )

    def _broad_label(
        self, source: SourceFile, node: Optional[ast.expr]
    ) -> Optional[str]:
        """A display label when the handler is broad, else None."""
        if node is None:
            return "bare 'except:'"
        names: List[ast.expr] = (
            list(node.elts) if isinstance(node, ast.Tuple) else [node]
        )
        for name in names:
            resolved = source.resolve(name)
            if resolved in self._BROAD:
                return f"'except {resolved}:'"
            if isinstance(name, ast.Name) and name.id in self._BROAD:
                return f"'except {name.id}:'"
        return None

    def _handles(self, source: SourceFile, body: List[ast.stmt]) -> bool:
        """True when the handler re-raises or reports the error."""
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Raise):
                    return True
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                resolved = source.resolve(func)
                if resolved in self._REPORT_CALLS:
                    return True
                if isinstance(func, ast.Attribute):
                    if func.attr in self._LOG_METHODS:
                        return True
                elif isinstance(func, ast.Name) and func.id == "print":
                    return True
        return False


def default_checkers() -> Tuple[Checker, ...]:
    """Fresh instances of every built-in checker, in stable order."""
    return (
        RngDisciplineChecker(),
        SimulatedTimeChecker(),
        ForkSafetyChecker(),
        IterationOrderChecker(),
        MutableDefaultChecker(),
        SwallowedExceptionChecker(),
    )


def rule_catalog() -> Dict[str, str]:
    """``rule id -> summary`` for every rule any built-in checker emits."""
    catalog: Dict[str, str] = {}
    for checker in default_checkers():
        for rule in checker.rules:
            catalog[rule.rule_id] = rule.summary
    return catalog
