"""Whole-program analysis: module graph, call graph, taint passes.

The per-file checkers in :mod:`repro.lint.checkers` are deliberately
syntactic — they prove the absence of known-bad *shapes* inside one
file.  That leaves a blind spot the determinism contract cannot afford:
a simulator function that calls an innocuous-looking helper in
``utils/`` which *itself* calls ``time.time()`` passes every per-file
rule, yet still couples results to host speed.

This module closes the gap.  :class:`ProjectModel` parses nothing
itself — it is built from the :class:`~repro.lint.source.SourceFile`
objects the runner already produced — and links them into a
module-level call graph:

* every ``def`` (and each module's top-level code, as the pseudo
  function ``<module>``) becomes a node keyed ``module:qualname``;
* call edges are resolved through import aliases (including re-exports
  through package ``__init__`` modules), module-local names,
  ``self.method()`` / ``cls.method()`` within a class, and method calls
  on locals whose constructor is visible in the same scope
  (``engine = SimulationEngine(...); engine.run()`` resolves to
  ``SimulationEngine.run`` — a heuristic: rebinding the name to a
  non-constructor value poisons the entry, but duck-typed reuse of the
  name across branches is not modelled).

Three inter-procedural rules run over the graph:

* ``transitive-wallclock`` — a function in ``simulator/``,
  ``experiments/`` or ``core/`` reaches a host-clock read through one
  or more helpers.  Direct reads are the per-file ``sim-wallclock``
  rule's job; this rule reports *chains* (length >= 2) and prints the
  full call path to the sink.  Edges into ``repro.obs.profiling`` are
  never followed: ``perf_seconds()`` is the sanctioned clock.
* ``transitive-rng`` — same idea for stdlib ``random`` and numpy's
  legacy global-state API reached through helpers.
* ``stream-label-collision`` — two ``RngFactory.stream(...)`` /
  ``.fork(...)`` call sites passing the same literal label from the
  same factory expression in the same scope (the second site silently
  receives the *cached* stream of the first and couples their draw
  sequences), or passing an opaque non-literal label (f-strings are
  fine — they are content-keyed by construction; a bare variable is
  not auditable).  ``src/repro/utils/rng.py`` itself is exempt.

The analysis is conservative where it must be (attribute calls on
arbitrary objects are not resolved) and honours pragmas twice: a
pragma on the *sink* line (e.g. ``allow[sim-wallclock]``) stops taint
at the source, and a pragma on the reported definition suppresses the
finding itself.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.base import Rule
from repro.lint.checkers import (
    NUMPY_RNG_ALLOWED,
    RNG_NUMPY_GLOBAL,
    RNG_STDLIB,
    SIM_WALLCLOCK,
    WALLCLOCK_BANNED,
)
from repro.lint.findings import Finding, sort_findings
from repro.lint.source import SourceFile

TRANSITIVE_WALLCLOCK = "transitive-wallclock"
TRANSITIVE_RNG = "transitive-rng"
STREAM_LABEL_COLLISION = "stream-label-collision"

PROJECT_RULES: Tuple[Rule, ...] = (
    Rule(TRANSITIVE_WALLCLOCK,
         "host clock reachable through helper calls from simulated-time "
         "code"),
    Rule(TRANSITIVE_RNG,
         "stdlib random / numpy global RNG reachable through helper calls"),
    Rule(STREAM_LABEL_COLLISION,
         "duplicate or non-literal RngFactory stream/fork label"),
)

#: Directories whose functions count as entry points for taint reporting.
_ENTRY_DIRS = frozenset({"simulator", "experiments", "core"})

#: Modules taint never flows through (the sanctioned clock boundary and
#: the entropy boundary).
_WALLCLOCK_STOP_MODULES = frozenset({"repro.obs.profiling"})
_RNG_STOP_MODULES = frozenset({"repro.utils.rng"})

#: The factory module itself derives streams; its internals are exempt
#: from the label rule.
_RNG_MODULE_SUFFIX = "utils/rng.py"

#: Pseudo qualname for a module's top-level code.
MODULE_SCOPE = "<module>"


@dataclass(frozen=True)
class CallEdge:
    """One resolved call: ``internal`` targets are function keys."""

    target: str
    line: int
    internal: bool


@dataclass(frozen=True)
class _Sink:
    """A direct banned call anchoring a taint chain."""

    target: str
    path: str
    line: int


@dataclass
class FunctionNode:
    """One function (or ``<module>`` pseudo-function) in the graph."""

    key: str
    module: str
    qualname: str
    path: str
    line: int
    edges: List[CallEdge] = field(default_factory=list)


@dataclass(frozen=True)
class _RawCall:
    """A call site awaiting cross-module resolution."""

    owner: str
    node: ast.Call
    enclosing_class: Optional[str]


@dataclass(frozen=True)
class StreamCall:
    """One ``<factory>.stream(label)`` / ``.fork(label)`` call site."""

    owner: str
    receiver: str
    method: str
    label: ast.expr
    line: int
    col: int


@dataclass
class ModuleInfo:
    """One parsed module and its locally-defined names."""

    name: str
    source: SourceFile
    functions: Dict[str, str] = field(default_factory=dict)  # qualname -> key
    classes: Set[str] = field(default_factory=set)
    raw_calls: List[_RawCall] = field(default_factory=list)
    stream_calls: List[StreamCall] = field(default_factory=list)
    #: ``(owner key, local name) -> constructor func expr`` for locals
    #: assigned from a call; ``None`` marks a poisoned (rebound) entry.
    var_ctors: Dict[Tuple[str, str], Optional[ast.expr]] = field(
        default_factory=dict
    )


def module_name_for(display_path: str) -> str:
    """Dotted module name for a display path.

    Anchored at the ``repro`` package component when present
    (``src/repro/utils/rng.py`` -> ``repro.utils.rng``); otherwise the
    bare stem, so out-of-tree fixture files still get distinct names.
    """
    parts = display_path.split("/")
    stem = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
    try:
        anchor = parts.index("repro")
    except ValueError:
        return stem
    dotted = parts[anchor:-1] + ([] if stem == "__init__" else [stem])
    return ".".join(dotted) if dotted else stem


def _is_factory_expr(source: SourceFile, node: ast.expr) -> bool:
    """Heuristic: does this expression denote an ``RngFactory``?"""
    if isinstance(node, ast.Call):
        func = node.func
        resolved = source.resolve(func)
        if resolved is not None and resolved.endswith("RngFactory"):
            return True
        if isinstance(func, ast.Name) and func.id == "RngFactory":
            return True
        if isinstance(func, ast.Attribute) and func.attr == "fork":
            # ``factory.fork("rep0").stream("x")`` — forks yield factories.
            return _is_factory_expr(source, func.value)
        return False
    terminal: Optional[str] = None
    if isinstance(node, ast.Name):
        terminal = node.id
    elif isinstance(node, ast.Attribute):
        terminal = node.attr
    return terminal is not None and "factory" in terminal.lower()


class _ModuleVisitor:
    """Single recursive walk collecting defs, calls and stream sites."""

    def __init__(self, model: "ProjectModel", info: ModuleInfo) -> None:
        self._model = model
        self._info = info

    def run(self) -> None:
        root = self._model.add_function(
            self._info, MODULE_SCOPE, line=1
        )
        self._visit_body(
            self._info.source.tree.body,
            scope=(),
            owner=root,
            enclosing_class=None,
            in_function=False,
        )

    # -- traversal ---------------------------------------------------

    def _visit_body(
        self,
        body: Sequence[ast.stmt],
        scope: Tuple[str, ...],
        owner: FunctionNode,
        enclosing_class: Optional[str],
        in_function: bool,
    ) -> None:
        for stmt in body:
            self._visit(stmt, scope, owner, enclosing_class, in_function)

    def _visit(
        self,
        node: ast.AST,
        scope: Tuple[str, ...],
        owner: FunctionNode,
        enclosing_class: Optional[str],
        in_function: bool,
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = ".".join((*scope, node.name))
            child = self._model.add_function(
                self._info, qualname, line=node.lineno
            )
            if in_function:
                # A nested def is a closure helper: assume the parent
                # uses it (calls through locals are otherwise opaque).
                owner.edges.append(
                    CallEdge(target=child.key, line=node.lineno,
                             internal=True)
                )
            for decorator in node.decorator_list:
                self._visit(decorator, scope, owner, enclosing_class,
                            in_function)
            for default in (*node.args.defaults,
                            *[d for d in node.args.kw_defaults
                              if d is not None]):
                self._visit(default, scope, owner, enclosing_class,
                            in_function)
            self._visit_body(
                node.body, (*scope, node.name), child, enclosing_class,
                in_function=True,
            )
            return
        if isinstance(node, ast.ClassDef):
            qualname = ".".join((*scope, node.name))
            self._info.classes.add(qualname)
            for decorator in node.decorator_list:
                self._visit(decorator, scope, owner, enclosing_class,
                            in_function)
            # Class bodies execute at import time in the enclosing
            # scope; methods are *not* implicitly reachable from it.
            self._visit_body(
                node.body, (*scope, node.name), owner, qualname,
                in_function=False,
            )
            return
        if isinstance(node, ast.Call):
            self._record_call(node, owner, enclosing_class)
        if isinstance(node, ast.Assign):
            self._record_var_types(node, owner)
        for child_node in ast.iter_child_nodes(node):
            self._visit(child_node, scope, owner, enclosing_class,
                        in_function)

    def _record_var_types(self, node: ast.Assign, owner: FunctionNode) -> None:
        """Track ``name = Constructor(...)`` so ``name.method()`` resolves."""
        for target in node.targets:
            if not isinstance(target, ast.Name):
                continue
            slot = (owner.key, target.id)
            if isinstance(node.value, ast.Call):
                self._info.var_ctors[slot] = node.value.func
            elif slot in self._info.var_ctors:
                self._info.var_ctors[slot] = None  # rebound: poisoned

    def _record_call(
        self,
        node: ast.Call,
        owner: FunctionNode,
        enclosing_class: Optional[str],
    ) -> None:
        self._info.raw_calls.append(
            _RawCall(owner=owner.key, node=node,
                     enclosing_class=enclosing_class)
        )
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ("stream", "fork")
            and _is_factory_expr(self._info.source, func.value)
        ):
            label = self._label_argument(node)
            if label is not None:
                self._info.stream_calls.append(
                    StreamCall(
                        owner=owner.key,
                        receiver=ast.unparse(func.value),
                        method=func.attr,
                        label=label,
                        line=node.lineno,
                        col=node.col_offset,
                    )
                )

    @staticmethod
    def _label_argument(node: ast.Call) -> Optional[ast.expr]:
        if node.args:
            first = node.args[0]
            return None if isinstance(first, ast.Starred) else first
        for keyword in node.keywords:
            if keyword.arg == "label":
                return keyword.value
        return None


class ProjectModel:
    """Module table + call graph over a set of parsed sources."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionNode] = {}

    # -- construction ------------------------------------------------

    @classmethod
    def build(cls, sources: Iterable[SourceFile]) -> "ProjectModel":
        model = cls()
        ordered = sorted(
            (s for s in sources if s.parse_error is None),
            key=lambda s: s.display_path,
        )
        for source in ordered:
            name = module_name_for(source.display_path)
            if name in model.modules:
                continue  # duplicate fixture names: first (sorted) wins
            model.modules[name] = ModuleInfo(name=name, source=source)
        for name in sorted(model.modules):
            _ModuleVisitor(model, model.modules[name]).run()
        for name in sorted(model.modules):
            model._resolve_module(model.modules[name])
        return model

    def add_function(
        self, info: ModuleInfo, qualname: str, line: int
    ) -> FunctionNode:
        key = f"{info.name}:{qualname}"
        node = FunctionNode(
            key=key,
            module=info.name,
            qualname=qualname,
            path=info.source.display_path,
            line=line,
        )
        self.functions[key] = node
        info.functions[qualname] = key
        return node

    def _resolve_module(self, info: ModuleInfo) -> None:
        for raw in info.raw_calls:
            edge = self._resolve_call(info, raw)
            if edge is not None:
                self.functions[raw.owner].edges.append(edge)

    def _resolve_call(
        self, info: ModuleInfo, raw: _RawCall
    ) -> Optional[CallEdge]:
        func = raw.node.func
        line = raw.node.lineno
        resolved = info.source.resolve(func)
        if resolved is not None:
            if resolved == "repro" or resolved.startswith("repro."):
                key = self._lookup_internal(resolved)
                if key is None:
                    return None
                return CallEdge(target=key, line=line, internal=True)
            return CallEdge(target=resolved, line=line, internal=False)
        if isinstance(func, ast.Name):
            key = self._lookup_local(info, func.id)
            if key is not None:
                return CallEdge(target=key, line=line, internal=True)
            return None
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
            and raw.enclosing_class is not None
        ):
            qualname = f"{raw.enclosing_class}.{func.attr}"
            key = info.functions.get(qualname)
            if key is not None:
                return CallEdge(target=key, line=line, internal=True)
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            ctor = info.var_ctors.get((raw.owner, func.value.id))
            if ctor is not None:
                key = self._lookup_ctor_method(info, ctor, func.attr)
                if key is not None:
                    return CallEdge(target=key, line=line, internal=True)
        return None

    def _lookup_ctor_method(
        self, info: ModuleInfo, ctor: ast.expr, method: str
    ) -> Optional[str]:
        """Key of ``Class.method`` for a tracked constructor expression."""
        resolved = info.source.resolve(ctor)
        if resolved is not None and (
            resolved == "repro" or resolved.startswith("repro.")
        ):
            return self._lookup_internal(f"{resolved}.{method}")
        if isinstance(ctor, ast.Name) and ctor.id in info.classes:
            return info.functions.get(f"{ctor.id}.{method}")
        return None

    def _lookup_local(self, info: ModuleInfo, name: str) -> Optional[str]:
        key = info.functions.get(name)
        if key is not None:
            return key
        if name in info.classes:
            return info.functions.get(f"{name}.__init__")
        return None

    def _lookup_internal(
        self, dotted: str, _seen: Optional[Set[str]] = None
    ) -> Optional[str]:
        """Function key for an imported ``repro.*`` dotted path.

        Follows re-exports: ``repro.runtime.TaskScheduler`` resolves
        through ``runtime/__init__``'s own import aliases to
        ``repro.runtime.scheduler.TaskScheduler.__init__``.
        """
        seen = _seen if _seen is not None else set()
        if dotted in seen:
            return None
        seen.add(dotted)
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            info = self.modules.get(module)
            if info is None:
                continue
            remainder = parts[cut:]
            qualname = ".".join(remainder)
            key = info.functions.get(qualname)
            if key is not None:
                return key
            if qualname in info.classes:
                return info.functions.get(f"{qualname}.__init__")
            alias = info.source.aliases.get(remainder[0])
            if alias is not None:
                rest = remainder[1:]
                target = ".".join([alias, *rest]) if rest else alias
                return self._lookup_internal(target, seen)
            return None
        return None


# -- taint passes ----------------------------------------------------


def _compute_chains(
    model: ProjectModel,
    is_sink: "_SinkPredicate",
    sink_rules: Tuple[str, ...],
    stop_modules: "frozenset[str]",
) -> Tuple[Dict[str, Tuple[str, ...]], Dict[str, _Sink]]:
    """Shortest helper chains from each function to a banned call.

    Returns ``(chains, direct)`` where ``chains[key]`` is the function
    keys from ``key`` down to a directly-tainted function, and
    ``direct`` maps that last function to its sink.  Pragmas on the
    sink line (any rule in ``sink_rules``) stop taint at the source;
    functions in ``stop_modules`` neither sink nor propagate.
    """
    direct: Dict[str, _Sink] = {}
    for key in sorted(model.functions):
        node = model.functions[key]
        if node.module in stop_modules:
            continue
        source = model.modules[node.module].source
        for edge in node.edges:
            if edge.internal or not is_sink(edge.target):
                continue
            if any(source.is_suppressed(rule, edge.line)
                   for rule in sink_rules):
                continue
            direct[key] = _Sink(target=edge.target, path=node.path,
                                line=edge.line)
            break

    reverse: Dict[str, List[str]] = {}
    for key in sorted(model.functions):
        for edge in model.functions[key].edges:
            if edge.internal:
                reverse.setdefault(edge.target, []).append(key)

    chains: Dict[str, Tuple[str, ...]] = {k: (k,) for k in sorted(direct)}
    queue: Deque[str] = deque(sorted(direct))
    while queue:
        current = queue.popleft()
        if model.functions[current].module in stop_modules:
            continue
        for caller in sorted(set(reverse.get(current, ()))):
            if caller in chains:
                continue
            chains[caller] = (caller, *chains[current])
            queue.append(caller)
    return chains, direct


class _SinkPredicate:
    """Picklable/deterministic callable wrapper for sink tests."""

    def __init__(self, kind: str) -> None:
        self._kind = kind

    def __call__(self, target: str) -> bool:
        if self._kind == "wallclock":
            return target in WALLCLOCK_BANNED
        if target == "random" or target.startswith("random."):
            return True
        if target.startswith("numpy.random."):
            tail = target.split(".")[2]
            return tail not in NUMPY_RNG_ALLOWED
        return False


def _in_entry_dirs(path: str) -> bool:
    directories = path.split("/")[:-1]
    return any(part in _ENTRY_DIRS for part in directories)


def _render_chain(
    model: ProjectModel, chain: Tuple[str, ...], sink: _Sink
) -> str:
    labels: List[str] = []
    previous_module: Optional[str] = None
    for key in chain:
        node = model.functions[key]
        if previous_module is None or node.module == previous_module:
            labels.append(node.qualname)
        else:
            labels.append(f"{node.module}:{node.qualname}")
        previous_module = node.module
    labels.append(f"{sink.target} ({sink.path}:{sink.line})")
    return " -> ".join(labels)


def _taint_findings(
    model: ProjectModel,
    rule_id: str,
    is_sink: _SinkPredicate,
    sink_rules: Tuple[str, ...],
    stop_modules: "frozenset[str]",
    advice: str,
) -> List[Finding]:
    chains, direct = _compute_chains(model, is_sink, sink_rules,
                                     stop_modules)
    findings: List[Finding] = []
    for key in sorted(chains):
        chain = chains[key]
        if len(chain) < 2:
            continue  # direct calls are the per-file rules' domain
        node = model.functions[key]
        if not _in_entry_dirs(node.path):
            continue
        sink = direct[chain[-1]]
        findings.append(
            Finding(
                rule_id=rule_id,
                path=node.path,
                line=node.line,
                message=(
                    f"{node.qualname} reaches {sink.target} through "
                    f"helpers: {_render_chain(model, chain, sink)}; "
                    f"{advice}"
                ),
            )
        )
    return findings


def check_transitive_wallclock(model: ProjectModel) -> List[Finding]:
    """Helper-chain host-clock reads from simulator/experiments/core."""
    return _taint_findings(
        model,
        TRANSITIVE_WALLCLOCK,
        _SinkPredicate("wallclock"),
        sink_rules=(SIM_WALLCLOCK, TRANSITIVE_WALLCLOCK),
        stop_modules=_WALLCLOCK_STOP_MODULES,
        advice=("route host-clock reads through "
                "repro.obs.profiling.perf_seconds"),
    )


def check_transitive_rng(model: ProjectModel) -> List[Finding]:
    """Helper-chain stdlib/global RNG from simulator/experiments/core."""
    return _taint_findings(
        model,
        TRANSITIVE_RNG,
        _SinkPredicate("rng"),
        sink_rules=(RNG_STDLIB, RNG_NUMPY_GLOBAL, TRANSITIVE_RNG),
        stop_modules=_RNG_STOP_MODULES,
        advice="draw from a seeded RngFactory stream (repro.utils.rng)",
    )


def check_stream_labels(model: ProjectModel) -> List[Finding]:
    """Duplicate / non-literal labels at stream() and fork() sites."""
    findings: List[Finding] = []
    for name in sorted(model.modules):
        info = model.modules[name]
        if info.source.display_path.endswith(_RNG_MODULE_SUFFIX):
            continue
        groups: Dict[Tuple[str, str, str], Dict[str, StreamCall]] = {}
        for call in info.stream_calls:
            label = call.label
            if isinstance(label, ast.JoinedStr):
                continue  # f-strings are content-keyed by construction
            if not (isinstance(label, ast.Constant)
                    and isinstance(label.value, str)):
                findings.append(
                    Finding(
                        rule_id=STREAM_LABEL_COLLISION,
                        path=info.source.display_path,
                        line=call.line,
                        col=call.col,
                        message=(
                            f"non-literal label in "
                            f"{call.receiver}.{call.method}(...): stream "
                            f"labels must be string literals or f-strings "
                            f"so draw streams stay content-keyed and "
                            f"collisions stay auditable"
                        ),
                    )
                )
                continue
            scope = groups.setdefault(
                (call.owner, call.receiver, call.method), {}
            )
            first = scope.get(label.value)
            if first is None:
                scope[label.value] = call
                continue
            findings.append(
                Finding(
                    rule_id=STREAM_LABEL_COLLISION,
                    path=info.source.display_path,
                    line=call.line,
                    col=call.col,
                    message=(
                        f"label {label.value!r} already used by "
                        f"{first.receiver}.{first.method}(...) at line "
                        f"{first.line}: reusing a label returns the same "
                        f"cached stream and couples the two draw "
                        f"sequences"
                    ),
                )
            )
    return findings


def run_project_passes(
    sources: Sequence[SourceFile],
) -> Tuple[List[Finding], int]:
    """Run every cross-module pass; returns ``(findings, suppressed)``.

    Findings are anchored at definitions/call sites in the analysed
    files, so the usual pragma rules apply at the anchor line.
    """
    # Imported lazily: effects/units build on this module, so top-level
    # imports would be circular.
    from repro.lint.effects import analyze, effect_findings
    from repro.lint.units import analyze_units, unit_findings

    model = ProjectModel.build(sources)
    raw: List[Finding] = [
        *check_transitive_wallclock(model),
        *check_transitive_rng(model),
        *check_stream_labels(model),
        *effect_findings(analyze(model)),
        *unit_findings(analyze_units(model)),
    ]
    by_path = {s.display_path: s for s in sources}
    kept: List[Finding] = []
    suppressed = 0
    for finding in sort_findings(raw):
        anchor = by_path.get(finding.path)
        if anchor is not None and anchor.is_suppressed(
            finding.rule_id, finding.line
        ):
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed


def project_rule_catalog() -> Dict[str, str]:
    """``rule id -> summary`` for the cross-module rules."""
    from repro.lint.effects import effect_rule_catalog
    from repro.lint.units import unit_rule_catalog

    return {
        **{rule.rule_id: rule.summary for rule in PROJECT_RULES},
        **effect_rule_catalog(),
        **unit_rule_catalog(),
    }
