"""The ``repro lint`` subcommand.

Exit codes: ``0`` — clean (no findings outside the baseline); ``1`` —
new findings; ``2`` — usage error (missing path or baseline).

``repro lint effects [PATHS] [--function QUALNAME] [--format json]``
dumps the whole-program effect table (see :mod:`repro.lint.effects`)
instead of gating: every function's effect class, reads/writes/IO,
entry-point flags, and the effect-rule findings with their call
chains.  It always exits 0 — the gate is the regular ``repro lint``
run, which includes the same four rules.  The JSON output is
deterministic (sorted keys, canonical ordering) so CI can diff it as
an artifact.

``repro lint units [PATHS] [--function QUALNAME] [--format json]``
dumps the per-function unit/time-domain table from the dimensional
analysis (see :mod:`repro.lint.units`): every function's parameter and
return units plus the four dimensional-rule findings.  Like ``effects``
mode it always exits 0 — the gate is the regular ``repro lint`` run —
and the JSON is byte-deterministic for CI artifact diffing.

``--update-baseline`` rewrites the baseline and exits 0: the ratchet
workflow is *fix what you can, then re-baseline the remainder
deliberately* (the diff shows what was grandfathered, so it is
reviewable like any other change).  The rewrite replaces entries for
files that were actually linted, preserves entries for files outside
the linted paths, and prunes entries whose file no longer exists — see
:meth:`repro.lint.baseline.Baseline.merged_update`.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, TextIO, Tuple, cast

from repro.lint.baseline import Baseline
from repro.lint.checkers import rule_catalog
from repro.lint.project import project_rule_catalog
from repro.lint.reporters import render_json, render_text
from repro.lint.runner import lint_paths

#: Baseline picked up automatically when present in the working tree.
DEFAULT_BASELINE = "lint_baseline.json"


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the ``lint`` arguments to an (sub)parser."""
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src); the first "
             "path may be the literal 'effects' or 'units' to dump the "
             "effect or unit table instead of gating",
    )
    parser.add_argument(
        "--function", metavar="QUALNAME", dest="effects_function",
        help="effects/units mode: restrict the table to one function "
             "(module:qualname, qualname, or bare name)",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        dest="output_format", help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline", metavar="PATH",
        help=f"grandfathered-findings file "
             f"(default: {DEFAULT_BASELINE} when it exists)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to the current findings and exit 0",
    )
    parser.add_argument(
        "--no-project", action="store_true",
        help="skip the cross-module call-graph passes "
             "(transitive-wallclock/-rng, stream-label-collision)",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="also list baselined findings in the text report",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every rule id and summary, then exit",
    )


def _resolve_baseline(
    args: argparse.Namespace, stderr: TextIO
) -> Tuple[Optional[Baseline], Optional[Path], int]:
    """Returns (baseline, baseline_path, exit_code!=0 on usage error)."""
    if args.baseline is not None:
        path = Path(args.baseline)
        if not path.exists():
            if args.update_baseline:
                return None, path, 0
            print(f"error: baseline not found: {path}", file=stderr)
            return None, None, 2
        return Baseline.load(path), path, 0
    default = Path(DEFAULT_BASELINE)
    if default.exists():
        return Baseline.load(default), default, 0
    return None, default if args.update_baseline else None, 0


def run_lint(
    args: argparse.Namespace,
    stdout: Optional[TextIO] = None,
    stderr: Optional[TextIO] = None,
) -> int:
    """Execute ``repro lint`` for parsed ``args``; returns the exit code."""
    out: TextIO = stdout if stdout is not None else sys.stdout
    err: TextIO = stderr if stderr is not None else sys.stderr

    if args.list_rules:
        catalog = {**rule_catalog(), **project_rule_catalog()}
        width = max(len(rule_id) for rule_id in catalog)
        for rule_id in sorted(catalog):
            print(f"{rule_id.ljust(width)}  {catalog[rule_id]}", file=out)
        return 0

    if args.paths and args.paths[0] == "effects":
        return run_effects(args, out, err)

    if args.paths and args.paths[0] == "units":
        return run_units(args, out, err)

    baseline, baseline_path, code = _resolve_baseline(args, err)
    if code != 0:
        return code

    paths: List[Path] = [Path(p) for p in args.paths]
    try:
        report = lint_paths(
            paths, baseline=baseline, project=not args.no_project
        )
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=err)
        return 2

    if args.update_baseline:
        target = baseline_path if baseline_path is not None else Path(
            DEFAULT_BASELINE
        )
        previous = baseline if baseline is not None else Baseline()
        updated = previous.merged_update(
            report.all_findings, report.checked_files
        )
        updated.save(target)
        print(
            f"wrote {target} ({len(updated.entries)} grandfathered "
            f"path::rule entries)",
            file=out,
        )
        return 0

    if args.output_format == "json":
        out.write(render_json(report))
    else:
        print(render_text(report, verbose=args.verbose), file=out)
    return 0 if report.clean else 1


def run_effects(
    args: argparse.Namespace, out: TextIO, err: TextIO
) -> int:
    """Execute ``repro lint effects ...``; always 0 unless usage error."""
    # Imported here so plain lint runs never pay for the effect pass
    # twice and ``--no-project`` stays meaningful.
    from repro.lint.effects import analyze, effect_findings, effect_report
    from repro.lint.findings import Finding
    from repro.lint.project import ProjectModel
    from repro.lint.runner import display_path, iter_python_files
    from repro.lint.source import SourceFile

    raw_paths = args.paths[1:] or ["src"]
    try:
        files = list(iter_python_files([Path(p) for p in raw_paths]))
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=err)
        return 2
    sources = [
        SourceFile(display_path(file), file.read_text(encoding="utf-8"))
        for file in files
    ]
    model = ProjectModel.build(sources)
    analysis = analyze(model)
    by_path = {s.display_path: s for s in sources}
    findings: List[Finding] = []
    for finding in effect_findings(analysis):
        anchor = by_path.get(finding.path)
        if anchor is None or not anchor.is_suppressed(
            finding.rule_id, finding.line
        ):
            findings.append(finding)
    payload = effect_report(analysis, findings,
                            function=args.effects_function)
    if args.output_format == "json":
        out.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return 0
    _render_effects_text(payload, out, full=args.effects_function
                         is not None or args.verbose)
    return 0


def run_units(
    args: argparse.Namespace, out: TextIO, err: TextIO
) -> int:
    """Execute ``repro lint units ...``; always 0 unless usage error."""
    # Lazy for the same reason as effects: plain lint runs build the
    # model once inside run_project_passes.
    from repro.lint.findings import Finding
    from repro.lint.project import ProjectModel
    from repro.lint.runner import display_path, iter_python_files
    from repro.lint.source import SourceFile
    from repro.lint.units import analyze_units, unit_findings, unit_report

    raw_paths = args.paths[1:] or ["src"]
    try:
        files = list(iter_python_files([Path(p) for p in raw_paths]))
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=err)
        return 2
    sources = [
        SourceFile(display_path(file), file.read_text(encoding="utf-8"))
        for file in files
    ]
    model = ProjectModel.build(sources)
    analysis = analyze_units(model)
    by_path = {s.display_path: s for s in sources}
    findings: List[Finding] = []
    for finding in unit_findings(analysis):
        anchor = by_path.get(finding.path)
        if anchor is None or not anchor.is_suppressed(
            finding.rule_id, finding.line
        ):
            findings.append(finding)
    payload = unit_report(analysis, findings,
                          function=args.effects_function)
    if args.output_format == "json":
        out.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return 0
    _render_units_text(payload, out, full=args.effects_function
                       is not None or args.verbose)
    return 0


def _render_units_text(
    payload: Dict[str, object], out: TextIO, full: bool
) -> None:
    functions = cast(List[Dict[str, object]], payload["functions"])
    findings = cast(List[Dict[str, object]], payload["findings"])
    dimensioned = 0
    for row in functions:
        params = cast(Dict[str, str], row["params"])
        if row["returns"] != "dimensionless" or any(
            unit != "dimensionless" for unit in params.values()
        ):
            dimensioned += 1
    print(
        f"{len(functions)} functions analysed, "
        f"{dimensioned} carrying time units",
        file=out,
    )
    shown = 0
    for row in functions:
        params = cast(Dict[str, str], row["params"])
        interesting = row["returns"] != "dimensionless" or any(
            unit != "dimensionless" for unit in params.values()
        )
        if not (full or interesting):
            continue
        shown += 1
        rendered = ", ".join(
            f"{name}: {unit}" for name, unit in params.items()
            if full or unit != "dimensionless"
        )
        print(
            f"  {row['function']}  ({rendered}) -> {row['returns']}",
            file=out,
        )
    hidden = len(functions) - shown
    if hidden > 0:
        print(f"  ... and {hidden} dimensionless functions "
              f"(--verbose shows all)", file=out)
    if findings:
        print(f"{len(findings)} unit finding(s):", file=out)
        for item in findings:
            print(
                f"  {item['path']}:{item['line']}: {item['rule']}: "
                f"{item['message']}",
                file=out,
            )
    else:
        print("no unit findings", file=out)


def _render_effects_text(
    payload: Dict[str, object], out: TextIO, full: bool
) -> None:
    functions = cast(List[Dict[str, object]], payload["functions"])
    globals_rows = cast(List[Dict[str, object]], payload["globals"])
    entries = cast(Dict[str, List[object]], payload["entry_points"])
    findings = cast(List[Dict[str, object]], payload["findings"])
    print(
        f"{len(functions)} functions analysed, "
        f"{len(globals_rows)} tracked globals, "
        f"{len(entries['tasks'])} task entries, "
        f"{len(entries['cache_builders'])} cache builders, "
        f"{len(entries['event_handlers'])} event handlers",
        file=out,
    )
    shown = 0
    for row in functions:
        flags = [
            flag for flag in ("task_entry", "task_reachable",
                              "cache_builder", "event_handler")
            if row[flag]
        ]
        interesting = row["effect"] != "pure" or flags
        if not (full or interesting):
            continue
        shown += 1
        detail = "".join(
            f" {label}={','.join(cast(List[str], row[field_name]))}"
            for label, field_name in (("reads", "reads"),
                                      ("writes", "writes"),
                                      ("io", "io"))
            if row[field_name]
        )
        suffix = f"  [{' '.join(flags)}]" if flags else ""
        print(
            f"  {row['function']}  ({row['effect']}){detail}{suffix}",
            file=out,
        )
    hidden = len(functions) - shown
    if hidden > 0:
        print(f"  ... and {hidden} pure, unflagged functions "
              f"(--verbose shows all)", file=out)
    if globals_rows:
        print("tracked globals:", file=out)
        for grow in globals_rows:
            merge = grow["merge_back"]
            note = f" merge-back: {merge}" if merge else ""
            print(
                f"  {grow['global']}  ({grow['kind']}, "
                f"{grow['path']}:{grow['line']}){note}",
                file=out,
            )
    if findings:
        print(f"{len(findings)} effect finding(s):", file=out)
        for item in findings:
            print(
                f"  {item['path']}:{item['line']}: {item['rule']}: "
                f"{item['message']}",
                file=out,
            )
    else:
        print("no effect findings", file=out)
