"""The ``repro lint`` subcommand.

Exit codes: ``0`` — clean (no findings outside the baseline); ``1`` —
new findings; ``2`` — usage error (missing path or baseline).

``--update-baseline`` rewrites the baseline and exits 0: the ratchet
workflow is *fix what you can, then re-baseline the remainder
deliberately* (the diff shows what was grandfathered, so it is
reviewable like any other change).  The rewrite replaces entries for
files that were actually linted, preserves entries for files outside
the linted paths, and prunes entries whose file no longer exists — see
:meth:`repro.lint.baseline.Baseline.merged_update`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, TextIO, Tuple

from repro.lint.baseline import Baseline
from repro.lint.checkers import rule_catalog
from repro.lint.project import project_rule_catalog
from repro.lint.reporters import render_json, render_text
from repro.lint.runner import lint_paths

#: Baseline picked up automatically when present in the working tree.
DEFAULT_BASELINE = "lint_baseline.json"


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the ``lint`` arguments to an (sub)parser."""
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        dest="output_format", help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline", metavar="PATH",
        help=f"grandfathered-findings file "
             f"(default: {DEFAULT_BASELINE} when it exists)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to the current findings and exit 0",
    )
    parser.add_argument(
        "--no-project", action="store_true",
        help="skip the cross-module call-graph passes "
             "(transitive-wallclock/-rng, stream-label-collision)",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="also list baselined findings in the text report",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every rule id and summary, then exit",
    )


def _resolve_baseline(
    args: argparse.Namespace, stderr: TextIO
) -> Tuple[Optional[Baseline], Optional[Path], int]:
    """Returns (baseline, baseline_path, exit_code!=0 on usage error)."""
    if args.baseline is not None:
        path = Path(args.baseline)
        if not path.exists():
            if args.update_baseline:
                return None, path, 0
            print(f"error: baseline not found: {path}", file=stderr)
            return None, None, 2
        return Baseline.load(path), path, 0
    default = Path(DEFAULT_BASELINE)
    if default.exists():
        return Baseline.load(default), default, 0
    return None, default if args.update_baseline else None, 0


def run_lint(
    args: argparse.Namespace,
    stdout: Optional[TextIO] = None,
    stderr: Optional[TextIO] = None,
) -> int:
    """Execute ``repro lint`` for parsed ``args``; returns the exit code."""
    out: TextIO = stdout if stdout is not None else sys.stdout
    err: TextIO = stderr if stderr is not None else sys.stderr

    if args.list_rules:
        catalog = {**rule_catalog(), **project_rule_catalog()}
        width = max(len(rule_id) for rule_id in catalog)
        for rule_id in sorted(catalog):
            print(f"{rule_id.ljust(width)}  {catalog[rule_id]}", file=out)
        return 0

    baseline, baseline_path, code = _resolve_baseline(args, err)
    if code != 0:
        return code

    paths: List[Path] = [Path(p) for p in args.paths]
    try:
        report = lint_paths(
            paths, baseline=baseline, project=not args.no_project
        )
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=err)
        return 2

    if args.update_baseline:
        target = baseline_path if baseline_path is not None else Path(
            DEFAULT_BASELINE
        )
        previous = baseline if baseline is not None else Baseline()
        updated = previous.merged_update(
            report.all_findings, report.checked_files
        )
        updated.save(target)
        print(
            f"wrote {target} ({len(updated.entries)} grandfathered "
            f"path::rule entries)",
            file=out,
        )
        return 0

    if args.output_format == "json":
        out.write(render_json(report))
    else:
        print(render_text(report, verbose=args.verbose), file=out)
    return 0 if report.clean else 1
