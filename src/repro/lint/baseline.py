"""Grandfathered-finding baselines.

A baseline lets the linter gate CI from day one even if some findings
predate it: existing violations are recorded as ``path::rule -> count``
and tolerated, while anything *new* still fails the build.  Keys omit
line numbers so unrelated edits that shift code do not churn the file,
and counts ratchet down naturally — once a grandfathered violation is
fixed, ``--update-baseline`` shrinks the allowance so it cannot return.

The file format is deliberately boring JSON, serialised with sorted keys
and a trailing newline so diffs stay minimal and deterministic.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.lint.findings import Finding

BASELINE_VERSION = 1


def baseline_key_path(key: str) -> str:
    """The file path component of a ``path::rule`` baseline key."""
    return key.rsplit("::", 1)[0]


@dataclass
class Baseline:
    """Allowed finding counts keyed by ``path::rule``."""

    entries: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_findings(cls, findings: List[Finding]) -> "Baseline":
        entries: Dict[str, int] = {}
        for finding in findings:
            key = finding.baseline_key
            entries[key] = entries.get(key, 0) + 1
        return cls(entries=entries)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(data, dict):
            raise ValueError(f"baseline {path} is not a JSON object")
        version = data.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(
                f"baseline {path} has version {version!r}, "
                f"expected {BASELINE_VERSION}"
            )
        raw = data.get("entries", {})
        if not isinstance(raw, dict):
            raise ValueError(f"baseline {path} entries must be an object")
        entries: Dict[str, int] = {}
        for key, count in raw.items():
            if not isinstance(key, str) or not isinstance(count, int):
                raise ValueError(
                    f"baseline {path} entry {key!r}: {count!r} is malformed"
                )
            if count > 0:
                entries[key] = count
        return cls(entries=entries)

    def save(self, path: Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "entries": {
                key: self.entries[key] for key in sorted(self.entries)
            },
        }
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def merged_update(
        self,
        findings: List[Finding],
        linted_files: Iterable[str],
        root: Optional[Path] = None,
    ) -> "Baseline":
        """The baseline ``--update-baseline`` should write.

        Three ingredients, in priority order:

        * the findings of *this* run replace every old entry for a file
          that was actually linted (the ratchet: fixed findings shrink
          the allowance, they never silently return);
        * entries for files **outside** the linted set are preserved —
          updating from ``repro lint src/repro/lint`` must not wipe the
          grandfathered findings of the rest of the tree;
        * entries whose file no longer exists on disk (relative to
          ``root``, default the current directory) are pruned — a
          deleted or renamed file takes its allowance with it.
        """
        base = (root or Path.cwd()).resolve()
        linted = set(linted_files)
        entries = dict(Baseline.from_findings(findings).entries)
        for key in sorted(self.entries):
            path = baseline_key_path(key)
            if path in linted:
                continue  # superseded by this run's findings
            if not (base / path).exists():
                continue  # stale: the file is gone
            entries[key] = self.entries[key]
        return Baseline(entries=entries)

    def partition(
        self, findings: List[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Split findings into ``(new, grandfathered)``.

        Findings are consumed against the baseline allowance in the
        canonical (line-sorted) order, so when a file has more findings
        of a rule than the baseline allows, the *later* occurrences are
        the ones reported as new.
        """
        remaining = dict(self.entries)
        fresh: List[Finding] = []
        grandfathered: List[Finding] = []
        for finding in findings:
            key = finding.baseline_key
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                grandfathered.append(finding)
            else:
                fresh.append(finding)
        return fresh, grandfathered
