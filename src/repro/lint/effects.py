"""Whole-program effect analysis over the lint call graph.

:mod:`repro.lint.project` answers "who calls whom"; this module answers
"who *does* what".  Every function in the analysed tree (plus each
module's top-level code) gets an **effect summary** — which module-level
globals it reads, which it writes, and which IO surfaces it touches —
computed as a fixpoint over the call graph: a function's summary is its
own local effects joined with the summaries of everything it calls.
The join is set union over a finite universe, so the worklist converges
on recursive and mutually-recursive graphs in O(edges × effects).

On top of the summaries sit three *entry-point* discoveries:

* **fork-task entries** — first arguments of ``map_tasks(fn, ...)`` /
  ``scheduler.map(fn, ...)`` / ``.submit(fn, ...)`` call sites: these
  run in pool workers, so their transitive writes never survive the
  join unless explicitly merged back;
* **cache builders** — ``build`` arguments of
  ``TestbedCache.get_or_build(key, build)`` sites (plain names, dotted
  references, and the call targets inside ``lambda: ...`` builders):
  their transitive reads must be derivable from the key;
* **event handlers** — methods registered in a ``self.*handlers*``
  dict literal, plus the ``_handle_*`` naming convention inside
  ``repro.simulator.*``: the batched loop may reorder whole slices, so
  handlers must confine their effects to engine-owned instance state.

Four rules consume those views (all pragma-suppressible at both the
anchored definition line and the offending effect-site line):

* ``shared-mutable-global`` — task-reachable code writes a module-level
  global with no entry in :data:`MERGE_BACK_REGISTRY`;
* ``cache-key-escape`` — a cache builder transitively reads stateful
  module globals or ambient IO (environment, files, sockets);
* ``impure-event-handler`` — an event handler transitively writes
  module globals or performs IO;
* ``fork-held-resource`` — a module-level OS resource (file handle,
  lock, socket) created at import time — i.e. pre-fork — is used by
  task-reachable code.

Precision notes, so nobody over-trusts the output: instance-attribute
mutation (``self.x = ...``) is *engine-owned state* and never tracked;
aliasing a global into a local (``g = GLOBAL; g.append(...)``) hides
the write; attribute calls on arbitrary objects stay unresolved, same
as in the call graph.  Reads are only reported for *stateful* globals —
those some function in the tree actually writes, or OS resources —
so module-level constant tables do not drown the table.  Modules in
:data:`EFFECT_BOUNDARY_MODULES` are the hand-audited runtime machinery
(profiling, rng, testbed cache, scheduler): effects neither originate
from nor propagate through them.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.lint.base import Rule
from repro.lint.findings import Finding, sort_findings
from repro.lint.project import MODULE_SCOPE, ModuleInfo, ProjectModel

SHARED_MUTABLE_GLOBAL = "shared-mutable-global"
CACHE_KEY_ESCAPE = "cache-key-escape"
IMPURE_EVENT_HANDLER = "impure-event-handler"
FORK_HELD_RESOURCE = "fork-held-resource"

EFFECT_RULES: Tuple[Rule, ...] = (
    Rule(SHARED_MUTABLE_GLOBAL,
         "fork-task-reachable code mutates a module-level global with no "
         "registered merge-back hook"),
    Rule(CACHE_KEY_ESCAPE,
         "testbed-cache builder reads state not derivable from its key "
         "arguments"),
    Rule(IMPURE_EVENT_HANDLER,
         "simulator event handler with effects outside engine-owned "
         "state"),
    Rule(FORK_HELD_RESOURCE,
         "pre-fork module-level OS resource used in task-reachable code"),
)

#: Module-level globals whose worker-side mutations are *deliberately*
#: reconciled at join time.  Every entry documents where the merge-back
#: lives; ``shared-mutable-global`` skips these.
MERGE_BACK_REGISTRY: Dict[str, str] = {
    "repro.simulator.engine:_EVENTS_TOTAL":
        "worker deltas ride back in TaskOutcome and are folded into the "
        "parent counter by TaskScheduler.map via engine.absorb_events()",
    "repro.runtime.cache:_DEFAULT":
        "hit/miss counter deltas ride back in TaskOutcome and are folded "
        "in task order via TestbedCache.absorb_stats()",
    "repro.sanitize.instrument:_TYPE_CRC":
        "content-keyed CRC memo: worker-local entries are recomputed "
        "identically on demand, so dropping them at join loses nothing",
    "repro.runtime.chaos:_DELAYS_INJECTED":
        "injected-delay counter: worker deltas ride back in TaskOutcome "
        "and are folded into the parent by TaskScheduler.map via "
        "chaos.absorb_delays()",
}

#: Hand-audited runtime machinery: the sanctioned clock, the entropy
#: boundary, and the cache/scheduler whose *job* is cross-process state
#: reconciliation.  Effects neither originate from nor flow through
#: these modules.
EFFECT_BOUNDARY_MODULES = frozenset({
    "repro.obs.profiling",
    "repro.utils.rng",
    "repro.runtime.cache",
    "repro.runtime.scheduler",
})

#: Event-handler naming convention only applies under this prefix.
_SIMULATOR_PREFIX = "repro.simulator"

#: Container-mutating method names on a module-global receiver.
_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "remove", "discard", "clear", "appendleft", "popleft",
    "sort", "reverse", "set",
})

#: Dotted call targets that constitute IO (ambient, non-key input or
#: output to the host).  Builtins ``open``/``input``/``print`` are
#: matched by bare name as well.
_IO_CALLS = frozenset({
    "open", "input", "print",
    "os.open", "os.fdopen", "os.remove", "os.unlink", "os.rename",
    "os.replace", "os.mkdir", "os.makedirs", "os.listdir", "os.scandir",
    "os.getcwd", "os.getenv", "os.uname", "os.system", "os.popen",
    "socket.socket", "socket.create_connection", "socket.gethostname",
    "sqlite3.connect",
    "subprocess.run", "subprocess.Popen", "subprocess.call",
    "subprocess.check_call", "subprocess.check_output",
    "tempfile.mkstemp", "tempfile.mkdtemp", "tempfile.NamedTemporaryFile",
    "tempfile.TemporaryFile",
    "shutil.copy", "shutil.copyfile", "shutil.copytree", "shutil.move",
    "shutil.rmtree",
    "urllib.request.urlopen",
    "platform.node", "getpass.getuser",
})

#: Module-level calls whose result is an OS resource held across fork.
_RESOURCE_FACTORIES = frozenset({
    "open", "os.fdopen", "socket.socket", "socket.create_connection",
    "sqlite3.connect", "threading.Lock", "threading.RLock",
    "threading.Semaphore", "threading.BoundedSemaphore",
    "threading.Condition", "threading.Event", "multiprocessing.Lock",
    "multiprocessing.RLock", "multiprocessing.Queue",
    "tempfile.NamedTemporaryFile", "tempfile.TemporaryFile",
})

#: Module-level calls known to build immutable (or context-local)
#: values — never classified as shared mutable state.
_IMMUTABLE_FACTORIES = frozenset({
    "frozenset", "tuple", "re.compile", "collections.namedtuple",
    "typing.TypeVar", "typing.NewType", "contextvars.ContextVar",
})


@dataclass(frozen=True)
class GlobalVar:
    """One module-level binding: ``module:NAME``."""

    key: str
    module: str
    name: str
    path: str
    line: int
    kind: str  # "container" | "object" | "resource" | "contextvar" | "scalar"

    @property
    def mutable(self) -> bool:
        return self.kind in ("container", "object", "resource")


@dataclass
class LocalEffect:
    """Effects a single function performs directly (no callees).

    Each map goes ``target -> first line`` so chain messages can point
    at the concrete effect site.
    """

    reads: Dict[str, int] = field(default_factory=dict)
    writes: Dict[str, int] = field(default_factory=dict)
    io: Dict[str, int] = field(default_factory=dict)

    def note(self, table: Dict[str, int], target: str, line: int) -> None:
        if target not in table or line < table[target]:
            table[target] = line


@dataclass(frozen=True)
class EntryPoint:
    """One discovered entry: the function key plus the discovery site."""

    key: str
    site_path: str
    site_line: int
    via: str  # "map_tasks" | "scheduler" | "get_or_build" | ...


@dataclass
class EffectAnalysis:
    """The computed effect tables for one :class:`ProjectModel`."""

    model: ProjectModel
    globals: Dict[str, GlobalVar]
    local: Dict[str, LocalEffect]
    summaries: Dict[str, "Summary"]
    stateful: Set[str]
    task_entries: List[EntryPoint]
    cache_builders: List[EntryPoint]
    event_handlers: List[str]

    def classify(self, key: str) -> str:
        """Lattice point of one function: pure < read < mutates < io."""
        summary = self.summaries.get(key)
        if summary is None:
            return "pure"
        if summary.io:
            return "io"
        if summary.writes:
            return "mutates"
        if summary.reads & self.stateful:
            return "read"
        return "pure"


@dataclass
class Summary:
    """Transitive effect sets (targets only; sites stay local)."""

    reads: Set[str] = field(default_factory=set)
    writes: Set[str] = field(default_factory=set)
    io: Set[str] = field(default_factory=set)

    def merge(self, other: "Summary") -> bool:
        """Union ``other`` in; True when anything changed."""
        before = (len(self.reads), len(self.writes), len(self.io))
        self.reads |= other.reads
        self.writes |= other.writes
        self.io |= other.io
        return (len(self.reads), len(self.writes), len(self.io)) != before


# -- global-variable discovery ---------------------------------------


def _classify_module_value(
    info: ModuleInfo, value: Optional[ast.expr]
) -> str:
    """Kind of a module-level binding, from the shape of its RHS."""
    if value is None:
        return "scalar"
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)):
        return "container"
    if isinstance(value, ast.Call):
        resolved = info.source.resolve(value.func)
        name = resolved
        if name is None and isinstance(value.func, ast.Name):
            name = value.func.id
        if name is None:
            return "object"
        if name in _RESOURCE_FACTORIES:
            return "resource"
        if name in _IMMUTABLE_FACTORIES or name.endswith("ContextVar"):
            return "contextvar" if name.endswith("ContextVar") else "scalar"
        if name in ("list", "dict", "set", "bytearray") or (
            name.startswith("collections.")
            and not name.endswith("namedtuple")
        ):
            return "container"
        return "object"
    return "scalar"


def _collect_globals(model: ProjectModel) -> Dict[str, GlobalVar]:
    table: Dict[str, GlobalVar] = {}

    def record(info: ModuleInfo, target: ast.expr,
               value: Optional[ast.expr], line: int) -> None:
        if not isinstance(target, ast.Name):
            return
        name = target.id
        if name.startswith("__") or name in info.functions:
            return
        if name in info.classes or name in info.source.aliases:
            return
        key = f"{info.name}:{name}"
        if key in table:
            return  # first binding wins (later rebinds are not defs)
        table[key] = GlobalVar(
            key=key, module=info.name, name=name,
            path=info.source.display_path, line=line,
            kind=_classify_module_value(info, value),
        )

    def scan(info: ModuleInfo, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    record(info, target, stmt.value, stmt.lineno)
            elif isinstance(stmt, ast.AnnAssign):
                record(info, stmt.target, stmt.value, stmt.lineno)
            elif isinstance(stmt, ast.If):
                scan(info, stmt.body)
                scan(info, stmt.orelse)
            elif isinstance(stmt, ast.Try):
                scan(info, stmt.body)
                scan(info, stmt.orelse)
                scan(info, stmt.finalbody)

    for name in sorted(model.modules):
        scan(model.modules[name], model.modules[name].source.tree.body)
    return table


# -- local effect collection -----------------------------------------


def _collect_binds(
    node: "Union[ast.FunctionDef, ast.AsyncFunctionDef]",
) -> Tuple[Set[str], Set[str]]:
    """``(locally bound names, names declared global)`` for one def."""
    binds: Set[str] = set()
    declared: Set[str] = set()
    args = node.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        binds.add(arg.arg)
    if args.vararg is not None:
        binds.add(args.vararg.arg)
    if args.kwarg is not None:
        binds.add(args.kwarg.arg)

    def walk(stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                binds.add(stmt.name)
                continue  # nested scopes are separate nodes
            if isinstance(stmt, ast.Global):
                declared.update(stmt.names)
                continue
            for child in ast.walk(stmt):
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef, ast.Lambda)):
                    continue
                if isinstance(child, ast.Name) and isinstance(
                    child.ctx, (ast.Store, ast.Del)
                ):
                    binds.add(child.id)
                elif isinstance(child, ast.ExceptHandler) and child.name:
                    binds.add(child.name)
                elif isinstance(child, ast.Import):
                    for alias in child.names:
                        binds.add(alias.asname
                                  or alias.name.split(".")[0])
                elif isinstance(child, ast.ImportFrom):
                    for alias in child.names:
                        binds.add(alias.asname or alias.name)

    walk(node.body)
    return binds - declared, declared


class _EffectCollector:
    """One walk per module, attributing effect sites to function keys.

    Mirrors the scope rules of :class:`repro.lint.project._ModuleVisitor`
    so the keys line up with the call graph exactly.
    """

    def __init__(
        self,
        model: ProjectModel,
        info: ModuleInfo,
        globals_table: Dict[str, GlobalVar],
        local: Dict[str, LocalEffect],
        handler_keys: Set[str],
    ) -> None:
        self._model = model
        self._info = info
        self._globals = globals_table
        self._local = local
        self._handlers = handler_keys
        self._binds: Dict[str, Set[str]] = {}
        self._declared: Dict[str, Set[str]] = {}

    def run(self) -> None:
        module_key = f"{self._info.name}:{MODULE_SCOPE}"
        self._binds[module_key] = set()
        self._declared[module_key] = set()
        self._walk_body(self._info.source.tree.body, scope=(),
                        owner=module_key, enclosing_class=None)

    # -- traversal ----------------------------------------------------

    def _walk_body(
        self,
        body: Sequence[ast.stmt],
        scope: Tuple[str, ...],
        owner: str,
        enclosing_class: Optional[str],
    ) -> None:
        for stmt in body:
            self._walk(stmt, scope, owner, enclosing_class)

    def _walk(
        self,
        node: ast.AST,
        scope: Tuple[str, ...],
        owner: str,
        enclosing_class: Optional[str],
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = ".".join((*scope, node.name))
            key = f"{self._info.name}:{qualname}"
            binds, declared = _collect_binds(node)
            self._binds[key] = binds
            self._declared[key] = declared
            for decorator in node.decorator_list:
                self._walk(decorator, scope, owner, enclosing_class)
            for default in (*node.args.defaults,
                            *[d for d in node.args.kw_defaults
                              if d is not None]):
                self._walk(default, scope, owner, enclosing_class)
            self._walk_body(node.body, (*scope, node.name), key,
                            enclosing_class)
            return
        if isinstance(node, ast.ClassDef):
            qualname = ".".join((*scope, node.name))
            for decorator in node.decorator_list:
                self._walk(decorator, scope, owner, enclosing_class)
            self._walk_body(node.body, (*scope, node.name), owner,
                            qualname)
            return
        self._classify(node, owner, enclosing_class)
        for child in ast.iter_child_nodes(node):
            self._walk(child, scope, owner, enclosing_class)

    # -- effect classification ----------------------------------------

    def _effects(self, owner: str) -> LocalEffect:
        return self._local.setdefault(owner, LocalEffect())

    def _global_key_for(
        self, owner: str, node: ast.expr
    ) -> Optional[str]:
        """``module:NAME`` when ``node`` denotes a module-level global."""
        if isinstance(node, ast.Name):
            if node.id in self._binds.get(owner, set()):
                return None
            if node.id in self._declared.get(owner, set()) or (
                node.id not in self._info.source.aliases
            ):
                key = f"{self._info.name}:{node.id}"
                return key if key in self._globals else None
        resolved = self._info.source.resolve(node)
        if resolved is None or not resolved.startswith("repro"):
            return None
        module, _, name = resolved.rpartition(".")
        if not module:
            return None
        key = f"{module}:{name}"
        return key if key in self._globals else None

    def _at_module_scope(self, owner: str) -> bool:
        return owner.endswith(f":{MODULE_SCOPE}")

    def _note_read(self, owner: str, key: str, line: int) -> None:
        # A module initialising (or re-reading) its own globals at
        # import time is definition, not shared-state traffic.
        if self._at_module_scope(owner) and key.startswith(
            f"{self._info.name}:"
        ):
            return
        self._effects(owner).note(self._effects(owner).reads, key, line)

    def _note_write(self, owner: str, key: str, line: int) -> None:
        if self._at_module_scope(owner) and key.startswith(
            f"{self._info.name}:"
        ):
            return
        self._effects(owner).note(self._effects(owner).writes, key, line)

    def _note_io(self, owner: str, target: str, line: int) -> None:
        self._effects(owner).note(self._effects(owner).io, target, line)

    def _classify(
        self, node: ast.AST, owner: str, enclosing_class: Optional[str]
    ) -> None:
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets: List[ast.expr]
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            else:
                targets = [node.target]
            for target in targets:
                self._classify_store(node, target, owner)
            if isinstance(node, ast.Assign):
                self._maybe_handler_table(node, owner, enclosing_class)
            return
        if isinstance(node, ast.Call):
            self._classify_call(node, owner)
            return
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            key = self._global_key_for(owner, node)
            if key is not None:
                self._note_read(owner, key, node.lineno)
            return
        if isinstance(node, ast.Attribute) and isinstance(
            node.ctx, ast.Load
        ):
            resolved = self._info.source.resolve(node)
            if resolved == "os.environ":
                self._note_io(owner, "os.environ", node.lineno)
                return
            key = self._global_key_for(owner, node)
            if key is not None:
                self._note_read(owner, key, node.lineno)

    def _classify_store(
        self, stmt: ast.AST, target: ast.expr, owner: str
    ) -> None:
        line = int(getattr(stmt, "lineno", 1))
        if isinstance(target, ast.Name):
            if target.id in self._declared.get(owner, set()):
                key = f"{self._info.name}:{target.id}"
                if key in self._globals:
                    self._note_write(owner, key, line)
            return
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            key = self._global_key_for(owner, target.value)
            if key is not None:
                self._note_write(owner, key, line)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._classify_store(stmt, element, owner)

    def _classify_call(self, node: ast.Call, owner: str) -> None:
        func = node.func
        resolved = self._info.source.resolve(func)
        name = resolved
        if name is None and isinstance(func, ast.Name):
            if func.id in ("open", "input", "print") and (
                func.id not in self._binds.get(owner, set())
                and func.id not in self._info.functions
            ):
                name = func.id
        if name is not None and name in _IO_CALLS:
            self._note_io(owner, name, node.lineno)
            return
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATOR_METHODS
        ):
            key = self._global_key_for(owner, func.value)
            if key is not None:
                kind = self._globals[key].kind
                if kind == "contextvar":
                    return  # context-local by design (ambient pattern)
                self._note_write(owner, key, node.lineno)

    def _maybe_handler_table(
        self, node: ast.Assign, owner: str,
        enclosing_class: Optional[str],
    ) -> None:
        """``self._handlers = {Type: self._handle_x, ...}`` registration."""
        if enclosing_class is None or not isinstance(node.value, ast.Dict):
            return
        if not any(
            isinstance(t, ast.Attribute) and "handler" in t.attr.lower()
            for t in node.targets
        ):
            return
        for value in node.value.values:
            if (
                isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id in ("self", "cls")
            ):
                key = self._info.functions.get(
                    f"{enclosing_class}.{value.attr}"
                )
                if key is not None:
                    self._handlers.add(key)


# -- entry-point discovery -------------------------------------------


def _resolve_callable_ref(
    model: ProjectModel, info: ModuleInfo, node: ast.expr
) -> Optional[str]:
    """Function key for a bare callable reference (not a call)."""
    if isinstance(node, ast.Call):
        # functools.partial(fn, ...) — unwrap to the first argument.
        ctor = info.source.resolve(node.func)
        is_partial = ctor == "functools.partial" or (
            isinstance(node.func, ast.Name) and node.func.id == "partial"
        )
        if is_partial and node.args:
            return _resolve_callable_ref(model, info, node.args[0])
        return None
    resolved = info.source.resolve(node)
    if resolved is not None and (
        resolved == "repro" or resolved.startswith("repro.")
    ):
        return model._lookup_internal(resolved)
    if isinstance(node, ast.Name):
        return info.functions.get(node.id)
    return None


def _lambda_targets(
    model: ProjectModel, info: ModuleInfo, node: ast.Lambda
) -> List[str]:
    """Internal call targets inside a ``lambda: ...`` builder body."""
    keys: List[str] = []
    for child in ast.walk(node.body):
        if not isinstance(child, ast.Call):
            continue
        key = _resolve_callable_ref(model, info, child.func)
        if key is None:
            resolved = info.source.resolve(child.func)
            if resolved is not None and resolved.startswith("repro"):
                key = model._lookup_internal(resolved)
        if key is not None:
            keys.append(key)
    return keys


def _is_task_dispatch(info: ModuleInfo, node: ast.Call) -> bool:
    func = node.func
    resolved = info.source.resolve(func)
    if resolved is not None and (
        resolved == "map_tasks" or resolved.endswith(".map_tasks")
    ):
        return True
    if (
        resolved is None
        and isinstance(func, ast.Name)
        and func.id == "map_tasks"
    ):
        return True
    if isinstance(func, ast.Attribute) and func.attr in ("map", "submit"):
        receiver = func.value
        if isinstance(receiver, ast.Name):
            return "scheduler" in receiver.id.lower()
        if isinstance(receiver, ast.Call):
            ctor = info.source.resolve(receiver.func)
            if ctor is not None and ctor.endswith("TaskScheduler"):
                return True
            return (
                isinstance(receiver.func, ast.Name)
                and receiver.func.id == "TaskScheduler"
            )
    return False


def _discover_entries(
    model: ProjectModel,
) -> Tuple[List[EntryPoint], List[EntryPoint]]:
    """``(task entries, cache-builder roots)`` from every call site."""
    tasks: Dict[Tuple[str, str, int], EntryPoint] = {}
    builders: Dict[Tuple[str, str, int], EntryPoint] = {}
    for name in sorted(model.modules):
        info = model.modules[name]
        path = info.source.display_path
        for raw in info.raw_calls:
            node = raw.node
            if _is_task_dispatch(info, node) and node.args:
                via = ("map_tasks"
                       if not isinstance(node.func, ast.Attribute)
                       else f"scheduler.{node.func.attr}")
                key = _resolve_callable_ref(model, info, node.args[0])
                if key is not None:
                    entry = EntryPoint(key=key, site_path=path,
                                       site_line=node.lineno, via=via)
                    tasks.setdefault((key, path, node.lineno), entry)
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute)
                    and func.attr == "get_or_build"):
                continue
            build: Optional[ast.expr] = None
            if len(node.args) >= 2:
                build = node.args[1]
            else:
                for keyword in node.keywords:
                    if keyword.arg == "build":
                        build = keyword.value
            if build is None:
                continue
            if isinstance(build, ast.Lambda):
                keys = _lambda_targets(model, info, build)
            else:
                resolved_key = _resolve_callable_ref(model, info, build)
                keys = [resolved_key] if resolved_key is not None else []
            for key in keys:
                entry = EntryPoint(key=key, site_path=path,
                                   site_line=node.lineno,
                                   via="get_or_build")
                builders.setdefault((key, path, node.lineno), entry)
    return (
        [tasks[k] for k in sorted(tasks)],
        [builders[k] for k in sorted(builders)],
    )


def _discover_handlers(
    model: ProjectModel, registered: Set[str]
) -> List[str]:
    handlers = set(registered)
    for key in model.functions:
        node = model.functions[key]
        if not node.module.startswith(_SIMULATOR_PREFIX):
            continue
        parts = node.qualname.rsplit(".", 1)
        if len(parts) == 2 and parts[1].startswith("_handle_"):
            handlers.add(key)
    return sorted(handlers)


# -- the fixpoint -----------------------------------------------------


def _compute_summaries(
    model: ProjectModel, local: Dict[str, LocalEffect]
) -> Dict[str, Summary]:
    summaries: Dict[str, Summary] = {}
    for key in sorted(model.functions):
        effect = local.get(key)
        summary = Summary()
        if effect is not None and model.functions[key].module not in (
            EFFECT_BOUNDARY_MODULES
        ):
            summary.reads = set(effect.reads)
            summary.writes = set(effect.writes)
            summary.io = set(effect.io)
        summaries[key] = summary

    reverse: Dict[str, List[str]] = {}
    for key in sorted(model.functions):
        for edge in model.functions[key].edges:
            if edge.internal and edge.target in summaries:
                reverse.setdefault(edge.target, []).append(key)

    worklist: Deque[str] = deque(sorted(summaries))
    queued: Set[str] = set(worklist)
    while worklist:
        current = worklist.popleft()
        queued.discard(current)
        node = model.functions[current]
        if node.module in EFFECT_BOUNDARY_MODULES:
            continue  # boundary functions keep an empty summary
        changed = False
        for edge in node.edges:
            if not edge.internal:
                continue
            callee = summaries.get(edge.target)
            callee_node = model.functions.get(edge.target)
            if callee is None or callee_node is None:
                continue
            if callee_node.module in EFFECT_BOUNDARY_MODULES:
                continue
            if summaries[current].merge(callee):
                changed = True
        if changed:
            for caller in sorted(set(reverse.get(current, ()))):
                if caller not in queued:
                    worklist.append(caller)
                    queued.add(caller)
    return summaries


# -- reachability and chains -----------------------------------------


def _paths_from(
    model: ProjectModel, start: str
) -> Dict[str, Tuple[str, ...]]:
    """Shortest call paths from ``start``, pruned at effect boundaries."""
    if start not in model.functions:
        return {}
    paths: Dict[str, Tuple[str, ...]] = {start: (start,)}
    queue: Deque[str] = deque([start])
    while queue:
        current = queue.popleft()
        targets = sorted({
            edge.target for edge in model.functions[current].edges
            if edge.internal
        })
        for target in targets:
            if target in paths:
                continue
            node = model.functions.get(target)
            if node is None or node.module in EFFECT_BOUNDARY_MODULES:
                continue
            paths[target] = (*paths[current], target)
            queue.append(target)
    return paths


def _render_chain(
    model: ProjectModel, chain: Tuple[str, ...], terminal: str
) -> str:
    labels: List[str] = []
    previous: Optional[str] = None
    for key in chain:
        node = model.functions[key]
        if previous is None or node.module == previous:
            labels.append(node.qualname)
        else:
            labels.append(f"{node.module}:{node.qualname}")
        previous = node.module
    labels.append(terminal)
    return " -> ".join(labels)


# -- the analysis entry point ----------------------------------------


def analyze(model: ProjectModel) -> EffectAnalysis:
    """Run the whole effect pass over a built :class:`ProjectModel`."""
    globals_table = _collect_globals(model)
    local: Dict[str, LocalEffect] = {}
    registered_handlers: Set[str] = set()
    for name in sorted(model.modules):
        _EffectCollector(
            model, model.modules[name], globals_table, local,
            registered_handlers,
        ).run()
    stateful: Set[str] = {
        key for key, var in globals_table.items()
        if var.kind == "resource"
    }
    for effect in local.values():
        stateful.update(effect.writes)
    # Drop reads of never-written, non-resource globals everywhere: a
    # module-level table nobody mutates is a constant, not state.
    for effect in local.values():
        effect.reads = {
            key: line for key, line in effect.reads.items()
            if key in stateful
        }
    summaries = _compute_summaries(model, local)
    task_entries, cache_builders = _discover_entries(model)
    handlers = _discover_handlers(model, registered_handlers)
    return EffectAnalysis(
        model=model,
        globals=globals_table,
        local=local,
        summaries=summaries,
        stateful=stateful,
        task_entries=task_entries,
        cache_builders=cache_builders,
        event_handlers=handlers,
    )


# -- the four rules ---------------------------------------------------


def _site_suppressed(
    model: ProjectModel, rule_id: str, site_key: str, line: int
) -> bool:
    node = model.functions.get(site_key)
    if node is None:
        return False
    info = model.modules.get(node.module)
    return info is not None and info.source.is_suppressed(rule_id, line)


def _effect_terminal(
    model: ProjectModel, site_key: str, target: str, line: int
) -> str:
    node = model.functions[site_key]
    return f"{target} ({node.path}:{line})"


def check_shared_mutable_globals(
    analysis: EffectAnalysis,
) -> List[Finding]:
    """Task-reachable writes to unmerged module globals."""
    model = analysis.model
    findings: List[Finding] = []
    seen: Set[Tuple[str, str]] = set()
    for entry in analysis.task_entries:
        paths = _paths_from(model, entry.key)
        if not paths:
            continue
        node = model.functions[entry.key]
        for reached in sorted(paths, key=lambda k: (len(paths[k]), k)):
            effect = analysis.local.get(reached)
            if effect is None:
                continue
            for target in sorted(effect.writes):
                if target in MERGE_BACK_REGISTRY:
                    continue
                var = analysis.globals.get(target)
                if var is not None and var.kind == "contextvar":
                    continue
                if (entry.key, target) in seen:
                    continue
                line = effect.writes[target]
                if _site_suppressed(model, SHARED_MUTABLE_GLOBAL,
                                    reached, line):
                    continue
                seen.add((entry.key, target))
                chain = _render_chain(
                    model, paths[reached],
                    _effect_terminal(model, reached, target, line),
                )
                findings.append(Finding(
                    rule_id=SHARED_MUTABLE_GLOBAL,
                    path=node.path,
                    line=node.line,
                    message=(
                        f"fork task {node.qualname} mutates module-level "
                        f"{target} with no registered merge-back hook: "
                        f"{chain}; worker-local mutations are dropped at "
                        f"join — return the state with the task result "
                        f"or register a merge-back "
                        f"(repro.lint.effects.MERGE_BACK_REGISTRY)"
                    ),
                ))
    return findings


def check_cache_key_escape(analysis: EffectAnalysis) -> List[Finding]:
    """Cache builders reading state outside their key arguments."""
    model = analysis.model
    findings: List[Finding] = []
    seen: Set[Tuple[str, str]] = set()
    for entry in analysis.cache_builders:
        paths = _paths_from(model, entry.key)
        if not paths:
            continue
        node = model.functions[entry.key]
        for reached in sorted(paths, key=lambda k: (len(paths[k]), k)):
            effect = analysis.local.get(reached)
            if effect is None:
                continue
            escapes: List[Tuple[str, int, str]] = []
            for target in sorted(effect.reads):
                escapes.append((target, effect.reads[target],
                                "reads module state"))
            for target in sorted(effect.writes):
                escapes.append((target, effect.writes[target],
                                "mutates module state"))
            for target in sorted(effect.io):
                escapes.append((target, effect.io[target],
                                "performs IO via"))
            for target, line, verb in escapes:
                if (entry.key, target) in seen:
                    continue
                if _site_suppressed(model, CACHE_KEY_ESCAPE, reached,
                                    line):
                    continue
                seen.add((entry.key, target))
                chain = _render_chain(
                    model, paths[reached],
                    _effect_terminal(model, reached, target, line),
                )
                findings.append(Finding(
                    rule_id=CACHE_KEY_ESCAPE,
                    path=node.path,
                    line=node.line,
                    message=(
                        f"cache builder {node.qualname} (registered at "
                        f"{entry.site_path}:{entry.site_line}) {verb} "
                        f"{target}, which is not derivable from its key "
                        f"arguments: {chain}; a stale hit returns a "
                        f"value built from state the key never saw"
                    ),
                ))
    return findings


def check_impure_event_handlers(
    analysis: EffectAnalysis,
) -> List[Finding]:
    """Handlers whose effects escape engine-owned instance state."""
    model = analysis.model
    findings: List[Finding] = []
    for handler in analysis.event_handlers:
        paths = _paths_from(model, handler)
        if not paths:
            continue
        node = model.functions[handler]
        reported: Set[str] = set()
        for reached in sorted(paths, key=lambda k: (len(paths[k]), k)):
            effect = analysis.local.get(reached)
            if effect is None:
                continue
            sites: List[Tuple[str, int, str]] = []
            for target in sorted(effect.writes):
                sites.append((target, effect.writes[target], "writes"))
            for target in sorted(effect.io):
                sites.append((target, effect.io[target], "performs IO via"))
            for target, line, verb in sites:
                if target in reported:
                    continue
                if _site_suppressed(model, IMPURE_EVENT_HANDLER,
                                    reached, line):
                    continue
                reported.add(target)
                chain = _render_chain(
                    model, paths[reached],
                    _effect_terminal(model, reached, target, line),
                )
                findings.append(Finding(
                    rule_id=IMPURE_EVENT_HANDLER,
                    path=node.path,
                    line=node.line,
                    message=(
                        f"event handler {node.qualname} {verb} {target} "
                        f"outside engine-owned state: {chain}; the "
                        f"batched loop reorders whole slices, so handler "
                        f"effects must stay on the engine instance"
                    ),
                ))
    return findings


def check_fork_held_resources(
    analysis: EffectAnalysis,
) -> List[Finding]:
    """Pre-fork module-level resources used by task-reachable code."""
    model = analysis.model
    resources = {
        key for key, var in analysis.globals.items()
        if var.kind == "resource"
    }
    if not resources:
        return []
    findings: List[Finding] = []
    seen: Set[Tuple[str, str]] = set()
    for entry in analysis.task_entries:
        paths = _paths_from(model, entry.key)
        if not paths:
            continue
        node = model.functions[entry.key]
        for reached in sorted(paths, key=lambda k: (len(paths[k]), k)):
            effect = analysis.local.get(reached)
            if effect is None:
                continue
            uses: Dict[str, int] = {}
            for table in (effect.reads, effect.writes):
                for target, line in table.items():
                    if target in resources and (
                        target not in uses or line < uses[target]
                    ):
                        uses[target] = line
            for target in sorted(uses):
                if (entry.key, target) in seen:
                    continue
                line = uses[target]
                if _site_suppressed(model, FORK_HELD_RESOURCE, reached,
                                    line):
                    continue
                seen.add((entry.key, target))
                var = analysis.globals[target]
                chain = _render_chain(
                    model, paths[reached],
                    _effect_terminal(model, reached, target, line),
                )
                findings.append(Finding(
                    rule_id=FORK_HELD_RESOURCE,
                    path=node.path,
                    line=node.line,
                    message=(
                        f"fork task {node.qualname} uses {target}, an OS "
                        f"resource created at import time "
                        f"({var.path}:{var.line}) and inherited across "
                        f"fork: {chain}; open it inside the task (or "
                        f"after the pool starts) so workers get their "
                        f"own handle"
                    ),
                ))
    return findings


def effect_findings(analysis: EffectAnalysis) -> List[Finding]:
    """All four rules, canonically ordered (site pragmas applied)."""
    return sort_findings([
        *check_shared_mutable_globals(analysis),
        *check_cache_key_escape(analysis),
        *check_impure_event_handlers(analysis),
        *check_fork_held_resources(analysis),
    ])


def effect_rule_catalog() -> Dict[str, str]:
    """``rule id -> summary`` for the effect rules."""
    return {rule.rule_id: rule.summary for rule in EFFECT_RULES}


# -- the effect report (CLI / CI artifact) ---------------------------


def effect_report(
    analysis: EffectAnalysis,
    findings: Iterable[Finding],
    function: Optional[str] = None,
) -> Dict[str, object]:
    """Deterministic JSON-ready payload of the whole effect table.

    ``function`` filters the function table to keys equal to, or whose
    qualname matches, the given name (``repro lint effects --function``).
    """
    model = analysis.model
    task_reachable: Set[str] = set()
    for entry in analysis.task_entries:
        task_reachable.update(_paths_from(model, entry.key))
    entry_keys = {e.key for e in analysis.task_entries}
    builder_keys = {e.key for e in analysis.cache_builders}
    handler_keys = set(analysis.event_handlers)

    def matches(key: str, qualname: str) -> bool:
        if function is None:
            return True
        return function in (key, qualname) or key.endswith(
            f":{function}"
        )

    functions: List[Dict[str, object]] = []
    for key in sorted(model.functions):
        node = model.functions[key]
        if not matches(key, node.qualname):
            continue
        summary = analysis.summaries[key]
        functions.append({
            "function": key,
            "path": node.path,
            "line": node.line,
            "effect": analysis.classify(key),
            "reads": sorted(summary.reads & analysis.stateful),
            "writes": sorted(summary.writes),
            "io": sorted(summary.io),
            "task_entry": key in entry_keys,
            "task_reachable": key in task_reachable,
            "cache_builder": key in builder_keys,
            "event_handler": key in handler_keys,
        })
    globals_rows: List[Dict[str, object]] = []
    for key in sorted(analysis.globals):
        var = analysis.globals[key]
        if not (var.mutable or key in analysis.stateful):
            continue
        globals_rows.append({
            "global": key,
            "path": var.path,
            "line": var.line,
            "kind": var.kind,
            "stateful": key in analysis.stateful,
            "merge_back": MERGE_BACK_REGISTRY.get(key),
        })
    return {
        "functions": functions,
        "globals": globals_rows,
        "entry_points": {
            "tasks": [
                {"function": e.key, "site": f"{e.site_path}:{e.site_line}",
                 "via": e.via}
                for e in analysis.task_entries
            ],
            "cache_builders": [
                {"function": e.key, "site": f"{e.site_path}:{e.site_line}",
                 "via": e.via}
                for e in analysis.cache_builders
            ],
            "event_handlers": list(analysis.event_handlers),
        },
        "findings": [finding.to_dict() for finding in findings],
    }
