"""Experiment registry: id -> runner, shared by benches and docs."""

from __future__ import annotations

from typing import Callable, Dict

from repro.analysis.report import ExperimentResult
from repro.errors import ReproError


def _load() -> Dict[str, Callable[..., ExperimentResult]]:
    # Imported lazily to avoid circular imports with repro.experiments.
    from repro.experiments.fig3_groupsize import run_fig3
    from repro.experiments.fig4_landmark_accuracy_size import run_fig4
    from repro.experiments.fig5_landmark_accuracy_groups import run_fig5
    from repro.experiments.fig6_num_landmarks import run_fig6
    from repro.experiments.fig7_feature_vs_euclidean import run_fig7
    from repro.experiments.fig8_sdsl_vs_sl_size import run_fig8
    from repro.experiments.fig9_sdsl_vs_sl_groups import run_fig9
    from repro.experiments.figr_fault_sweep import run_figr

    return {
        "fig3": run_fig3,
        "fig4": run_fig4,
        "fig5": run_fig5,
        "fig6": run_fig6,
        "fig7": run_fig7,
        "fig8": run_fig8,
        "fig9": run_fig9,
        "figR": run_figr,
    }


REGISTRY: Dict[str, Callable[..., ExperimentResult]] = _load()


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one registered experiment by id (e.g. ``"fig4"``)."""
    try:
        runner = REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(REGISTRY))
        raise ReproError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None
    return runner(**kwargs)
