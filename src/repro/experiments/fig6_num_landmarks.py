"""Figure 6: clustering accuracy vs. number of landmarks.

The bar graph: GICost for the three landmark selectors at L = 10, 20,
25 landmarks (fixed network, K = 10 groups).  The paper reports all
three improving with more landmarks, diminishing returns beyond 25, and
SL best at every L.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.gicost import average_group_interaction_cost
from repro.analysis.report import ExperimentResult, SeriesResult
from repro.core.schemes import (
    MinDistLandmarksScheme,
    RandomLandmarksScheme,
    SLScheme,
)
from repro.experiments.base import landmark_config
from repro.topology.network import build_network
from repro.utils.rng import RngFactory

PAPER_LANDMARK_COUNTS = (10, 20, 25)


def run_fig6(
    num_caches: int = 150,
    landmark_counts: Optional[Sequence[int]] = None,
    num_groups: int = 10,
    seed: int = 19,
    repetitions: int = 3,
    paper_scale: bool = False,
) -> ExperimentResult:
    """Reproduce Figure 6's GICost bars per (selector, L) combination."""
    if paper_scale:
        num_caches = 500
    landmark_counts = tuple(landmark_counts or PAPER_LANDMARK_COUNTS)
    if any(l < 2 for l in landmark_counts):
        raise ValueError(f"landmark counts must be >= 2: {landmark_counts}")

    schemes = {
        "sl_ms": SLScheme,
        "random_ms": RandomLandmarksScheme,
        "mindist_ms": MinDistLandmarksScheme,
    }
    series = {name: [] for name in schemes}
    factory = RngFactory(seed)

    for l in landmark_counts:
        lm_config = landmark_config(l, num_caches=num_caches)
        totals = {name: 0.0 for name in schemes}
        for rep in range(repetitions):
            rep_factory = factory.fork(f"l{l}-rep{rep}")
            network = build_network(
                num_caches=num_caches, seed=rep_factory.stream("topology")
            )
            for name, scheme_cls in schemes.items():
                scheme = scheme_cls(landmark_config=lm_config)
                grouping = scheme.form_groups(
                    network, num_groups, seed=rep_factory.stream(name)
                )
                totals[name] += average_group_interaction_cost(
                    network, grouping
                )
        for name in schemes:
            series[name].append(totals[name] / repetitions)

    return ExperimentResult(
        experiment_id="fig6",
        x_label="num_landmarks",
        x_values=landmark_counts,
        series=tuple(
            SeriesResult(name, tuple(values))
            for name, values in series.items()
        ),
        notes={
            "num_caches": float(num_caches),
            "num_groups": float(num_groups),
        },
    )
