"""Figure 6: clustering accuracy vs. number of landmarks.

The bar graph: GICost for the three landmark selectors at L = 10, 20,
25 landmarks (fixed network, K = 10 groups).  The paper reports all
three improving with more landmarks, diminishing returns beyond 25, and
SL best at every L.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.gicost import average_group_interaction_cost
from repro.analysis.report import ExperimentResult, SeriesResult
from repro.core.schemes import (
    MinDistLandmarksScheme,
    RandomLandmarksScheme,
    SLScheme,
)
from repro.experiments.base import landmark_config
from repro.runtime.cache import cached_network
from repro.runtime.scheduler import map_tasks
from repro.utils.rng import RngFactory

PAPER_LANDMARK_COUNTS = (10, 20, 25)

_SCHEMES = {
    "sl_ms": SLScheme,
    "random_ms": RandomLandmarksScheme,
    "mindist_ms": MinDistLandmarksScheme,
}


def _fig6_unit(payload: dict) -> float:
    """GICost of one (L, repetition, selector) work unit.

    The network is fixed per repetition (it does not depend on the
    landmark count being swept), so the topology comes from the testbed
    cache; the selector's seed stream is derived per (L, selector).
    """
    network = cached_network(payload["num_caches"], payload["rep_seed"])
    scheme = _SCHEMES[payload["scheme"]](
        landmark_config=landmark_config(
            payload["num_landmarks"], num_caches=payload["num_caches"]
        )
    )
    grouping = scheme.form_groups(
        network,
        payload["num_groups"],
        seed=RngFactory(payload["rep_seed"]).stream(
            f"l{payload['num_landmarks']}-{payload['scheme']}"
        ),
    )
    return average_group_interaction_cost(network, grouping)


def run_fig6(
    num_caches: int = 150,
    landmark_counts: Optional[Sequence[int]] = None,
    num_groups: int = 10,
    seed: int = 19,
    repetitions: int = 3,
    paper_scale: bool = False,
) -> ExperimentResult:
    """Reproduce Figure 6's GICost bars per (selector, L) combination."""
    if paper_scale:
        num_caches = 500
    landmark_counts = tuple(landmark_counts or PAPER_LANDMARK_COUNTS)
    if any(count < 2 for count in landmark_counts):
        raise ValueError(f"landmark counts must be >= 2: {landmark_counts}")

    series = {name: [] for name in _SCHEMES}
    factory = RngFactory(seed)
    rep_seeds = [
        factory.fork(f"rep{rep}").root_seed for rep in range(repetitions)
    ]

    payloads = [
        {
            "num_caches": num_caches,
            "num_groups": num_groups,
            "num_landmarks": count,
            "scheme": name,
            "rep_seed": rep_seeds[rep],
        }
        for count in landmark_counts
        for rep in range(repetitions)
        for name in _SCHEMES
    ]
    values = iter(map_tasks(_fig6_unit, payloads))

    for _l in landmark_counts:
        totals = {name: 0.0 for name in _SCHEMES}
        for _rep in range(repetitions):
            for name in _SCHEMES:
                totals[name] += next(values)
        for name in _SCHEMES:
            series[name].append(totals[name] / repetitions)

    return ExperimentResult(
        experiment_id="fig6",
        x_label="num_landmarks",
        x_values=landmark_counts,
        series=tuple(
            SeriesResult(name, tuple(values))
            for name, values in series.items()
        ),
        notes={
            "num_caches": float(num_caches),
            "num_groups": float(num_groups),
        },
    )
