"""Figure 9: SDSL vs. SL average latency, varying the number of groups.

One fixed network, K swept; the paper reports SDSL below SL at every K
on the 500-cache network.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.latency import improvement_percent
from repro.analysis.report import ExperimentResult, SeriesResult
from repro.config import SDSLConfig
from repro.core.schemes import SDSLScheme, SLScheme
from repro.experiments.base import (
    build_testbed,
    landmark_config,
    run_simulation,
)
from repro.runtime.scheduler import map_tasks

DEFAULT_K_VALUES = (5, 10, 15, 25, 40)
PAPER_K_VALUES = (10, 25, 50, 75, 100)


def _fig9_unit(payload: dict) -> float:
    """Average latency of one (K, repetition, scheme) work unit.

    All units share one testbed, re-fetched from the content-keyed
    cache by the figure seed, so the Dijkstra solve happens once per
    process rather than once per unit.
    """
    testbed = build_testbed(payload["num_caches"], payload["seed"])
    lm_config = landmark_config(
        payload["num_landmarks"], num_caches=payload["num_caches"]
    )
    if payload["scheme"] == "sl":
        scheme = SLScheme(landmark_config=lm_config)
    else:
        scheme = SDSLScheme(
            sdsl_config=SDSLConfig(theta=payload["theta"]),
            landmark_config=lm_config,
        )
    grouping = scheme.form_groups(
        testbed.network, payload["k"], seed=payload["run_seed"]
    )
    return run_simulation(testbed, grouping).average_latency_ms()


def run_fig9(
    num_caches: int = 150,
    k_values: Optional[Sequence[int]] = None,
    num_landmarks: int = 25,
    theta: float = 2.0,
    seed: int = 31,
    repetitions: int = 2,
    paper_scale: bool = False,
) -> ExperimentResult:
    """Reproduce Figure 9's latency-vs-K comparison.

    Each point averages ``repetitions`` scheme runs over the same
    testbed (K-means initialization noise is the dominant variance).
    """
    if paper_scale:
        num_caches = 500
        k_values = k_values or PAPER_K_VALUES
    k_values = tuple(k_values or DEFAULT_K_VALUES)
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")

    # Warm the cache so forked pool workers inherit the built testbed.
    build_testbed(num_caches, seed)

    payloads = [
        {
            "num_caches": num_caches,
            "k": k,
            "num_landmarks": num_landmarks,
            "theta": theta,
            "scheme": scheme,
            "seed": seed,
            "run_seed": seed + 1000 * rep + k,
        }
        for k in k_values
        for rep in range(repetitions)
        for scheme in ("sl", "sdsl")
    ]
    values = iter(map_tasks(_fig9_unit, payloads))

    sl_series = []
    sdsl_series = []
    for _k in k_values:
        sl_total = 0.0
        sdsl_total = 0.0
        for _rep in range(repetitions):
            sl_total += next(values)
            sdsl_total += next(values)
        sl_series.append(sl_total / repetitions)
        sdsl_series.append(sdsl_total / repetitions)

    notes = {
        "mean_improvement_pct": sum(
            improvement_percent(sl, sdsl)
            for sl, sdsl in zip(sl_series, sdsl_series)
        ) / len(sl_series),
        "theta": theta,
        "num_caches": float(num_caches),
    }
    return ExperimentResult(
        experiment_id="fig9",
        x_label="num_groups",
        x_values=k_values,
        series=(
            SeriesResult("sl_ms", tuple(sl_series)),
            SeriesResult("sdsl_ms", tuple(sdsl_series)),
        ),
        notes=notes,
    )
