"""Experiment harness: one module per paper figure.

Each ``run_figN`` function regenerates the corresponding figure's
rows/series as an :class:`repro.analysis.report.ExperimentResult`.
Default sizes are laptop-scale; pass ``paper_scale=True`` for the
paper's 100–500-cache sweeps (minutes instead of seconds).

The :data:`REGISTRY` maps experiment ids to runner functions so the
benchmark harness and EXPERIMENTS.md index stay in sync.
"""

from repro.experiments.registry import REGISTRY, run_experiment
from repro.experiments.suite import SuiteRun, run_suite
from repro.experiments.fig3_groupsize import run_fig3
from repro.experiments.fig4_landmark_accuracy_size import run_fig4
from repro.experiments.fig5_landmark_accuracy_groups import run_fig5
from repro.experiments.fig6_num_landmarks import run_fig6
from repro.experiments.fig7_feature_vs_euclidean import run_fig7
from repro.experiments.fig8_sdsl_vs_sl_size import run_fig8
from repro.experiments.fig9_sdsl_vs_sl_groups import run_fig9

__all__ = [
    "REGISTRY",
    "run_experiment",
    "SuiteRun",
    "run_suite",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
]
