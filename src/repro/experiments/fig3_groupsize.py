"""Figure 3: average latency vs. average cache group size (SL scheme).

The paper's motivating experiment: a 500-cache network partitioned by
the SL scheme into groups of average size swept from 2 to 500.  Three
latency curves — all caches, the 50 nearest the origin, the 50 farthest
— all follow a U-shape, with minima at *different* group sizes: far
caches prefer larger groups (hit rate dominates), near caches prefer
smaller ones (interaction cost dominates).  That non-uniformity is the
motivation for SDSL.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.report import ExperimentResult, SeriesResult
from repro.core.groups import single_group
from repro.core.schemes import SLScheme
from repro.experiments.base import (
    Testbed,
    build_testbed,
    landmark_config,
    run_simulation,
)
from repro.runtime.scheduler import map_tasks

#: Group sizes swept at laptop scale (paper sweeps 2..500 on 500 caches).
DEFAULT_GROUP_SIZES = (2, 5, 10, 25, 50, 100, 150)
PAPER_GROUP_SIZES = (2, 5, 10, 25, 50, 100, 250, 500)


def _fig3_point(payload: dict) -> tuple:
    """One sweep point: form groups at one size and simulate.

    Module-level and driven by a plain payload dict so the ambient
    :class:`~repro.runtime.scheduler.TaskScheduler` can ship it to a
    pool worker; the testbed is re-fetched from the content-keyed cache
    (or carried along when the caller supplied its own).
    """
    testbed = payload.get("testbed")
    if testbed is None:
        testbed = build_testbed(payload["num_caches"], payload["seed"])
    n = testbed.num_caches
    k = max(1, round(n / payload["size"]))
    if k == 1:
        grouping = single_group(testbed.network.cache_nodes)
    else:
        scheme = SLScheme(landmark_config=landmark_config(num_caches=n))
        grouping = scheme.form_groups(testbed.network, k, seed=payload["seed"])
    result = run_simulation(testbed, grouping)
    subset = payload["subset"]
    return (
        result.average_latency_ms(),
        result.latency_nearest_origin(subset),
        result.latency_farthest_origin(subset),
    )


def run_fig3(
    num_caches: int = 150,
    group_sizes: Optional[Sequence[int]] = None,
    subset_count: Optional[int] = None,
    seed: int = 11,
    paper_scale: bool = False,
    testbed: Optional[Testbed] = None,
) -> ExperimentResult:
    """Reproduce Figure 3's three latency-vs-group-size curves.

    ``subset_count`` defaults to 10% of the caches (the paper's 50 of
    500).  Pass an existing ``testbed`` to reuse its network/workload.
    """
    if paper_scale:
        num_caches = 500
        group_sizes = group_sizes or PAPER_GROUP_SIZES
    group_sizes = tuple(group_sizes or DEFAULT_GROUP_SIZES)
    if any(size < 1 for size in group_sizes):
        raise ValueError(f"group sizes must be >= 1: {group_sizes}")

    supplied = testbed is not None
    if not supplied:
        # Warm the cache once in this process so pool workers forked
        # later inherit the built testbed instead of each rebuilding it.
        testbed = build_testbed(num_caches, seed)
    n = testbed.num_caches
    subset = subset_count or max(5, n // 10)

    swept = [size for size in group_sizes if size <= n]
    payloads = [
        {
            "num_caches": n,
            "seed": seed,
            "size": size,
            "subset": subset,
            # A caller-supplied testbed is not reconstructible from the
            # seed, so it rides along; cache-built ones are re-fetched.
            "testbed": testbed if supplied else None,
        }
        for size in swept
    ]
    points = map_tasks(_fig3_point, payloads)
    all_latency = [point[0] for point in points]
    near_latency = [point[1] for point in points]
    far_latency = [point[2] for point in points]

    return ExperimentResult(
        experiment_id="fig3",
        x_label="avg_group_size",
        x_values=tuple(swept),
        series=(
            SeriesResult("all_caches_ms", tuple(all_latency)),
            SeriesResult(f"nearest_{subset}_ms", tuple(near_latency)),
            SeriesResult(f"farthest_{subset}_ms", tuple(far_latency)),
        ),
        notes={"num_caches": float(n), "subset_count": float(subset)},
    )
