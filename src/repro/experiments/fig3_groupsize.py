"""Figure 3: average latency vs. average cache group size (SL scheme).

The paper's motivating experiment: a 500-cache network partitioned by
the SL scheme into groups of average size swept from 2 to 500.  Three
latency curves — all caches, the 50 nearest the origin, the 50 farthest
— all follow a U-shape, with minima at *different* group sizes: far
caches prefer larger groups (hit rate dominates), near caches prefer
smaller ones (interaction cost dominates).  That non-uniformity is the
motivation for SDSL.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.report import ExperimentResult, SeriesResult
from repro.core.groups import single_group
from repro.core.schemes import SLScheme
from repro.experiments.base import (
    Testbed,
    build_testbed,
    landmark_config,
    run_simulation,
)

#: Group sizes swept at laptop scale (paper sweeps 2..500 on 500 caches).
DEFAULT_GROUP_SIZES = (2, 5, 10, 25, 50, 100, 150)
PAPER_GROUP_SIZES = (2, 5, 10, 25, 50, 100, 250, 500)


def run_fig3(
    num_caches: int = 150,
    group_sizes: Optional[Sequence[int]] = None,
    subset_count: Optional[int] = None,
    seed: int = 11,
    paper_scale: bool = False,
    testbed: Optional[Testbed] = None,
) -> ExperimentResult:
    """Reproduce Figure 3's three latency-vs-group-size curves.

    ``subset_count`` defaults to 10% of the caches (the paper's 50 of
    500).  Pass an existing ``testbed`` to reuse its network/workload.
    """
    if paper_scale:
        num_caches = 500
        group_sizes = group_sizes or PAPER_GROUP_SIZES
    group_sizes = tuple(group_sizes or DEFAULT_GROUP_SIZES)
    if any(size < 1 for size in group_sizes):
        raise ValueError(f"group sizes must be >= 1: {group_sizes}")

    if testbed is None:
        testbed = build_testbed(num_caches, seed)
    n = testbed.num_caches
    subset = subset_count or max(5, n // 10)

    all_latency = []
    near_latency = []
    far_latency = []
    swept = []
    for size in group_sizes:
        if size > n:
            continue
        swept.append(size)
        k = max(1, round(n / size))
        if k == 1:
            grouping = single_group(testbed.network.cache_nodes)
        else:
            scheme = SLScheme(
                landmark_config=landmark_config(num_caches=n)
            )
            grouping = scheme.form_groups(testbed.network, k, seed=seed)
        result = run_simulation(testbed, grouping)
        all_latency.append(result.average_latency_ms())
        near_latency.append(result.latency_nearest_origin(subset))
        far_latency.append(result.latency_farthest_origin(subset))

    return ExperimentResult(
        experiment_id="fig3",
        x_label="avg_group_size",
        x_values=tuple(swept),
        series=(
            SeriesResult("all_caches_ms", tuple(all_latency)),
            SeriesResult(f"nearest_{subset}_ms", tuple(near_latency)),
            SeriesResult(f"farthest_{subset}_ms", tuple(far_latency)),
        ),
        notes={"num_caches": float(n), "subset_count": float(subset)},
    )
