"""Figure 4: landmark-selection accuracy vs. network size.

Compares the three landmark selection techniques — SL greedy, random,
and min-dist — by average group interaction cost, on networks of
growing size, with K fixed at 10% of N and L = 25 landmarks.  The paper
reports SL beating random by 8–26% and min-dist by 21–46% across all
sizes.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.gicost import average_group_interaction_cost
from repro.analysis.latency import improvement_percent
from repro.analysis.report import ExperimentResult, SeriesResult
from repro.core.schemes import (
    MinDistLandmarksScheme,
    RandomLandmarksScheme,
    SLScheme,
)
from repro.experiments.base import landmark_config
from repro.runtime.cache import cached_network
from repro.runtime.scheduler import map_tasks
from repro.utils.rng import RngFactory

DEFAULT_SIZES = (60, 100, 140, 180)
PAPER_SIZES = (100, 200, 300, 400, 500)
#: K is set to 10% of the cache count, per the paper.
GROUP_FRACTION = 0.10

_SCHEMES = {
    "sl_ms": SLScheme,
    "random_ms": RandomLandmarksScheme,
    "mindist_ms": MinDistLandmarksScheme,
}


def _fig4_unit(payload: dict) -> float:
    """GICost of one (size, repetition, selector) work unit.

    The repetition's network and the selector's K-means seed stream are
    both re-derived from the forked factory's root seed, so the unit is
    a pure function of the payload — identical inline or on a worker.
    """
    network = cached_network(payload["n"], payload["fork_seed"])
    scheme = _SCHEMES[payload["scheme"]](
        landmark_config=landmark_config(
            payload["num_landmarks"], num_caches=payload["n"]
        )
    )
    grouping = scheme.form_groups(
        network,
        payload["k"],
        # The label is the scheme name straight from the work-unit
        # payload — one stream per (fork_seed, scheme) by construction.
        # repro-lint: allow[stream-label-collision]
        seed=RngFactory(payload["fork_seed"]).stream(payload["scheme"]),
    )
    return average_group_interaction_cost(network, grouping)


def run_fig4(
    network_sizes: Optional[Sequence[int]] = None,
    num_landmarks: int = 25,
    seed: int = 13,
    repetitions: int = 3,
    paper_scale: bool = False,
) -> ExperimentResult:
    """Reproduce Figure 4's three GICost-vs-network-size series.

    Each point averages ``repetitions`` independent (topology, scheme)
    runs to smooth out K-means initialization noise.
    """
    if paper_scale:
        network_sizes = network_sizes or PAPER_SIZES
    sizes = tuple(network_sizes or DEFAULT_SIZES)
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")

    series = {name: [] for name in _SCHEMES}
    factory = RngFactory(seed)

    payloads = []
    for n in sizes:
        k = max(2, round(GROUP_FRACTION * n))
        for rep in range(repetitions):
            fork_seed = factory.fork(f"n{n}-rep{rep}").root_seed
            for name in _SCHEMES:
                payloads.append({
                    "n": n,
                    "k": k,
                    "num_landmarks": num_landmarks,
                    "scheme": name,
                    "fork_seed": fork_seed,
                })
    values = iter(map_tasks(_fig4_unit, payloads))

    for n in sizes:
        totals = {name: 0.0 for name in _SCHEMES}
        for _rep in range(repetitions):
            for name in _SCHEMES:
                totals[name] += next(values)
        for name in _SCHEMES:
            series[name].append(totals[name] / repetitions)

    sl = series["sl_ms"]
    notes = {
        "improvement_over_random_pct_min": min(
            improvement_percent(r, s) for s, r in zip(sl, series["random_ms"])
        ),
        "improvement_over_random_pct_max": max(
            improvement_percent(r, s) for s, r in zip(sl, series["random_ms"])
        ),
        "improvement_over_mindist_pct_min": min(
            improvement_percent(m, s) for s, m in zip(sl, series["mindist_ms"])
        ),
        "improvement_over_mindist_pct_max": max(
            improvement_percent(m, s) for s, m in zip(sl, series["mindist_ms"])
        ),
    }
    return ExperimentResult(
        experiment_id="fig4",
        x_label="num_caches",
        x_values=sizes,
        series=tuple(
            SeriesResult(name, tuple(values))
            for name, values in series.items()
        ),
        notes=notes,
    )
