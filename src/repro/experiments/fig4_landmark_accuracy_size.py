"""Figure 4: landmark-selection accuracy vs. network size.

Compares the three landmark selection techniques — SL greedy, random,
and min-dist — by average group interaction cost, on networks of
growing size, with K fixed at 10% of N and L = 25 landmarks.  The paper
reports SL beating random by 8–26% and min-dist by 21–46% across all
sizes.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.gicost import average_group_interaction_cost
from repro.analysis.latency import improvement_percent
from repro.analysis.report import ExperimentResult, SeriesResult
from repro.core.schemes import (
    MinDistLandmarksScheme,
    RandomLandmarksScheme,
    SLScheme,
)
from repro.experiments.base import landmark_config
from repro.topology.network import build_network
from repro.utils.rng import RngFactory

DEFAULT_SIZES = (60, 100, 140, 180)
PAPER_SIZES = (100, 200, 300, 400, 500)
#: K is set to 10% of the cache count, per the paper.
GROUP_FRACTION = 0.10


def run_fig4(
    network_sizes: Optional[Sequence[int]] = None,
    num_landmarks: int = 25,
    seed: int = 13,
    repetitions: int = 3,
    paper_scale: bool = False,
) -> ExperimentResult:
    """Reproduce Figure 4's three GICost-vs-network-size series.

    Each point averages ``repetitions`` independent (topology, scheme)
    runs to smooth out K-means initialization noise.
    """
    if paper_scale:
        network_sizes = network_sizes or PAPER_SIZES
    sizes = tuple(network_sizes or DEFAULT_SIZES)
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")

    schemes = {
        "sl_ms": SLScheme,
        "random_ms": RandomLandmarksScheme,
        "mindist_ms": MinDistLandmarksScheme,
    }
    series = {name: [] for name in schemes}
    factory = RngFactory(seed)

    for n in sizes:
        k = max(2, round(GROUP_FRACTION * n))
        lm_config = landmark_config(num_landmarks, num_caches=n)
        totals = {name: 0.0 for name in schemes}
        for rep in range(repetitions):
            rep_factory = factory.fork(f"n{n}-rep{rep}")
            network = build_network(
                num_caches=n, seed=rep_factory.stream("topology")
            )
            for name, scheme_cls in schemes.items():
                scheme = scheme_cls(landmark_config=lm_config)
                grouping = scheme.form_groups(
                    network, k, seed=rep_factory.stream(name)
                )
                totals[name] += average_group_interaction_cost(
                    network, grouping
                )
        for name in schemes:
            series[name].append(totals[name] / repetitions)

    sl = series["sl_ms"]
    notes = {
        "improvement_over_random_pct_min": min(
            improvement_percent(r, s) for s, r in zip(sl, series["random_ms"])
        ),
        "improvement_over_random_pct_max": max(
            improvement_percent(r, s) for s, r in zip(sl, series["random_ms"])
        ),
        "improvement_over_mindist_pct_min": min(
            improvement_percent(m, s) for s, m in zip(sl, series["mindist_ms"])
        ),
        "improvement_over_mindist_pct_max": max(
            improvement_percent(m, s) for s, m in zip(sl, series["mindist_ms"])
        ),
    }
    return ExperimentResult(
        experiment_id="fig4",
        x_label="num_caches",
        x_values=sizes,
        series=tuple(
            SeriesResult(name, tuple(values))
            for name, values in series.items()
        ),
        notes=notes,
    )
