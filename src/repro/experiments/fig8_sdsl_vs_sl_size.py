"""Figure 8: SDSL vs. SL average latency, varying network size.

Networks of growing size, groups formed by SL and SDSL (same 25 greedy
landmarks) at K = 10% and K = 20% of N, compared by simulated average
cache latency.  The paper reports SDSL winning at every size and both K
settings — over 27% better at N=500, K=20%.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.latency import improvement_percent
from repro.analysis.report import ExperimentResult, SeriesResult
from repro.config import SDSLConfig
from repro.core.schemes import SDSLScheme, SLScheme
from repro.experiments.base import (
    build_testbed,
    landmark_config,
    run_simulation,
)
from repro.runtime.scheduler import map_tasks

DEFAULT_SIZES = (60, 100, 140)
PAPER_SIZES = (100, 200, 300, 400, 500)
GROUP_FRACTIONS = (0.10, 0.20)


def _fig8_unit(payload: dict) -> float:
    """Average latency of one (size, repetition, K, scheme) work unit.

    The testbed is re-fetched from the content-keyed cache by its
    explicit seed, so each of the four scheme/K runs over one testbed is
    an independent pure task (one Dijkstra solve per (size, rep), not
    per unit).
    """
    testbed = build_testbed(payload["n"], payload["testbed_seed"])
    lm_config = landmark_config(
        payload["num_landmarks"], num_caches=payload["n"]
    )
    if payload["scheme"] == "sl":
        scheme = SLScheme(landmark_config=lm_config)
    else:
        scheme = SDSLScheme(
            sdsl_config=SDSLConfig(theta=payload["theta"]),
            landmark_config=lm_config,
        )
    grouping = scheme.form_groups(
        testbed.network, payload["k"], seed=payload["group_seed"]
    )
    return run_simulation(testbed, grouping).average_latency_ms()


def run_fig8(
    network_sizes: Optional[Sequence[int]] = None,
    num_landmarks: int = 25,
    theta: float = 2.0,
    seed: int = 29,
    repetitions: int = 2,
    paper_scale: bool = False,
) -> ExperimentResult:
    """Reproduce Figure 8's four latency series (2 schemes x 2 K settings).

    Each point averages ``repetitions`` independent (testbed, scheme)
    runs: single K-means runs are noisy enough to occasionally invert
    the SL/SDSL ordering on one draw.
    """
    if paper_scale:
        network_sizes = network_sizes or PAPER_SIZES
    sizes = tuple(network_sizes or DEFAULT_SIZES)
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")

    series = {
        "sl_k10_ms": [],
        "sdsl_k10_ms": [],
        "sl_k20_ms": [],
        "sdsl_k20_ms": [],
    }
    payloads = [
        {
            "n": n,
            "k": max(2, round(fraction * n)),
            "num_landmarks": num_landmarks,
            "theta": theta,
            "scheme": scheme,
            "testbed_seed": seed + 1000 * rep + n,
            "group_seed": seed + rep,
        }
        for n in sizes
        for rep in range(repetitions)
        for fraction in GROUP_FRACTIONS
        for scheme in ("sl", "sdsl")
    ]
    values = iter(map_tasks(_fig8_unit, payloads))

    for _n in sizes:
        totals = {name: 0.0 for name in series}
        for _rep in range(repetitions):
            for suffix in ("k10", "k20"):
                totals[f"sl_{suffix}_ms"] += next(values)
                totals[f"sdsl_{suffix}_ms"] += next(values)
        for name in series:
            series[name].append(totals[name] / repetitions)

    notes = {
        "max_improvement_k20_pct": max(
            improvement_percent(sl, sdsl)
            for sl, sdsl in zip(series["sl_k20_ms"], series["sdsl_k20_ms"])
        ),
        "theta": theta,
    }
    return ExperimentResult(
        experiment_id="fig8",
        x_label="num_caches",
        x_values=sizes,
        series=tuple(
            SeriesResult(name, tuple(values))
            for name, values in series.items()
        ),
        notes=notes,
    )
