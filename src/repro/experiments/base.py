"""Shared experiment plumbing.

Every figure experiment needs the same ingredients: a network of N
caches, an Olympics-like workload over those caches, scheme runs, and a
simulated latency per grouping.  This module centralises those with the
evaluation-wide default parameters so figures differ only in what they
sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import (
    DocumentConfig,
    LandmarkConfig,
    SimulationConfig,
    WorkloadConfig,
)
from repro.core.groups import GroupingResult
from repro.obs.profiling import phase_timer
from repro.runtime.cache import get_cache, testbed_key
from repro.simulator.runner import SimulationResult, simulate
from repro.topology.network import EdgeCacheNetwork, build_network
from repro.utils.rng import RngFactory
from repro.workload.ibm_synthetic import Workload, generate_workload

#: Landmark count used throughout the paper's evaluation (Section 5).
PAPER_LANDMARKS = 25
#: Potential-landmark multiplier M used in the worked example.
PAPER_MULTIPLIER = 2


@dataclass(frozen=True)
class Testbed:
    """A network plus a workload over its caches — one experiment point."""

    network: EdgeCacheNetwork
    workload: Workload
    seed: int

    @property
    def num_caches(self) -> int:
        return self.network.num_caches


def default_workload_config(
    requests_per_cache: int = 150,
    num_documents: int = 400,
) -> WorkloadConfig:
    """The evaluation's workload parameters (see DESIGN.md substitutions)."""
    return WorkloadConfig(
        documents=DocumentConfig(num_documents=num_documents),
        requests_per_cache=requests_per_cache,
        zipf_alpha=0.9,
        shared_interest=0.8,
    )


def landmark_config(
    num_landmarks: int = PAPER_LANDMARKS,
    multiplier: int = PAPER_MULTIPLIER,
    num_caches: Optional[int] = None,
) -> LandmarkConfig:
    """Landmark config, clamped so L-1 never exceeds the cache count."""
    if num_caches is not None:
        num_landmarks = min(num_landmarks, num_caches + 1)
    return LandmarkConfig(num_landmarks=num_landmarks, multiplier=multiplier)


def build_testbed(
    num_caches: int,
    seed: int,
    requests_per_cache: int = 150,
    num_documents: int = 400,
) -> Testbed:
    """Build (or fetch) a network and matching workload for one seed.

    Testbeds are pure functions of the arguments, so they are memoised
    through the process-wide :class:`repro.runtime.cache.TestbedCache`
    — repeated figure points (and process-pool workers) skip the
    all-pairs Dijkstra and workload synthesis on a hit.
    """
    key = testbed_key(num_caches, seed, requests_per_cache, num_documents)
    return get_cache().get_or_build(
        key,
        lambda: _build_testbed_fresh(
            num_caches, seed, requests_per_cache, num_documents
        ),
    )


def _build_testbed_fresh(
    num_caches: int,
    seed: int,
    requests_per_cache: int,
    num_documents: int,
) -> Testbed:
    factory = RngFactory(seed)
    with phase_timer("testbed/network"):
        network = build_network(
            num_caches=num_caches, seed=factory.stream("topology")
        )
    with phase_timer("testbed/workload"):
        workload = generate_workload(
            network.cache_nodes,
            default_workload_config(requests_per_cache, num_documents),
            seed=factory.stream("workload"),
        )
    return Testbed(network=network, workload=workload, seed=seed)


def run_simulation(
    testbed: Testbed,
    grouping: GroupingResult,
    config: Optional[SimulationConfig] = None,
) -> SimulationResult:
    """Simulate one grouping over the testbed's workload."""
    with phase_timer("simulate"):
        return simulate(
            testbed.network, grouping, testbed.workload, config=config
        )
