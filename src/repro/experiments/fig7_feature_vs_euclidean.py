"""Figure 7: feature vectors vs. GNP Euclidean-space clustering.

Both schemes share the same 25 greedily-chosen landmarks; SL clusters
raw RTT feature vectors, the Euclidean scheme first runs a GNP
least-squares embedding and clusters the coordinates.  The paper finds
near-parity — each wins at some K — concluding "the simple feature
vector representation scheme is sufficient".
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.gicost import average_group_interaction_cost
from repro.analysis.report import ExperimentResult, SeriesResult
from repro.core.schemes import EuclideanGNPScheme, SLScheme
from repro.config import GNPConfig
from repro.experiments.base import landmark_config
from repro.topology.network import build_network
from repro.utils.rng import RngFactory

DEFAULT_K_VALUES = (5, 10, 20, 40)
PAPER_K_VALUES = (10, 25, 50, 75, 100)


def run_fig7(
    num_caches: int = 120,
    k_values: Optional[Sequence[int]] = None,
    num_landmarks: int = 25,
    gnp_dimensions: int = 7,
    seed: int = 23,
    repetitions: int = 2,
    paper_scale: bool = False,
) -> ExperimentResult:
    """Reproduce Figure 7's GICost-vs-K comparison."""
    if paper_scale:
        num_caches = 500
        k_values = k_values or PAPER_K_VALUES
    k_values = tuple(k_values or DEFAULT_K_VALUES)
    lm_config = landmark_config(num_landmarks, num_caches=num_caches)
    gnp_config = GNPConfig(dimensions=gnp_dimensions)

    sl_series = []
    gnp_series = []
    factory = RngFactory(seed)

    for k in k_values:
        sl_total = 0.0
        gnp_total = 0.0
        for rep in range(repetitions):
            rep_factory = factory.fork(f"k{k}-rep{rep}")
            network = build_network(
                num_caches=num_caches, seed=rep_factory.stream("topology")
            )
            sl = SLScheme(landmark_config=lm_config)
            sl_grouping = sl.form_groups(
                network, k, seed=rep_factory.stream("sl")
            )
            sl_total += average_group_interaction_cost(network, sl_grouping)

            gnp = EuclideanGNPScheme(
                gnp_config=gnp_config, landmark_config=lm_config
            )
            gnp_grouping = gnp.form_groups(
                network, k, seed=rep_factory.stream("gnp")
            )
            gnp_total += average_group_interaction_cost(network, gnp_grouping)
        sl_series.append(sl_total / repetitions)
        gnp_series.append(gnp_total / repetitions)

    return ExperimentResult(
        experiment_id="fig7",
        x_label="num_groups",
        x_values=k_values,
        series=(
            SeriesResult("sl_feature_vectors_ms", tuple(sl_series)),
            SeriesResult("euclidean_gnp_ms", tuple(gnp_series)),
        ),
        notes={"num_caches": float(num_caches)},
    )
