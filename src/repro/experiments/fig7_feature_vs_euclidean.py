"""Figure 7: feature vectors vs. GNP Euclidean-space clustering.

Both schemes share the same 25 greedily-chosen landmarks; SL clusters
raw RTT feature vectors, the Euclidean scheme first runs a GNP
least-squares embedding and clusters the coordinates.  The paper finds
near-parity — each wins at some K — concluding "the simple feature
vector representation scheme is sufficient".
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.gicost import average_group_interaction_cost
from repro.analysis.report import ExperimentResult, SeriesResult
from repro.core.schemes import EuclideanGNPScheme, SLScheme
from repro.config import GNPConfig
from repro.experiments.base import landmark_config
from repro.runtime.cache import cached_network
from repro.runtime.scheduler import map_tasks
from repro.utils.rng import RngFactory

DEFAULT_K_VALUES = (5, 10, 20, 40)
PAPER_K_VALUES = (10, 25, 50, 75, 100)


def _fig7_unit(payload: dict) -> float:
    """GICost of one (K, repetition, scheme) work unit.

    The network is fixed per repetition (it does not depend on K), so
    the topology comes from the testbed cache; scheme seeds are derived
    per (K, scheme).
    """
    network = cached_network(payload["num_caches"], payload["rep_seed"])
    lm_config = landmark_config(
        payload["num_landmarks"], num_caches=payload["num_caches"]
    )
    if payload["scheme"] == "sl":
        scheme = SLScheme(landmark_config=lm_config)
    else:
        scheme = EuclideanGNPScheme(
            gnp_config=GNPConfig(dimensions=payload["gnp_dimensions"]),
            landmark_config=lm_config,
        )
    grouping = scheme.form_groups(
        network,
        payload["k"],
        seed=RngFactory(payload["rep_seed"]).stream(
            f"k{payload['k']}-{payload['scheme']}"
        ),
    )
    return average_group_interaction_cost(network, grouping)


def run_fig7(
    num_caches: int = 120,
    k_values: Optional[Sequence[int]] = None,
    num_landmarks: int = 25,
    gnp_dimensions: int = 7,
    seed: int = 23,
    repetitions: int = 2,
    paper_scale: bool = False,
) -> ExperimentResult:
    """Reproduce Figure 7's GICost-vs-K comparison."""
    if paper_scale:
        num_caches = 500
        k_values = k_values or PAPER_K_VALUES
    k_values = tuple(k_values or DEFAULT_K_VALUES)

    sl_series = []
    gnp_series = []
    factory = RngFactory(seed)
    rep_seeds = [
        factory.fork(f"rep{rep}").root_seed for rep in range(repetitions)
    ]

    payloads = [
        {
            "num_caches": num_caches,
            "k": k,
            "num_landmarks": num_landmarks,
            "gnp_dimensions": gnp_dimensions,
            "scheme": scheme,
            "rep_seed": rep_seeds[rep],
        }
        for k in k_values
        for rep in range(repetitions)
        for scheme in ("sl", "gnp")
    ]
    values = iter(map_tasks(_fig7_unit, payloads))

    for _k in k_values:
        sl_total = 0.0
        gnp_total = 0.0
        for _rep in range(repetitions):
            sl_total += next(values)
            gnp_total += next(values)
        sl_series.append(sl_total / repetitions)
        gnp_series.append(gnp_total / repetitions)

    return ExperimentResult(
        experiment_id="fig7",
        x_label="num_groups",
        x_values=k_values,
        series=(
            SeriesResult("sl_feature_vectors_ms", tuple(sl_series)),
            SeriesResult("euclidean_gnp_ms", tuple(gnp_series)),
        ),
        notes={"num_caches": float(num_caches)},
    )
