"""Figure R (extension): resilience of group formation under faults.

Not a figure from the paper — a robustness extension.  Two sweeps:

* **Probe-loss sweep** (the plotted series): SL, SDSL, and random
  landmarks form groups while every probe is lost with probability p;
  grouping quality (average group interaction cost), simulated hit
  rate, and P95 request latency are reported per p.  Quality and hit
  rate should degrade roughly monotonically as p grows — the pipeline
  survives, it just sees a noisier network.
* **Landmark-failure sweep** (reported in ``notes``): at zero probe
  loss, f of the selected landmarks crash immediately after selection
  and the coordinator's failover path replaces them.  SL with failover
  should stay ahead of the random-landmark baseline, showing the
  greedy replacement preserves the selection advantage.

Registered as ``figR`` with the usual ``--jobs``/cache support.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.analysis.gicost import average_group_interaction_cost
from repro.analysis.report import ExperimentResult, SeriesResult
from repro.core.schemes import RandomLandmarksScheme, SDSLScheme, SLScheme
from repro.experiments.base import (
    build_testbed,
    landmark_config,
    run_simulation,
)
from repro.faults.config import FaultConfig
from repro.runtime.scheduler import map_tasks
from repro.utils.rng import RngFactory

DEFAULT_LOSS_RATES = (0.0, 0.1, 0.25, 0.4)
PAPER_LOSS_RATES = (0.0, 0.05, 0.1, 0.2, 0.3, 0.4)
DEFAULT_FAIL_COUNTS = (0, 1, 2)
#: K is set to 10% of the cache count, matching the other figures.
GROUP_FRACTION = 0.10

_SCHEMES = {
    "sl": SLScheme,
    "sdsl": SDSLScheme,
    "random": RandomLandmarksScheme,
}
_METRICS = ("gicost_ms", "hit_rate", "p95_ms")


def _figr_unit(payload: dict) -> Dict[str, float]:
    """One (fault setting, repetition, scheme) work unit.

    Forms groups under the payload's fault config, then simulates the
    grouping over the repetition's testbed.  Passes ``faults=None``
    (not a zero-rate config) when all fault knobs are off, so fault-free
    units stay bit-identical to the pre-fault-injection pipeline.
    """
    testbed = build_testbed(
        payload["n"], payload["fork_seed"],
        requests_per_cache=payload["requests_per_cache"],
        num_documents=payload["num_documents"],
    )
    scheme = _SCHEMES[payload["scheme"]](
        landmark_config=landmark_config(
            payload["num_landmarks"], num_caches=payload["n"]
        )
    )
    faults: Optional[FaultConfig] = None
    if payload["loss"] > 0.0 or payload["fail_landmarks"] > 0:
        faults = FaultConfig(
            probe_loss_rate=payload["loss"],
            crashed_landmarks=payload["fail_landmarks"],
        )
    grouping = scheme.form_groups(
        testbed.network,
        payload["k"],
        # The label is the scheme name straight from the work-unit
        # payload — one stream per (fork_seed, scheme) by construction.
        # repro-lint: allow[stream-label-collision]
        seed=RngFactory(payload["fork_seed"]).stream(payload["scheme"]),
        faults=faults,
    )
    gicost = average_group_interaction_cost(testbed.network, grouping)
    result = run_simulation(testbed, grouping)
    rates = result.hit_rates()
    return {
        "gicost_ms": gicost,
        "hit_rate": rates["local"] + rates["group"],
        "p95_ms": result.metrics.latency_p95_ms(),
        "degraded": 1.0 if grouping.degraded else 0.0,
    }


def run_figr(
    loss_rates: Optional[Sequence[float]] = None,
    fail_landmark_counts: Optional[Sequence[int]] = None,
    num_caches: int = 60,
    num_landmarks: int = 8,
    seed: int = 29,
    repetitions: int = 2,
    requests_per_cache: int = 120,
    num_documents: int = 300,
    paper_scale: bool = False,
) -> ExperimentResult:
    """The fault sweep: quality/hit-rate/latency vs probe loss.

    Each point averages ``repetitions`` independent (topology, scheme)
    runs; the landmark-failure sub-sweep lands in ``notes``.
    """
    if paper_scale:
        loss_rates = loss_rates or PAPER_LOSS_RATES
        num_caches = max(num_caches, 100)
    rates = tuple(loss_rates or DEFAULT_LOSS_RATES)
    fail_counts = tuple(
        fail_landmark_counts
        if fail_landmark_counts is not None
        else DEFAULT_FAIL_COUNTS
    )
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    for rate in rates:
        FaultConfig(probe_loss_rate=rate).validate()
    k = max(2, round(GROUP_FRACTION * num_caches))
    factory = RngFactory(seed)

    def payload(loss, fails, scheme, fork_seed):
        return {
            "n": num_caches,
            "k": k,
            "num_landmarks": num_landmarks,
            "requests_per_cache": requests_per_cache,
            "num_documents": num_documents,
            "scheme": scheme,
            "loss": float(loss),
            "fail_landmarks": int(fails),
            "fork_seed": fork_seed,
        }

    payloads = []
    for rate in rates:
        for rep in range(repetitions):
            fork_seed = factory.fork(f"loss{rate}-rep{rep}").root_seed
            for name in _SCHEMES:
                payloads.append(payload(rate, 0, name, fork_seed))
    fail_schemes = ("sl", "random")
    for fails in fail_counts:
        for rep in range(repetitions):
            fork_seed = factory.fork(f"fail{fails}-rep{rep}").root_seed
            for name in fail_schemes:
                payloads.append(payload(0.0, fails, name, fork_seed))
    values = iter(map_tasks(_figr_unit, payloads))

    series = {
        f"{name}_{metric}": []
        for name in _SCHEMES
        for metric in _METRICS
    }
    degraded_runs = 0
    for _rate in rates:
        totals = {key: 0.0 for key in series}
        for _rep in range(repetitions):
            for name in _SCHEMES:
                unit = next(values)
                degraded_runs += int(unit["degraded"])
                for metric in _METRICS:
                    totals[f"{name}_{metric}"] += unit[metric]
        for key in series:
            series[key].append(totals[key] / repetitions)

    notes: Dict[str, float] = {}
    for fails in fail_counts:
        totals = {name: 0.0 for name in fail_schemes}
        for _rep in range(repetitions):
            for name in fail_schemes:
                unit = next(values)
                degraded_runs += int(unit["degraded"])
                totals[name] += unit["gicost_ms"]
        for name in fail_schemes:
            notes[f"{name}_gicost_fail{fails}"] = totals[name] / repetitions
        notes[f"sl_margin_fail{fails}"] = (
            notes[f"random_gicost_fail{fails}"]
            - notes[f"sl_gicost_fail{fails}"]
        )
    notes["degraded_runs"] = float(degraded_runs)

    return ExperimentResult(
        experiment_id="figR",
        x_label="probe_loss_rate",
        x_values=rates,
        series=tuple(
            SeriesResult(name, tuple(points))
            for name, points in series.items()
        ),
        notes=notes,
    )
