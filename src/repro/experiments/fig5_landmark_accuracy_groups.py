"""Figure 5: landmark-selection accuracy vs. number of groups.

Same three landmark selectors as Figure 4, on one fixed-size network,
sweeping the number of cache groups K.  The paper reports SL's greedy
selection giving the best clustering accuracy at every K, with GICost
falling as K grows (smaller groups are tighter).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.gicost import average_group_interaction_cost
from repro.analysis.report import ExperimentResult, SeriesResult
from repro.core.schemes import (
    MinDistLandmarksScheme,
    RandomLandmarksScheme,
    SLScheme,
)
from repro.experiments.base import landmark_config
from repro.runtime.cache import cached_network
from repro.runtime.scheduler import map_tasks
from repro.utils.rng import RngFactory

DEFAULT_K_VALUES = (5, 10, 15, 25, 40)
PAPER_K_VALUES = (10, 25, 50, 75, 100)

_SCHEMES = {
    "sl_ms": SLScheme,
    "random_ms": RandomLandmarksScheme,
    "mindist_ms": MinDistLandmarksScheme,
}


def _fig5_unit(payload: dict) -> float:
    """GICost of one (K, repetition, selector) work unit.

    The figure sweeps K over a *fixed* network per repetition (the
    network does not depend on K), so the topology is derived per
    repetition and fetched from the testbed cache; only the selector's
    seed stream varies with (K, selector).
    """
    network = cached_network(payload["num_caches"], payload["rep_seed"])
    scheme = _SCHEMES[payload["scheme"]](
        landmark_config=landmark_config(
            payload["num_landmarks"], num_caches=payload["num_caches"]
        )
    )
    grouping = scheme.form_groups(
        network,
        payload["k"],
        seed=RngFactory(payload["rep_seed"]).stream(
            f"k{payload['k']}-{payload['scheme']}"
        ),
    )
    return average_group_interaction_cost(network, grouping)


def run_fig5(
    num_caches: int = 150,
    k_values: Optional[Sequence[int]] = None,
    num_landmarks: int = 25,
    seed: int = 17,
    repetitions: int = 3,
    paper_scale: bool = False,
) -> ExperimentResult:
    """Reproduce Figure 5's GICost-vs-K series for the three selectors."""
    if paper_scale:
        num_caches = 500
        k_values = k_values or PAPER_K_VALUES
    k_values = tuple(k_values or DEFAULT_K_VALUES)
    if any(k < 1 or k > num_caches for k in k_values):
        raise ValueError(
            f"k values must lie in [1, {num_caches}]: {k_values}"
        )

    series = {name: [] for name in _SCHEMES}
    factory = RngFactory(seed)
    rep_seeds = [
        factory.fork(f"rep{rep}").root_seed for rep in range(repetitions)
    ]

    payloads = [
        {
            "num_caches": num_caches,
            "k": k,
            "num_landmarks": num_landmarks,
            "scheme": name,
            "rep_seed": rep_seeds[rep],
        }
        for k in k_values
        for rep in range(repetitions)
        for name in _SCHEMES
    ]
    values = iter(map_tasks(_fig5_unit, payloads))

    for _k in k_values:
        totals = {name: 0.0 for name in _SCHEMES}
        for _rep in range(repetitions):
            for name in _SCHEMES:
                totals[name] += next(values)
        for name in _SCHEMES:
            series[name].append(totals[name] / repetitions)

    return ExperimentResult(
        experiment_id="fig5",
        x_label="num_groups",
        x_values=k_values,
        series=tuple(
            SeriesResult(name, tuple(values))
            for name, values in series.items()
        ),
        notes={"num_caches": float(num_caches)},
    )
