"""Figure 5: landmark-selection accuracy vs. number of groups.

Same three landmark selectors as Figure 4, on one fixed-size network,
sweeping the number of cache groups K.  The paper reports SL's greedy
selection giving the best clustering accuracy at every K, with GICost
falling as K grows (smaller groups are tighter).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.gicost import average_group_interaction_cost
from repro.analysis.report import ExperimentResult, SeriesResult
from repro.core.schemes import (
    MinDistLandmarksScheme,
    RandomLandmarksScheme,
    SLScheme,
)
from repro.experiments.base import landmark_config
from repro.topology.network import build_network
from repro.utils.rng import RngFactory

DEFAULT_K_VALUES = (5, 10, 15, 25, 40)
PAPER_K_VALUES = (10, 25, 50, 75, 100)


def run_fig5(
    num_caches: int = 150,
    k_values: Optional[Sequence[int]] = None,
    num_landmarks: int = 25,
    seed: int = 17,
    repetitions: int = 3,
    paper_scale: bool = False,
) -> ExperimentResult:
    """Reproduce Figure 5's GICost-vs-K series for the three selectors."""
    if paper_scale:
        num_caches = 500
        k_values = k_values or PAPER_K_VALUES
    k_values = tuple(k_values or DEFAULT_K_VALUES)
    if any(k < 1 or k > num_caches for k in k_values):
        raise ValueError(
            f"k values must lie in [1, {num_caches}]: {k_values}"
        )

    schemes = {
        "sl_ms": SLScheme,
        "random_ms": RandomLandmarksScheme,
        "mindist_ms": MinDistLandmarksScheme,
    }
    series = {name: [] for name in schemes}
    factory = RngFactory(seed)
    lm_config = landmark_config(num_landmarks, num_caches=num_caches)

    for k in k_values:
        totals = {name: 0.0 for name in schemes}
        for rep in range(repetitions):
            rep_factory = factory.fork(f"k{k}-rep{rep}")
            network = build_network(
                num_caches=num_caches, seed=rep_factory.stream("topology")
            )
            for name, scheme_cls in schemes.items():
                scheme = scheme_cls(landmark_config=lm_config)
                grouping = scheme.form_groups(
                    network, k, seed=rep_factory.stream(name)
                )
                totals[name] += average_group_interaction_cost(
                    network, grouping
                )
        for name in schemes:
            series[name].append(totals[name] / repetitions)

    return ExperimentResult(
        experiment_id="fig5",
        x_label="num_groups",
        x_values=k_values,
        series=tuple(
            SeriesResult(name, tuple(values))
            for name, values in series.items()
        ),
        notes={"num_caches": float(num_caches)},
    )
