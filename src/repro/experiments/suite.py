"""Run the full figure suite and archive the results.

``run_suite`` executes every registered experiment, writes each result
as JSON and CSV into an output directory, and produces a markdown
summary (one table per figure) — the artifact a reproduction run leaves
behind.  Each archived figure also gets a ``<fig>.manifest.json`` run
manifest carrying the seed/scale arguments and the per-phase timings
(testbed build, scheme runs, simulation) collected while it ran.  The
CLI exposes it as ``repro experiment all``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Tuple, Union

from repro.analysis.export import export_experiment_result
from repro.analysis.report import ExperimentResult
from repro.errors import ReproError
from repro.experiments.registry import REGISTRY
from repro.obs.manifest import RunManifest, build_manifest, merge_sparse_stats
from repro.obs.profiling import PhaseRegistry, activate
from repro.persist import save_manifest, save_result
from repro.runtime.cache import (
    STAT_FIELDS,
    configure_cache,
    get_cache,
    stats_delta,
)
from repro.runtime.scheduler import (
    TaskScheduler,
    active_scheduler,
    set_perf_hook,
    set_task_journal,
    use_scheduler,
)

PathLike = Union[str, Path]

#: Figures whose runners accept a ``repetitions`` argument.
_SUPPORTS_REPETITIONS = frozenset(
    {"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "figR"}
)


@dataclass(frozen=True)
class SuiteRun:
    """Outcome of one full-suite run."""

    results: Dict[str, ExperimentResult]
    output_dir: Optional[Path]
    manifests: Dict[str, RunManifest] = field(default_factory=dict)

    def summary_markdown(self) -> str:
        """A markdown report with one section per figure."""
        lines = ["# Reproduction suite results", ""]
        for experiment_id in sorted(self.results):
            result = self.results[experiment_id]
            lines.append(f"## {experiment_id}")
            lines.append("")
            lines.append("```")
            lines.append(result.render())
            lines.append("```")
            lines.append("")
        return "\n".join(lines)


def _figure_kwargs(
    experiment_id: str,
    paper_scale: bool,
    repetitions: Optional[int],
    seed: Optional[int],
) -> Dict[str, Any]:
    kwargs: Dict[str, Any] = {}
    if paper_scale:
        kwargs["paper_scale"] = True
    if seed is not None:
        kwargs["seed"] = seed
    if repetitions is not None and experiment_id in _SUPPORTS_REPETITIONS:
        kwargs["repetitions"] = repetitions
    return kwargs


def run_figure(
    experiment_id: str,
    kwargs: Dict[str, Any],
    jobs: int = 1,
    worker_perf: bool = False,
    progress: bool = False,
    journal: Optional[Any] = None,
) -> Tuple[ExperimentResult, RunManifest]:
    """Run one registered figure under full manifest instrumentation.

    The caller owns scheduler/cache setup (``use_scheduler`` must
    already be active for ``jobs`` to matter here — ``jobs`` is only
    recorded).  Returns the figure's result plus a manifest carrying
    phase timings, testbed-cache counters, and — when ``worker_perf``
    or ``progress`` is set — the scheduler's ``worker_*`` summary.
    The telemetry module is imported only when actually enabled, so
    plain runs never load it.

    ``journal`` (a :class:`repro.runtime.journal.TaskJournal`) is
    installed around the run for checkpoint/resume; its hit/record
    counts and any supervised-mode retry/timeout charges land in
    ``run_stats`` only when non-zero, so undisturbed manifests are
    unchanged.
    """
    collector = None
    if worker_perf or progress:
        from repro.runtime.telemetry import PerfCollector, ProgressReporter

        reporter = (
            ProgressReporter(label=experiment_id) if progress else None
        )
        collector = PerfCollector(
            jobs=jobs, label=experiment_id, progress=reporter
        )
    cache = get_cache()
    registry = PhaseRegistry()
    cache_before = cache.stats()
    scheduler = active_scheduler()
    retry_before = scheduler.retry_stats() if scheduler is not None else {}
    previous_hook = set_perf_hook(collector) if collector is not None else None
    previous_journal = (
        set_task_journal(journal) if journal is not None else None
    )
    try:
        with activate(registry), registry.time(experiment_id):
            result = REGISTRY[experiment_id](**kwargs)
    finally:
        if collector is not None:
            set_perf_hook(previous_hook)
        if journal is not None:
            set_task_journal(previous_journal)
    cache_stats = stats_delta(cache_before, cache.stats())
    manifest = build_manifest(
        label=experiment_id, seed=kwargs.get("seed"), registry=registry
    )
    manifest.config = {k: v for k, v in kwargs.items()}
    manifest.config["jobs"] = jobs
    manifest.run_stats.update({
        f"testbed_cache_{name}": float(cache_stats.get(name, 0))
        for name in STAT_FIELDS
    })
    if collector is not None:
        manifest.run_stats.update(collector.summary())
    if scheduler is not None:
        retry_after = scheduler.retry_stats()
        merge_sparse_stats(manifest, {
            "worker_retries": float(
                retry_after.get("retries", 0)
                - retry_before.get("retries", 0)
            ),
            "worker_timeouts": float(
                retry_after.get("timeouts", 0)
                - retry_before.get("timeouts", 0)
            ),
        })
    if journal is not None:
        merge_sparse_stats(manifest, {
            "journal_hits": float(journal.hits),
            "journal_recorded": float(journal.recorded),
        })
    return result, manifest


def run_suite(
    figures: Optional[Sequence[str]] = None,
    output_dir: Optional[PathLike] = None,
    paper_scale: bool = False,
    repetitions: Optional[int] = None,
    seed: Optional[int] = None,
    jobs: int = 1,
    cache_dir: Optional[PathLike] = None,
    worker_perf: bool = False,
    progress: bool = False,
    registry_dir: Optional[PathLike] = None,
    task_timeout_s: Optional[float] = None,
    max_retries: int = 3,
    retry_backoff_s: float = 0.1,
) -> SuiteRun:
    """Run the selected figures (default: all) and archive results.

    ``output_dir`` (when given) receives ``<fig>.json``, ``<fig>.csv``
    and a combined ``summary.md``; it is created if missing.

    ``jobs`` fans each figure's independent work units across that many
    worker processes (see :mod:`repro.runtime.scheduler`); results are
    bit-identical to ``jobs=1``.  ``cache_dir`` enables the on-disk
    testbed cache (``results/cache/`` by convention), persisting built
    networks/workloads across runs and worker processes.

    ``worker_perf`` records per-task worker telemetry (wall, queue
    wait, cache hits, events/s) into each figure's manifest as a
    ``worker_*`` summary; ``progress`` adds a stderr heartbeat for long
    sweeps.  ``registry_dir`` appends every figure's manifest to the
    run registry at that root (see :mod:`repro.obs.registry`).  All
    three leave the archived results byte-identical — they only add
    observability around the same computation.

    ``task_timeout_s``/``max_retries``/``retry_backoff_s`` configure the
    scheduler's supervised mode (crash/deadline retries with capped
    exponential backoff — see :mod:`repro.runtime.scheduler`); retries
    re-run pure work units, so they too leave results byte-identical.
    """
    selected = list(figures) if figures is not None else sorted(REGISTRY)
    unknown = [f for f in selected if f not in REGISTRY]
    if unknown:
        raise ReproError(
            f"unknown figures: {', '.join(unknown)}; "
            f"known: {', '.join(sorted(REGISTRY))}"
        )

    out_path: Optional[Path] = None
    if output_dir is not None:
        out_path = Path(output_dir)
        out_path.mkdir(parents=True, exist_ok=True)

    if cache_dir is not None:
        configure_cache(disk_dir=cache_dir)

    run_registry = None
    if registry_dir is not None:
        from repro.obs.registry import RunRegistry

        run_registry = RunRegistry(registry_dir)

    results: Dict[str, ExperimentResult] = {}
    manifests: Dict[str, RunManifest] = {}
    scheduler = TaskScheduler(
        jobs,
        task_timeout_s=task_timeout_s,
        max_retries=max_retries,
        retry_backoff_s=retry_backoff_s,
    )
    with scheduler, use_scheduler(scheduler):
        for experiment_id in selected:
            kwargs = _figure_kwargs(
                experiment_id, paper_scale, repetitions, seed
            )
            result, manifest = run_figure(
                experiment_id, kwargs, jobs=jobs,
                worker_perf=worker_perf, progress=progress,
            )
            results[experiment_id] = result
            manifests[experiment_id] = manifest
            if run_registry is not None:
                run_registry.append(manifest, kind="experiment")
            if out_path is not None:
                save_result(result, out_path / f"{experiment_id}.json")
                export_experiment_result(
                    result, out_path / f"{experiment_id}.csv"
                )
                save_manifest(
                    manifest, out_path / f"{experiment_id}.manifest.json"
                )

    run = SuiteRun(results=results, output_dir=out_path, manifests=manifests)
    if out_path is not None:
        (out_path / "summary.md").write_text(
            run.summary_markdown(), encoding="utf-8"
        )
    return run
