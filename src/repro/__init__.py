"""repro — reproduction of "Efficient Formation of Edge Cache Groups for
Dynamic Content Delivery" (Ramaswamy, Liu & Zhang, ICDCS 2006).

The library has three layers:

* **substrates** — :mod:`repro.topology` (transit-stub topologies and
  RTT matrices), :mod:`repro.probing` (simulated RTT measurement),
  :mod:`repro.workload` (synthetic Olympics-like traces), and
  :mod:`repro.simulator` (the cooperative edge-cache-network discrete
  event simulator);
* **the contribution** — :mod:`repro.core` (the SL and SDSL cache-group
  formation schemes plus the paper's baselines), built on
  :mod:`repro.landmarks`, :mod:`repro.clustering`, and
  :mod:`repro.coords`;
* **evaluation** — :mod:`repro.analysis` (GICost and latency metrics)
  and :mod:`repro.experiments` (one runner per paper figure).

Quickstart::

    from repro import build_network, SLScheme, SDSLScheme

    network = build_network(num_caches=100, seed=7)
    groups = SDSLScheme().form_groups(network, k=10, seed=7)
    for group in groups.groups:
        print(group.group_id, group.members)
"""

from repro.config import (
    CacheConfig,
    DocumentConfig,
    ExperimentConfig,
    GNPConfig,
    KMeansConfig,
    LandmarkConfig,
    PlacementConfig,
    ProbeConfig,
    SDSLConfig,
    SimulationConfig,
    TransitStubConfig,
    WorkloadConfig,
)
from repro.core import (
    CacheGroup,
    EuclideanGNPScheme,
    GFCoordinator,
    GroupFormationScheme,
    GroupingResult,
    MembershipManager,
    MinDistLandmarksScheme,
    RandomLandmarksScheme,
    SDSLScheme,
    SLScheme,
    VivaldiScheme,
    scheme_by_name,
)
from repro.errors import ReproError
from repro.analysis import (
    average_group_interaction_cost,
    improvement_percent,
)
from repro.simulator import SimulationResult, simulate
from repro.topology import (
    DistanceMatrix,
    EdgeCacheNetwork,
    build_network,
    drift_network,
    network_from_matrix,
    network_stats,
)
from repro.workload import (
    FlashCrowdConfig,
    Workload,
    generate_flash_crowd_workload,
    generate_workload,
    summarize_trace,
)

__version__ = "1.0.0"

__all__ = [
    # configs
    "CacheConfig",
    "DocumentConfig",
    "ExperimentConfig",
    "GNPConfig",
    "KMeansConfig",
    "LandmarkConfig",
    "PlacementConfig",
    "ProbeConfig",
    "SDSLConfig",
    "SimulationConfig",
    "TransitStubConfig",
    "WorkloadConfig",
    # core schemes
    "CacheGroup",
    "GroupingResult",
    "GroupFormationScheme",
    "GFCoordinator",
    "SLScheme",
    "SDSLScheme",
    "RandomLandmarksScheme",
    "MinDistLandmarksScheme",
    "EuclideanGNPScheme",
    "VivaldiScheme",
    "MembershipManager",
    "scheme_by_name",
    # substrates and evaluation
    "ReproError",
    "DistanceMatrix",
    "EdgeCacheNetwork",
    "build_network",
    "network_from_matrix",
    "drift_network",
    "network_stats",
    "Workload",
    "generate_workload",
    "FlashCrowdConfig",
    "generate_flash_crowd_workload",
    "summarize_trace",
    "simulate",
    "SimulationResult",
    "average_group_interaction_cost",
    "improvement_percent",
    "__version__",
]
