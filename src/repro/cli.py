"""Command-line interface.

The subcommands cover the operational workflow end to end::

    repro network    --caches 100 --seed 7 --out net.npz
    repro form-groups --network net.npz --scheme SDSL --k 10 --out g.json
    repro simulate   --network net.npz --groups g.json --seed 7
    repro simulate   --network net.npz --scheme SDSL --trace t.jsonl \\
                     --sample-ms 1000 --manifest run.json
    repro report     run.json
    repro experiment fig4 --repetitions 2 --plot

``repro experiment`` runs any registered paper-figure experiment and
prints its table (optionally an ASCII sketch of the curves); results
can be archived as JSON/CSV for later comparison.  ``repro simulate``
optionally instruments the run (``--trace``, ``--sample-ms``,
``--manifest``); ``repro report`` pretty-prints an archived manifest
and its time-series summary.  ``repro lint`` runs the determinism
invariant linter (see :mod:`repro.lint` and docs/static-analysis.md)::

    repro lint [paths...] [--format json] [--baseline PATH]

``repro sanitize`` is the linter's runtime companion: it records a
draw ledger while an experiment runs and diffs two ledgers to locate
the first non-deterministic site (see :mod:`repro.sanitize`)::

    repro sanitize run --figure fig6 --out ledger.json [--jobs N]
    repro sanitize diff serial.json parallel.json

``repro runs`` queries the run registry — the append-only history that
``experiment``/``simulate``/``sanitize run`` write to when
``--registry DIR`` (or ``REPRO_REGISTRY``) is set (see
:mod:`repro.obs.registry`)::

    repro runs list --registry runs/
    repro runs compare -2 -1 --registry runs/

``repro bench`` measures and gates throughput against committed
baselines (see :mod:`repro.bench` and docs/performance.md)::

    repro bench run --out BENCH_engine.json
    repro bench gate --baseline benchmarks/baselines/BENCH_engine_main.json

``repro chaos`` proves the supervised runtime survives worker failure:
deterministic kills/delays at content-derived task indices must leave
the archived results byte-identical to a clean run (see
:mod:`repro.runtime.chaos` and docs/robustness.md)::

    repro chaos run --figure fig6 --kill-rate 0.2 --jobs 2 --out r.json
    repro chaos plan --tasks 9 --kill-rate 0.2

An interrupted registry-backed sweep resumes from its task journal,
re-running only unfinished work units::

    repro experiment fig6 --registry runs/ --resume auto
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__
from repro.analysis import average_group_interaction_cost
from repro.analysis.asciiplot import sketch
from repro.analysis.export import (
    export_cache_stats,
    export_experiment_result,
)
from repro.bench.cli import configure_parser as configure_bench_parser
from repro.config import LandmarkConfig, WorkloadConfig, DocumentConfig
from repro.core.schemes import scheme_by_name
from repro.errors import ReproError
from repro.experiments import REGISTRY
from repro.lint.cli import configure_parser as configure_lint_parser
from repro.obs.registry_cli import configure_parser as configure_runs_parser
from repro.runtime.chaos_cli import configure_parser as configure_chaos_parser
from repro.sanitize.cli import configure_parser as configure_sanitize_parser
from repro.persist import (
    load_grouping,
    load_network,
    save_grouping,
    save_network,
    save_result,
)
from repro.simulator import simulate
from repro.topology import build_network
from repro.utils.tables import Table
from repro.workload import generate_workload


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Edge cache group formation (SL/SDSL) — reproduction of "
            "Ramaswamy, Liu & Zhang, ICDCS 2006"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    net = sub.add_parser(
        "network", help="generate a transit-stub edge cache network"
    )
    net.add_argument("--caches", type=int, default=100)
    net.add_argument("--seed", type=int, default=7)
    net.add_argument("--out", help="write the network as .npz")

    form = sub.add_parser(
        "form-groups", help="partition a network into cooperative groups"
    )
    form.add_argument("--network", required=True, help=".npz network file")
    form.add_argument(
        "--scheme",
        default="SDSL",
        choices=["SL", "SDSL", "random-landmarks", "mindist-landmarks",
                 "euclidean-gnp", "vivaldi"],
    )
    form.add_argument("--k", type=int, required=True)
    form.add_argument("--landmarks", type=int, default=25)
    form.add_argument("--seed", type=int, default=7)
    form.add_argument("--out", help="write the group table as JSON")
    _add_formation_fault_args(form)

    sim = sub.add_parser(
        "simulate", help="simulate a grouped network under a workload"
    )
    sim.add_argument("--network", required=True)
    sim.add_argument(
        "--groups",
        help="JSON group table; omit to form groups in-process "
             "(see --scheme/--k)",
    )
    sim.add_argument(
        "--scheme", default="SDSL",
        choices=["SL", "SDSL", "random-landmarks", "mindist-landmarks",
                 "euclidean-gnp", "vivaldi"],
        help="scheme for in-process group formation (without --groups)",
    )
    sim.add_argument(
        "--k", type=int,
        help="group count for in-process formation "
             "(default: 10%% of caches)",
    )
    sim.add_argument("--landmarks", type=int, default=25)
    sim.add_argument("--seed", type=int, default=7)
    sim.add_argument("--requests-per-cache", type=int, default=150)
    sim.add_argument("--documents", type=int, default=400)
    sim.add_argument("--export-csv", help="write per-cache stats as CSV")
    sim.add_argument(
        "--per-group", action="store_true",
        help="print the per-group breakdown table",
    )
    sim.add_argument(
        "--trace-stats", action="store_true",
        help="print workload statistics (Zipf fit, cache similarity)",
    )
    sim.add_argument(
        "--trace", metavar="PATH",
        help="record a per-request JSONL trace to PATH",
    )
    sim.add_argument(
        "--trace-capacity", type=int, metavar="N",
        help="keep only the most recent N trace records (ring buffer)",
    )
    sim.add_argument(
        "--sample-ms", type=float, metavar="MS",
        help="sample windowed time-series metrics every MS simulated ms",
    )
    sim.add_argument(
        "--manifest", metavar="PATH",
        help="write a run manifest (config, phase timings, time series)",
    )
    _add_registry_arg(sim)
    _add_formation_fault_args(sim)
    sim.add_argument(
        "--crash", action="append", default=[], metavar="NODE:FAIL[:RECOVER]",
        help="crash cache NODE at FAIL ms (optionally recover at RECOVER "
             "ms); repeatable",
    )
    sim.add_argument(
        "--partition", action="append", default=[],
        metavar="START:END:N1,N2,...",
        help="cut nodes N1,N2,... off from the rest during [START, END) "
             "ms; repeatable",
    )
    sim.add_argument(
        "--partition-timeout-ms", type=float, default=500.0, metavar="MS",
        help="wait charged when a query crosses a partition (default 500)",
    )

    rep = sub.add_parser(
        "report", help="pretty-print an archived run manifest"
    )
    rep.add_argument("manifest", help="manifest JSON written by --manifest")
    rep.add_argument(
        "--format", choices=["text", "json"], default="text",
        dest="output_format",
        help="json emits the full machine-readable manifest payload",
    )

    exp = sub.add_parser(
        "experiment", help="run a registered paper-figure experiment"
    )
    exp.add_argument("figure", choices=[*sorted(REGISTRY), "all"])
    exp.add_argument("--paper-scale", action="store_true")
    exp.add_argument("--seed", type=int)
    exp.add_argument("--repetitions", type=int)
    exp.add_argument("--plot", action="store_true", help="ASCII chart")
    exp.add_argument("--out", help="write the result as JSON")
    exp.add_argument("--csv", help="write the result as CSV")
    exp.add_argument(
        "--out-dir",
        help="(with 'all') archive every figure as JSON/CSV + summary.md",
    )
    exp.add_argument(
        "--figures",
        help="(with 'all') comma-separated subset, e.g. fig4,fig8",
    )
    exp.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan independent work units across N worker processes "
             "(results are bit-identical to --jobs 1)",
    )
    exp.add_argument(
        "--cache-dir", metavar="DIR",
        help="persist built networks/workloads under DIR "
             "(e.g. results/cache) and reuse them across runs",
    )
    exp.add_argument(
        "--worker-perf", action="store_true",
        help="record per-task worker telemetry (wall, queue wait, cache "
             "hits, events/s) into each figure's manifest",
    )
    exp.add_argument(
        "--progress", action="store_true",
        help="print a throttled stderr heartbeat (tasks done/total, ETA, "
             "aggregate events/s) while a figure's units run",
    )
    exp.add_argument(
        "--task-timeout", type=float, metavar="S",
        help="per-attempt deadline in seconds; an attempt running "
             "longer is presumed wedged and re-dispatched (with "
             "--jobs > 1)",
    )
    exp.add_argument(
        "--max-retries", type=int, default=3, metavar="N",
        help="extra attempts a crashed/timed-out work unit may consume "
             "before the run fails (default 3)",
    )
    exp.add_argument(
        "--retry-backoff", type=float, default=0.1, metavar="S",
        help="base pause before re-dispatching after a worker failure, "
             "doubling per consecutive failure up to 5s (default 0.1)",
    )
    exp.add_argument(
        "--resume", metavar="SWEEP_ID",
        help="resume an interrupted sweep from its task journal in the "
             "registry: completed work units are skipped and the "
             "archive matches an uninterrupted run byte for byte "
             "(needs --registry; pass the sweep id printed by the "
             "original run, or 'auto')",
    )
    _add_registry_arg(exp)

    lint = sub.add_parser(
        "lint",
        help="check the determinism / simulated-time / fork-safety "
             "invariants (repro.lint)",
    )
    configure_lint_parser(lint)

    san = sub.add_parser(
        "sanitize",
        help="capture or diff runtime draw ledgers (repro.sanitize)",
    )
    configure_sanitize_parser(san)

    chaos = sub.add_parser(
        "chaos",
        help="deterministic worker kills/delays against the supervised "
             "runtime (repro.runtime.chaos)",
    )
    configure_chaos_parser(chaos)

    runs = sub.add_parser(
        "runs",
        help="query the run registry: list/show/compare/gc archived runs "
             "(repro.obs.registry)",
    )
    configure_runs_parser(runs)

    bench = sub.add_parser(
        "bench",
        help="measure and gate throughput against committed baselines "
             "(repro.bench)",
    )
    configure_bench_parser(bench)

    cmp_parser = sub.add_parser(
        "compare", help="diff two archived experiment results (JSON)"
    )
    cmp_parser.add_argument("baseline", help="baseline result JSON")
    cmp_parser.add_argument("candidate", help="candidate result JSON")
    cmp_parser.add_argument(
        "--tolerance", type=float, default=0.15,
        help="relative increase treated as a regression (default 0.15)",
    )

    return parser


def _add_registry_arg(parser: argparse.ArgumentParser) -> None:
    """The --registry flag shared by simulate/experiment (and sanitize)."""
    parser.add_argument(
        "--registry", metavar="DIR",
        help="append this run's manifest to the run registry at DIR "
             "(default: $REPRO_REGISTRY; see 'repro runs')",
    )


def _resolve_registry(args: argparse.Namespace):
    """The RunRegistry requested by --registry/$REPRO_REGISTRY, or None."""
    from repro.obs.registry import resolve_registry

    return resolve_registry(getattr(args, "registry", None))


def _add_formation_fault_args(parser: argparse.ArgumentParser) -> None:
    """Fault-injection flags shared by form-groups and simulate."""
    parser.add_argument(
        "--probe-loss", type=float, default=0.0, metavar="P",
        help="per-probe loss probability during group formation "
             "(0 disables fault injection)",
    )
    parser.add_argument(
        "--fail-landmarks", type=int, default=0, metavar="N",
        help="crash N cache landmarks right after selection and exercise "
             "the coordinator's failover path",
    )


def _formation_faults(args: argparse.Namespace):
    """The FaultConfig requested by the CLI flags, or None when all-zero."""
    if args.probe_loss == 0.0 and args.fail_landmarks == 0:
        return None
    from repro.faults import FaultConfig

    config = FaultConfig(
        probe_loss_rate=args.probe_loss,
        crashed_landmarks=args.fail_landmarks,
    )
    config.validate()
    return config


def _parse_crash(spec: str):
    """``NODE:FAIL_MS[:RECOVER_MS]`` -> (node, fail_ms, recover_ms|None)."""
    parts = spec.split(":")
    if len(parts) not in (2, 3):
        raise ReproError(
            f"--crash expects NODE:FAIL_MS[:RECOVER_MS], got {spec!r}"
        )
    try:
        node = int(parts[0])
        fail_ms = float(parts[1])
        recover_ms = float(parts[2]) if len(parts) == 3 else None
    except ValueError:
        raise ReproError(
            f"--crash expects numeric NODE:FAIL_MS[:RECOVER_MS], got "
            f"{spec!r}"
        ) from None
    return node, fail_ms, recover_ms


def _parse_partition(spec: str):
    """``START:END:N1,N2,...`` -> PartitionSpec (validated later)."""
    from repro.faults import PartitionSpec

    parts = spec.split(":")
    if len(parts) != 3:
        raise ReproError(
            f"--partition expects START_MS:END_MS:N1,N2,..., got {spec!r}"
        )
    try:
        start_ms = float(parts[0])
        end_ms = float(parts[1])
        nodes = tuple(int(n) for n in parts[2].split(",") if n.strip())
    except ValueError:
        raise ReproError(
            f"--partition expects numeric START_MS:END_MS:N1,N2,..., got "
            f"{spec!r}"
        ) from None
    return PartitionSpec(start_ms=start_ms, end_ms=end_ms, nodes=nodes)


def _fault_schedule(args: argparse.Namespace):
    """The FaultSchedule requested by --crash/--partition, or None."""
    if not args.crash and not args.partition:
        return None
    from repro.faults import FaultSchedule

    crashes, recoveries = [], []
    for spec in args.crash:
        node, fail_ms, recover_ms = _parse_crash(spec)
        crashes.append((fail_ms, node))
        if recover_ms is not None:
            recoveries.append((recover_ms, node))
    schedule = FaultSchedule(
        crashes=tuple(crashes),
        recoveries=tuple(recoveries),
        partitions=tuple(_parse_partition(s) for s in args.partition),
        partition_timeout_ms=args.partition_timeout_ms,
    )
    schedule.validate()
    return schedule


def _cmd_network(args: argparse.Namespace) -> int:
    from repro.topology.stats import network_stats

    network = build_network(num_caches=args.caches, seed=args.seed)
    print(f"generated: {network_stats(network)}")
    if args.out:
        save_network(network, args.out)
        print(f"wrote {args.out}")
    return 0


def _cmd_form_groups(args: argparse.Namespace) -> int:
    network = load_network(args.network)
    if args.scheme == "vivaldi":
        # The decentralised scheme has no landmark step to configure.
        scheme = scheme_by_name(args.scheme)
    else:
        landmarks = min(args.landmarks, network.num_caches + 1)
        scheme = scheme_by_name(
            args.scheme,
            landmark_config=LandmarkConfig(num_landmarks=landmarks),
        )
    grouping = scheme.form_groups(
        network, args.k, seed=args.seed, faults=_formation_faults(args)
    )
    gicost = average_group_interaction_cost(network, grouping)
    print(
        f"{grouping.scheme}: {grouping.num_groups} groups, sizes "
        f"{sorted(grouping.sizes())}, gicost {gicost:.2f} ms"
    )
    if grouping.degraded:
        print(f"degraded formation: {grouping.fault_report}")
    if args.out:
        save_grouping(grouping, args.out)
        print(f"wrote {args.out}")
    return 0


def _build_observer(args: argparse.Namespace):
    """Assemble the Observer requested by the CLI flags (or None)."""
    from repro.obs import MetricsSampler, Observer, TraceCollector

    trace = None
    if args.trace or args.trace_capacity is not None:
        trace = TraceCollector(capacity=args.trace_capacity)
    sampler = None
    if args.sample_ms is not None:
        sampler = MetricsSampler(interval_ms=args.sample_ms)
    if trace is None and sampler is None and args.manifest:
        # A manifest alone still wants throughput numbers; an empty
        # observer keeps the engine's bookkeeping on.
        return Observer()
    if trace is None and sampler is None:
        return None
    return Observer(trace=trace, sampler=sampler)


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.obs import PhaseRegistry, activate, build_manifest, phase_timer

    formation_faults = _formation_faults(args)
    schedule = _fault_schedule(args)
    registry = PhaseRegistry()
    with activate(registry):
        network = load_network(args.network)
        if args.groups:
            if formation_faults is not None:
                raise ReproError(
                    "--probe-loss/--fail-landmarks affect group formation; "
                    "they cannot be combined with a pre-formed --groups "
                    "table (re-run form-groups with these flags instead)"
                )
            grouping = load_grouping(args.groups)
        else:
            k = args.k or max(1, network.num_caches // 10)
            landmarks = min(args.landmarks, network.num_caches + 1)
            if args.scheme == "vivaldi":
                scheme = scheme_by_name(args.scheme)
            else:
                scheme = scheme_by_name(
                    args.scheme,
                    landmark_config=LandmarkConfig(num_landmarks=landmarks),
                )
            with phase_timer("form_groups"):
                grouping = scheme.form_groups(
                    network, k, seed=args.seed, faults=formation_faults
                )
            print(
                f"formed {grouping.num_groups} {grouping.scheme} groups "
                f"(k={k})"
            )
            if grouping.degraded:
                print(f"degraded formation: {grouping.fault_report}")
        with phase_timer("workload"):
            workload = generate_workload(
                network.cache_nodes,
                WorkloadConfig(
                    documents=DocumentConfig(num_documents=args.documents),
                    requests_per_cache=args.requests_per_cache,
                ),
                seed=args.seed,
            )
        if args.trace_stats:
            from repro.workload.stats import summarize_trace

            print(f"workload: {summarize_trace(workload.requests)}")
        observer = _build_observer(args)
        result = simulate(
            network, grouping, workload, observer=observer, faults=schedule
        )
    rates = result.hit_rates()
    table = Table(["metric", "value"])
    table.add_row(["requests", result.metrics.total_requests()])
    table.add_row(["avg latency (ms)", result.average_latency_ms()])
    table.add_row(["p95 latency (ms)", result.metrics.latency_p95_ms()])
    table.add_row(["local hit share", rates["local"]])
    table.add_row(["group hit share", rates["group"]])
    table.add_row(["origin share", rates["origin"]])
    table.add_row(["group hit rate (of misses)", result.group_hit_rate()])
    table.add_row(
        ["invalidation messages", result.metrics.invalidation_messages]
    )
    print(table.render())
    if args.per_group:
        from repro.analysis import group_report_table

        print()
        print(group_report_table(result).render())
    if args.export_csv:
        export_cache_stats(result.metrics, args.export_csv)
        print(f"wrote {args.export_csv}")
    if observer is not None and observer.trace is not None and args.trace:
        count = observer.trace.write_jsonl(args.trace)
        print(f"wrote {count} trace records to {args.trace}")
    run_registry = _resolve_registry(args)
    if args.manifest or run_registry is not None:
        from repro.persist import save_manifest

        totals = {
            "requests": float(result.metrics.total_requests()),
            "avg_latency_ms": result.average_latency_ms(),
            "p95_latency_ms": result.metrics.latency_p95_ms(),
            "hit_rate_local": rates["local"],
            "hit_rate_group": rates["group"],
            "hit_rate_origin": rates["origin"],
        }
        manifest = build_manifest(
            label=f"simulate:{grouping.scheme}",
            seed=args.seed,
            registry=registry,
            observer=observer,
            totals=totals,
            trace_path=args.trace,
        )
        if grouping.phase_timings:
            manifest.phase_timings_s.update({
                f"gf/{name}": seconds
                for name, seconds in grouping.phase_timings.items()
            })
        manifest.config = {
            "network": args.network,
            "scheme": grouping.scheme,
            "num_groups": grouping.num_groups,
            "requests_per_cache": args.requests_per_cache,
            "documents": args.documents,
            "sample_ms": args.sample_ms,
            "trace_capacity": args.trace_capacity,
        }
        # Fault counters land in the manifest only when fault options
        # were active, keeping fault-free manifests byte-identical.
        if formation_faults is not None:
            manifest.config["probe_loss"] = args.probe_loss
            manifest.config["fail_landmarks"] = args.fail_landmarks
            manifest.run_stats["degraded"] = 1.0 if grouping.degraded else 0.0
            for key, value in (grouping.fault_report or {}).items():
                manifest.run_stats[key] = float(value)
        if schedule is not None:
            metrics = result.metrics
            manifest.run_stats["partition_timeouts"] = float(sum(
                metrics.cache_stats(node).partition_timeouts
                for node in metrics.cache_nodes()
            ))
            manifest.run_stats["scheduled_crashes"] = float(
                len(schedule.crashes)
            )
            manifest.run_stats["scheduled_partitions"] = float(
                len(schedule.partitions)
            )
        if args.manifest:
            save_manifest(manifest, args.manifest)
            print(f"wrote manifest to {args.manifest}")
        if run_registry is not None:
            appended = run_registry.append(manifest, kind="simulate")
            print(f"registered run {appended.record.run_id}")
    return 0


def render_manifest_text(manifest) -> str:
    """Human-readable report for a run manifest.

    Shared by ``repro report`` and ``repro runs show``.  Plain run
    stats, testbed-cache counters, and worker telemetry each get their
    own section so parallel-run manifests stay scannable.
    """
    sections: List[str] = []
    info = Table(["field", "value"])
    info.add_row(["label", manifest.label])
    info.add_row(["version", manifest.version])
    if manifest.seed is not None:
        info.add_row(["seed", manifest.seed])
    for key in sorted(manifest.config):
        info.add_row([f"config.{key}", str(manifest.config[key])])
    for key in sorted(manifest.totals):
        info.add_row([key, manifest.totals[key]])
    plain = {
        key: value for key, value in manifest.run_stats.items()
        if not key.startswith(("testbed_cache_", "worker_"))
    }
    for key in sorted(plain):
        info.add_row([key, plain[key]])
    for key in sorted(manifest.trace_info):
        info.add_row([f"trace.{key}", str(manifest.trace_info[key])])
    sections.append(info.render())

    for prefix, title in (
        ("testbed_cache_", "testbed cache"),
        ("worker_", "workers"),
    ):
        group = {
            key: value for key, value in manifest.run_stats.items()
            if key.startswith(prefix)
        }
        if group:
            table = Table([title, "value"], float_format="{:.4f}")
            for key in sorted(group):
                table.add_row([key[len(prefix):], group[key]])
            sections.append(table.render())

    if manifest.phase_timings_s:
        phases = Table(["phase", "seconds"], float_format="{:.4f}")
        for name in sorted(manifest.phase_timings_s):
            phases.add_row([name, manifest.phase_timings_s[name]])
        sections.append(phases.render())

    if manifest.timeseries is not None and len(manifest.timeseries) > 0:
        series = manifest.timeseries
        ts = Table(["series", "first", "mean", "last", "max"])
        for name in ("hit_rate", "request_rate_rps", "origin_rate_rps",
                     "mean_latency_ms", "p95_latency_ms",
                     "origin_utilisation", "cache_occupancy"):
            column = getattr(series, name)
            ts.add_row([
                name, column[0], float(column.mean()), column[-1],
                float(column.max()),
            ])
        sections.append(
            f"time series: {len(series)} samples, "
            f"{series.time_ms[0]:.0f}..{series.time_ms[-1]:.0f} ms\n"
            + ts.render()
        )
    return "\n\n".join(sections)


def render_manifest_json(manifest) -> str:
    """Machine-readable report: the exact archived manifest payload."""
    import json

    from repro.persist.results import manifest_payload

    def _default(value):
        if hasattr(value, "tolist"):
            return value.tolist()
        return str(value)

    return json.dumps(
        manifest_payload(manifest), indent=2, sort_keys=True,
        default=_default,
    ) + "\n"


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.persist import load_manifest

    manifest = load_manifest(args.manifest)
    if args.output_format == "json":
        sys.stdout.write(render_manifest_json(manifest))
    else:
        print(render_manifest_text(manifest))
    return 0


def _experiment_journal(args: argparse.Namespace, run_registry, kwargs):
    """The sweep's TaskJournal (or None) and its sweep id.

    With a registry configured, every single-figure sweep journals its
    completed work units under ``journals/<sweep_id>.jsonl``.  Plain
    runs journal in record-only mode (lookups never served, so changed
    code can never silently reuse stale results); ``--resume`` switches
    lookups on after validating the id against this sweep's content.
    """
    if run_registry is None:
        return None, None
    from repro.runtime.journal import TaskJournal, sweep_id_for

    sweep_id = sweep_id_for(args.figure, kwargs)
    resume = False
    if args.resume:
        if args.resume != "auto" and (
            len(args.resume) < 4 or not sweep_id.startswith(args.resume)
        ):
            raise ReproError(
                f"--resume {args.resume!r} does not match this sweep: "
                f"the figure/seed/repetitions given here derive sweep id "
                f"{sweep_id}; re-run with the exact flags of the "
                f"interrupted run (or pass 'auto')"
            )
        resume = True
    journal = TaskJournal(
        run_registry.journal_path(sweep_id), resume=resume
    )
    return journal, sweep_id


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.runtime import TaskScheduler, configure_cache, use_scheduler

    if args.figure == "all":
        from repro.experiments import run_suite

        if args.resume:
            raise ReproError(
                "--resume works on single-figure sweeps; run the "
                "interrupted figure directly (each figure journals "
                "separately)"
            )
        figures = None
        if args.figures:
            figures = [f.strip() for f in args.figures.split(",") if f.strip()]
        run = run_suite(
            figures=figures,
            output_dir=args.out_dir,
            paper_scale=args.paper_scale,
            repetitions=args.repetitions,
            seed=args.seed,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            worker_perf=args.worker_perf,
            progress=args.progress,
            registry_dir=args.registry,
            task_timeout_s=args.task_timeout,
            max_retries=args.max_retries,
            retry_backoff_s=args.retry_backoff,
        )
        for experiment_id in sorted(run.results):
            print(run.results[experiment_id].render())
            print()
        if run.output_dir is not None:
            print(f"archived to {run.output_dir}")
        return 0

    from repro.experiments.suite import run_figure

    kwargs = {}
    if args.paper_scale:
        kwargs["paper_scale"] = True
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if args.repetitions is not None:
        kwargs["repetitions"] = args.repetitions
    if args.cache_dir:
        configure_cache(disk_dir=args.cache_dir)
    run_registry = _resolve_registry(args)
    if args.resume and run_registry is None:
        raise ReproError(
            "--resume requires --registry DIR (or $REPRO_REGISTRY): "
            "the task journal lives under the registry root"
        )
    journal, sweep_id = _experiment_journal(args, run_registry, kwargs)
    scheduler = TaskScheduler(
        args.jobs,
        task_timeout_s=args.task_timeout,
        max_retries=args.max_retries,
        retry_backoff_s=args.retry_backoff,
    )
    with scheduler, use_scheduler(scheduler):
        try:
            result, manifest = run_figure(
                args.figure, kwargs, jobs=args.jobs,
                worker_perf=args.worker_perf, progress=args.progress,
                journal=journal,
            )
        except TypeError:
            # e.g. fig3 takes no --repetitions; re-run with basics only.
            # The reduced kwargs are a different sweep, so re-derive the
            # journal before retrying.
            kwargs.pop("repetitions", None)
            journal, sweep_id = _experiment_journal(
                args, run_registry, kwargs
            )
            result, manifest = run_figure(
                args.figure, kwargs, jobs=args.jobs,
                worker_perf=args.worker_perf, progress=args.progress,
                journal=journal,
            )
    if journal is not None:
        resumed = (
            f", {journal.hits} unit(s) resumed" if journal.resume else ""
        )
        print(
            f"task journal {sweep_id}: {journal.completed} unit(s) on "
            f"record{resumed} (resume with --resume {sweep_id})"
        )
    if run_registry is not None:
        appended = run_registry.append(manifest, kind="experiment")
        print(f"registered run {appended.record.run_id}")
    print(result.render())
    if args.plot:
        print()
        print(sketch(result))
    if args.out:
        save_result(result, args.out)
        print(f"wrote {args.out}")
    if args.csv:
        export_experiment_result(result, args.csv)
        print(f"wrote {args.csv}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import run_lint

    return run_lint(args)


def _cmd_sanitize(args: argparse.Namespace) -> int:
    from repro.sanitize.cli import run_sanitize

    return run_sanitize(args)


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.runtime.chaos_cli import run_chaos

    return run_chaos(args)


def _cmd_runs(args: argparse.Namespace) -> int:
    from repro.obs.registry_cli import run_runs

    return run_runs(args)


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.cli import run_bench_cli

    return run_bench_cli(args)


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis import compare_results
    from repro.persist import load_result

    report = compare_results(
        load_result(args.baseline), load_result(args.candidate)
    )
    print(report.render())
    return 2 if report.regressions(args.tolerance) else 0


_COMMANDS = {
    "network": _cmd_network,
    "form-groups": _cmd_form_groups,
    "simulate": _cmd_simulate,
    "report": _cmd_report,
    "experiment": _cmd_experiment,
    "lint": _cmd_lint,
    "sanitize": _cmd_sanitize,
    "chaos": _cmd_chaos,
    "runs": _cmd_runs,
    "bench": _cmd_bench,
    "compare": _cmd_compare,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
