"""Command-line interface.

Four subcommands cover the operational workflow end to end::

    repro network    --caches 100 --seed 7 --out net.npz
    repro form-groups --network net.npz --scheme SDSL --k 10 --out g.json
    repro simulate   --network net.npz --groups g.json --seed 7
    repro experiment fig4 --repetitions 2 --plot

``repro experiment`` runs any registered paper-figure experiment and
prints its table (optionally an ASCII sketch of the curves); results
can be archived as JSON/CSV for later comparison.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__
from repro.analysis import average_group_interaction_cost
from repro.analysis.asciiplot import sketch
from repro.analysis.export import (
    export_cache_stats,
    export_experiment_result,
)
from repro.config import LandmarkConfig, WorkloadConfig, DocumentConfig
from repro.core.schemes import scheme_by_name
from repro.errors import ReproError
from repro.experiments import REGISTRY, run_experiment
from repro.persist import (
    load_grouping,
    load_network,
    save_grouping,
    save_network,
    save_result,
)
from repro.simulator import simulate
from repro.topology import build_network
from repro.utils.tables import Table
from repro.workload import generate_workload


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Edge cache group formation (SL/SDSL) — reproduction of "
            "Ramaswamy, Liu & Zhang, ICDCS 2006"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    net = sub.add_parser(
        "network", help="generate a transit-stub edge cache network"
    )
    net.add_argument("--caches", type=int, default=100)
    net.add_argument("--seed", type=int, default=7)
    net.add_argument("--out", help="write the network as .npz")

    form = sub.add_parser(
        "form-groups", help="partition a network into cooperative groups"
    )
    form.add_argument("--network", required=True, help=".npz network file")
    form.add_argument(
        "--scheme",
        default="SDSL",
        choices=["SL", "SDSL", "random-landmarks", "mindist-landmarks",
                 "euclidean-gnp", "vivaldi"],
    )
    form.add_argument("--k", type=int, required=True)
    form.add_argument("--landmarks", type=int, default=25)
    form.add_argument("--seed", type=int, default=7)
    form.add_argument("--out", help="write the group table as JSON")

    sim = sub.add_parser(
        "simulate", help="simulate a grouped network under a workload"
    )
    sim.add_argument("--network", required=True)
    sim.add_argument("--groups", required=True, help="JSON group table")
    sim.add_argument("--seed", type=int, default=7)
    sim.add_argument("--requests-per-cache", type=int, default=150)
    sim.add_argument("--documents", type=int, default=400)
    sim.add_argument("--export-csv", help="write per-cache stats as CSV")
    sim.add_argument(
        "--per-group", action="store_true",
        help="print the per-group breakdown table",
    )
    sim.add_argument(
        "--trace-stats", action="store_true",
        help="print workload statistics (Zipf fit, cache similarity)",
    )

    exp = sub.add_parser(
        "experiment", help="run a registered paper-figure experiment"
    )
    exp.add_argument("figure", choices=[*sorted(REGISTRY), "all"])
    exp.add_argument("--paper-scale", action="store_true")
    exp.add_argument("--seed", type=int)
    exp.add_argument("--repetitions", type=int)
    exp.add_argument("--plot", action="store_true", help="ASCII chart")
    exp.add_argument("--out", help="write the result as JSON")
    exp.add_argument("--csv", help="write the result as CSV")
    exp.add_argument(
        "--out-dir",
        help="(with 'all') archive every figure as JSON/CSV + summary.md",
    )
    exp.add_argument(
        "--figures",
        help="(with 'all') comma-separated subset, e.g. fig4,fig8",
    )

    cmp_parser = sub.add_parser(
        "compare", help="diff two archived experiment results (JSON)"
    )
    cmp_parser.add_argument("baseline", help="baseline result JSON")
    cmp_parser.add_argument("candidate", help="candidate result JSON")
    cmp_parser.add_argument(
        "--tolerance", type=float, default=0.15,
        help="relative increase treated as a regression (default 0.15)",
    )

    return parser


def _cmd_network(args: argparse.Namespace) -> int:
    from repro.topology.stats import network_stats

    network = build_network(num_caches=args.caches, seed=args.seed)
    print(f"generated: {network_stats(network)}")
    if args.out:
        save_network(network, args.out)
        print(f"wrote {args.out}")
    return 0


def _cmd_form_groups(args: argparse.Namespace) -> int:
    network = load_network(args.network)
    if args.scheme == "vivaldi":
        # The decentralised scheme has no landmark step to configure.
        scheme = scheme_by_name(args.scheme)
    else:
        landmarks = min(args.landmarks, network.num_caches + 1)
        scheme = scheme_by_name(
            args.scheme,
            landmark_config=LandmarkConfig(num_landmarks=landmarks),
        )
    grouping = scheme.form_groups(network, args.k, seed=args.seed)
    gicost = average_group_interaction_cost(network, grouping)
    print(
        f"{grouping.scheme}: {grouping.num_groups} groups, sizes "
        f"{sorted(grouping.sizes())}, gicost {gicost:.2f} ms"
    )
    if args.out:
        save_grouping(grouping, args.out)
        print(f"wrote {args.out}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    network = load_network(args.network)
    grouping = load_grouping(args.groups)
    workload = generate_workload(
        network.cache_nodes,
        WorkloadConfig(
            documents=DocumentConfig(num_documents=args.documents),
            requests_per_cache=args.requests_per_cache,
        ),
        seed=args.seed,
    )
    if args.trace_stats:
        from repro.workload.stats import summarize_trace

        print(f"workload: {summarize_trace(workload.requests)}")
    result = simulate(network, grouping, workload)
    rates = result.hit_rates()
    table = Table(["metric", "value"])
    table.add_row(["requests", result.metrics.total_requests()])
    table.add_row(["avg latency (ms)", result.average_latency_ms()])
    table.add_row(["local hit share", rates["local"]])
    table.add_row(["group hit share", rates["group"]])
    table.add_row(["origin share", rates["origin"]])
    table.add_row(["group hit rate (of misses)", result.group_hit_rate()])
    table.add_row(
        ["invalidation messages", result.metrics.invalidation_messages]
    )
    print(table.render())
    if args.per_group:
        from repro.analysis import group_report_table

        print()
        print(group_report_table(result).render())
    if args.export_csv:
        export_cache_stats(result.metrics, args.export_csv)
        print(f"wrote {args.export_csv}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.figure == "all":
        from repro.experiments import run_suite

        figures = None
        if args.figures:
            figures = [f.strip() for f in args.figures.split(",") if f.strip()]
        run = run_suite(
            figures=figures,
            output_dir=args.out_dir,
            paper_scale=args.paper_scale,
            repetitions=args.repetitions,
            seed=args.seed,
        )
        for experiment_id in sorted(run.results):
            print(run.results[experiment_id].render())
            print()
        if run.output_dir is not None:
            print(f"archived to {run.output_dir}")
        return 0

    kwargs = {}
    if args.paper_scale:
        kwargs["paper_scale"] = True
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if args.repetitions is not None:
        kwargs["repetitions"] = args.repetitions
    try:
        result = run_experiment(args.figure, **kwargs)
    except TypeError:
        # e.g. fig3 takes no --repetitions; re-run with the basics only.
        kwargs.pop("repetitions", None)
        result = run_experiment(args.figure, **kwargs)
    print(result.render())
    if args.plot:
        print()
        print(sketch(result))
    if args.out:
        save_result(result, args.out)
        print(f"wrote {args.out}")
    if args.csv:
        export_experiment_result(result, args.csv)
        print(f"wrote {args.csv}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis import compare_results
    from repro.persist import load_result

    report = compare_results(
        load_result(args.baseline), load_result(args.candidate)
    )
    print(report.render())
    return 2 if report.regressions(args.tolerance) else 0


_COMMANDS = {
    "network": _cmd_network,
    "form-groups": _cmd_form_groups,
    "simulate": _cmd_simulate,
    "experiment": _cmd_experiment,
    "compare": _cmd_compare,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
