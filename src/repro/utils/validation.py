"""Argument-validation helpers used at public API boundaries.

By default these raise built-in ``ValueError`` (not
:class:`repro.errors.ReproError`) because they signal caller bugs, not
library state; the error message always names the offending parameter.
Subsystems that must surface a domain error instead (e.g. fault-model
parameters rejected with :class:`repro.errors.ProbingError`) pass their
exception class via ``exc`` and reuse the same messages.
"""

from __future__ import annotations

from typing import Type, Union

Number = Union[int, float]


def check_positive(
    name: str, value: Number, exc: Type[Exception] = ValueError
) -> None:
    """Require ``value > 0``."""
    if not value > 0:
        raise exc(f"{name} must be > 0, got {value}")


def check_non_negative(
    name: str, value: Number, exc: Type[Exception] = ValueError
) -> None:
    """Require ``value >= 0``."""
    if value < 0:
        raise exc(f"{name} must be >= 0, got {value}")


def check_fraction(
    name: str, value: Number, exc: Type[Exception] = ValueError
) -> None:
    """Require ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise exc(f"{name} must be in [0, 1], got {value}")


def check_in_range(
    name: str,
    value: Number,
    low: Number,
    high: Number,
    exc: Type[Exception] = ValueError,
) -> None:
    """Require ``low <= value <= high``."""
    if not low <= value <= high:
        raise exc(f"{name} must be in [{low}, {high}], got {value}")
