"""Plain-text table rendering for experiment and benchmark output.

The benchmark harness prints the same rows/series the paper's figures
report; :class:`Table` gives those printouts a stable, aligned format
without pulling in any third-party dependency.
"""

from __future__ import annotations

from typing import Any, List, Sequence


class Table:
    """A simple column-aligned text table.

    >>> t = Table(["scheme", "gicost"])
    >>> t.add_row(["SL", 12.5])
    >>> t.add_row(["random", 14.25])
    >>> print(t.render())
    scheme | gicost
    ------ | ------
    SL     |  12.50
    random |  14.25
    """

    def __init__(self, columns: Sequence[str], float_format: str = "{:.2f}") -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self._columns = [str(c) for c in columns]
        self._float_format = float_format
        self._rows: List[List[str]] = []

    @property
    def columns(self) -> List[str]:
        return list(self._columns)

    @property
    def row_count(self) -> int:
        return len(self._rows)

    def add_row(self, values: Sequence[Any]) -> None:
        """Append one row; must match the column count."""
        if len(values) != len(self._columns):
            raise ValueError(
                f"row has {len(values)} values, table has "
                f"{len(self._columns)} columns"
            )
        self._rows.append([self._format_cell(v) for v in values])

    def _format_cell(self, value: Any) -> str:
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            return self._float_format.format(value)
        return str(value)

    def render(self) -> str:
        """Render the table as an aligned multi-line string."""
        widths = [len(c) for c in self._columns]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        header = " | ".join(c.ljust(widths[i]) for i, c in enumerate(self._columns))
        rule = " | ".join("-" * widths[i] for i in range(len(self._columns)))
        lines = [header, rule]
        for row in self._rows:
            rendered = []
            for i, cell in enumerate(row):
                # Right-align numerics, left-align text.
                if _looks_numeric(cell):
                    rendered.append(cell.rjust(widths[i]))
                else:
                    rendered.append(cell.ljust(widths[i]))
            lines.append(" | ".join(rendered))
        return "\n".join(line.rstrip() for line in lines)

    def __str__(self) -> str:
        return self.render()


def _looks_numeric(cell: str) -> bool:
    try:
        float(cell)
    except ValueError:
        return False
    return True
