"""Deterministic random-number management.

Every stochastic component of the library (topology generation, landmark
sampling, K-means initialization, workload generation, probe jitter, the
simulator) takes an explicit ``numpy.random.Generator``.  This module
provides :class:`RngFactory`, which derives independent, reproducible
sub-streams from a single experiment seed so that, e.g., changing the
number of probes does not perturb the workload stream.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def spawn_rng(seed: SeedLike) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``seed``.

    Accepts an int seed, an existing generator (returned as-is), or
    ``None`` (OS entropy).  This is the single place where seed-like
    arguments are normalised.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class RngFactory:
    """Derives named, independent random streams from one root seed.

    Streams are keyed by a short string label; asking for the same label
    twice returns the *same* generator object, so a component can be
    re-entered without resetting its stream.

    >>> factory = RngFactory(42)
    >>> a = factory.stream("topology")
    >>> b = factory.stream("workload")
    >>> a is factory.stream("topology")
    True
    >>> a is b
    False
    """

    def __init__(self, root_seed: Optional[int] = None) -> None:
        self._root_seed = root_seed
        self._seed_seq = np.random.SeedSequence(root_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def root_seed(self) -> Optional[int]:
        """The root seed this factory was created with (``None`` = entropy)."""
        return self._root_seed

    def stream(self, label: str) -> np.random.Generator:
        """Return the generator for ``label``, creating it on first use.

        Derivation hashes the label into the seed sequence, so streams
        for distinct labels are statistically independent and stable
        across runs and across the order in which they are requested.
        """
        if not label:
            raise ValueError("stream label must be a non-empty string")
        if label not in self._streams:
            # Stable label -> integer key (independent of request order).
            key = int.from_bytes(label.encode("utf-8"), "big") % (2**63)
            child = np.random.SeedSequence(
                entropy=self._seed_seq.entropy, spawn_key=(key,)
            )
            self._streams[label] = np.random.default_rng(child)
        return self._streams[label]

    def fork(self, label: str) -> "RngFactory":
        """Return a child factory whose streams are independent of ours.

        Used by experiment sweeps: each sweep point forks the experiment
        factory so repetitions are independent but reproducible.
        """
        if self._root_seed is None:
            return RngFactory(None)
        key = int.from_bytes(label.encode("utf-8"), "big") % (2**31)
        return RngFactory(self._root_seed * 1_000_003 + key)
