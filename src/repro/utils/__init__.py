"""Cross-cutting utilities: seeded RNG streams, streaming statistics,
plain-text table rendering, and argument validation helpers."""

from repro.utils.rng import RngFactory, spawn_rng
from repro.utils.stats import OnlineStats, percentile, summarize
from repro.utils.tables import Table
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_non_negative,
    check_in_range,
)

__all__ = [
    "RngFactory",
    "spawn_rng",
    "OnlineStats",
    "percentile",
    "summarize",
    "Table",
    "check_fraction",
    "check_positive",
    "check_non_negative",
    "check_in_range",
]
