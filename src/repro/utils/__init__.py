"""Cross-cutting utilities: seeded RNG streams, streaming statistics,
plain-text table rendering, argument validation helpers, and the
sanctioned time-unit conversions (re-exported from :mod:`repro.types`
so callers converting between the three clocks need only one import)."""

from repro.types import MS_PER_S, ms_to_s, s_to_ms
from repro.utils.rng import RngFactory, spawn_rng
from repro.utils.stats import OnlineStats, percentile, summarize
from repro.utils.tables import Table
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_non_negative,
    check_in_range,
)

__all__ = [
    "MS_PER_S",
    "RngFactory",
    "spawn_rng",
    "OnlineStats",
    "percentile",
    "summarize",
    "Table",
    "check_fraction",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "ms_to_s",
    "s_to_ms",
]
