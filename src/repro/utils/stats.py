"""Streaming and batch summary statistics used by metrics collection.

The simulator records hundreds of thousands of per-request latencies; we
aggregate them with Welford's online algorithm (:class:`OnlineStats`) so
the full series never has to be materialised unless explicitly requested.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


class OnlineStats:
    """Welford online mean/variance accumulator with min/max tracking.

    >>> s = OnlineStats()
    >>> for x in [1.0, 2.0, 3.0]:
    ...     s.add(x)
    >>> s.mean
    2.0
    >>> round(s.variance, 6)
    1.0
    """

    __slots__ = ("_count", "_mean", "_m2", "_min", "_max")

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def add_many(self, values: Iterable[float]) -> None:
        """Fold an iterable of observations into the accumulator."""
        for value in values:
            self.add(value)

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Return a new accumulator equivalent to seeing both streams."""
        merged = OnlineStats()
        if self._count == 0:
            merged._copy_from(other)
            return merged
        if other._count == 0:
            merged._copy_from(self)
            return merged
        n = self._count + other._count
        delta = other._mean - self._mean
        merged._count = n
        merged._mean = self._mean + delta * other._count / n
        merged._m2 = (
            self._m2 + other._m2 + delta * delta * self._count * other._count / n
        )
        merged._min = min(self._min, other._min)
        merged._max = max(self._max, other._max)
        return merged

    def _copy_from(self, other: "OnlineStats") -> None:
        self._count = other._count
        self._mean = other._mean
        self._m2 = other._m2
        self._min = other._min
        self._max = other._max

    def restore(
        self,
        count: int,
        mean: float,
        m2: float,
        minimum: float,
        maximum: float,
    ) -> None:
        """Overwrite the accumulator with externally-computed moments.

        The batched event loop runs Welford's recurrence inline on raw
        slots (same operations, same order as :meth:`add`) and loads
        the result here in one call; the accumulator must be empty so a
        partial stream can never be silently clobbered.
        """
        if self._count != 0:
            raise ValueError("restore() target must be empty")
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if count == 0:
            return
        self._count = count
        self._mean = mean
        self._m2 = m2
        self._min = minimum
        self._max = maximum

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        if self._count == 0:
            raise ValueError("mean of empty stream")
        return self._mean

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); zero for a single observation."""
        if self._count == 0:
            raise ValueError("variance of empty stream")
        if self._count == 1:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        if self._count == 0:
            raise ValueError("minimum of empty stream")
        return self._min

    @property
    def maximum(self) -> float:
        if self._count == 0:
            raise ValueError("maximum of empty stream")
        return self._max

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._count == 0:
            return "OnlineStats(empty)"
        return (
            f"OnlineStats(n={self._count}, mean={self._mean:.4g}, "
            f"sd={self.stddev:.4g}, min={self._min:.4g}, max={self._max:.4g})"
        )


class FixedBinHistogram:
    """Fixed-width binned histogram for O(1) streaming percentiles.

    Values land in ``num_bins`` equal-width bins over ``[0, upper)``;
    anything at or above ``upper`` goes to an overflow bin.  Percentile
    queries interpolate linearly inside the winning bin (and return the
    exact observed maximum for the overflow bin), so accuracy is bounded
    by the bin width while memory stays constant — the simulator can
    report p95 latency over 10^5 requests without keeping the series.

    >>> h = FixedBinHistogram(upper=10.0, num_bins=10)
    >>> for v in [1.0, 2.0, 3.0, 4.0]:
    ...     h.add(v)
    >>> 2.0 <= h.percentile(50) <= 3.0
    True
    """

    __slots__ = ("_upper", "_width", "_counts", "_count", "_sum",
                 "_min", "_max")

    def __init__(self, upper: float = 2_000.0, num_bins: int = 512) -> None:
        if upper <= 0:
            raise ValueError(f"upper must be > 0, got {upper}")
        if num_bins < 1:
            raise ValueError(f"num_bins must be >= 1, got {num_bins}")
        self._upper = float(upper)
        self._width = self._upper / num_bins
        # +1 for the overflow bin
        self._counts = np.zeros(num_bins + 1, dtype=np.int64)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        if self._count == 0:
            raise ValueError("mean of empty histogram")
        return self._sum / self._count

    @property
    def minimum(self) -> float:
        if self._count == 0:
            raise ValueError("minimum of empty histogram")
        return self._min

    @property
    def maximum(self) -> float:
        if self._count == 0:
            raise ValueError("maximum of empty histogram")
        return self._max

    @property
    def overflow_count(self) -> int:
        """Observations at or above the histogram's upper bound."""
        return int(self._counts[-1])

    def add(self, value: float) -> None:
        """Fold one non-negative observation into the histogram."""
        if value < 0:
            raise ValueError(f"histogram values must be >= 0, got {value}")
        index = int(value / self._width)
        if index >= self._counts.size - 1:
            index = self._counts.size - 1
        self._counts[index] += 1
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def percentile(self, q: float) -> float:
        """Approximate q-th percentile (``q`` in [0, 100])."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile q must be in [0, 100], got {q}")
        if self._count == 0:
            raise ValueError("percentile of empty histogram")
        target = q / 100.0 * self._count
        cumulative = 0
        for index, bin_count in enumerate(self._counts):
            if bin_count == 0:
                continue
            if cumulative + bin_count >= target:
                if index == self._counts.size - 1:
                    return self._max  # overflow bin: exact max observed
                # Linear interpolation within the bin, clamped to the
                # observed range so tails stay exact.
                fraction = (target - cumulative) / bin_count
                estimate = (index + fraction) * self._width
                return float(min(max(estimate, self._min), self._max))
            cumulative += int(bin_count)
        return self._max  # pragma: no cover - loop always terminates above

    def reset(self) -> None:
        """Clear all counts (used by windowed samplers between ticks)."""
        self._counts[:] = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def restore(
        self,
        counts: Sequence[int],
        count: int,
        total: float,
        minimum: float,
        maximum: float,
    ) -> None:
        """Overwrite the histogram with externally-binned counts.

        Counterpart of :meth:`OnlineStats.restore` for the batched
        event loop, which bins into a plain list with the same
        ``int(value / width)`` rule and loads the result here; the
        histogram must be empty, and ``counts`` must cover every bin
        including the overflow bin.
        """
        if self._count != 0:
            raise ValueError("restore() target must be empty")
        if len(counts) != self._counts.size:
            raise ValueError(
                f"expected {self._counts.size} bins, got {len(counts)}"
            )
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if count == 0:
            return
        self._counts[:] = np.asarray(counts, dtype=np.int64)
        self._count = count
        self._sum = total
        self._min = minimum
        self._max = maximum

    @property
    def bin_width(self) -> float:
        """Width of one bin (the batched loop mirrors the binning rule)."""
        return self._width

    @property
    def num_bins(self) -> int:
        """Total bin count including the overflow bin."""
        return int(self._counts.size)

    def merge(self, other: "FixedBinHistogram") -> None:
        """Fold another histogram of identical shape into this one."""
        if (other._upper != self._upper
                or other._counts.size != self._counts.size):
            raise ValueError("cannot merge histograms of different shapes")
        self._counts += other._counts
        self._count += other._count
        self._sum += other._sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._count == 0:
            return "FixedBinHistogram(empty)"
        return (
            f"FixedBinHistogram(n={self._count}, mean={self.mean:.4g}, "
            f"p95={self.percentile(95):.4g}, max={self._max:.4g})"
        )


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of ``values`` (``q`` in [0, 100])."""
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("percentile of empty sequence")
    return float(np.percentile(arr, q))


@dataclass(frozen=True)
class Summary:
    """Batch summary of a numeric series."""

    count: int
    mean: float
    stddev: float
    minimum: float
    p50: float
    p95: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.3f} sd={self.stddev:.3f} "
            f"min={self.minimum:.3f} p50={self.p50:.3f} "
            f"p95={self.p95:.3f} max={self.maximum:.3f}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Compute a :class:`Summary` for a non-empty series."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("summarize of empty sequence")
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        stddev=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        p50=float(np.percentile(arr, 50)),
        p95=float(np.percentile(arr, 95)),
        maximum=float(arr.max()),
    )
