"""Streaming and batch summary statistics used by metrics collection.

The simulator records hundreds of thousands of per-request latencies; we
aggregate them with Welford's online algorithm (:class:`OnlineStats`) so
the full series never has to be materialised unless explicitly requested.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


class OnlineStats:
    """Welford online mean/variance accumulator with min/max tracking.

    >>> s = OnlineStats()
    >>> for x in [1.0, 2.0, 3.0]:
    ...     s.add(x)
    >>> s.mean
    2.0
    >>> round(s.variance, 6)
    1.0
    """

    __slots__ = ("_count", "_mean", "_m2", "_min", "_max")

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def add_many(self, values: Iterable[float]) -> None:
        """Fold an iterable of observations into the accumulator."""
        for value in values:
            self.add(value)

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Return a new accumulator equivalent to seeing both streams."""
        merged = OnlineStats()
        if self._count == 0:
            merged._copy_from(other)
            return merged
        if other._count == 0:
            merged._copy_from(self)
            return merged
        n = self._count + other._count
        delta = other._mean - self._mean
        merged._count = n
        merged._mean = self._mean + delta * other._count / n
        merged._m2 = (
            self._m2 + other._m2 + delta * delta * self._count * other._count / n
        )
        merged._min = min(self._min, other._min)
        merged._max = max(self._max, other._max)
        return merged

    def _copy_from(self, other: "OnlineStats") -> None:
        self._count = other._count
        self._mean = other._mean
        self._m2 = other._m2
        self._min = other._min
        self._max = other._max

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        if self._count == 0:
            raise ValueError("mean of empty stream")
        return self._mean

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); zero for a single observation."""
        if self._count == 0:
            raise ValueError("variance of empty stream")
        if self._count == 1:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        if self._count == 0:
            raise ValueError("minimum of empty stream")
        return self._min

    @property
    def maximum(self) -> float:
        if self._count == 0:
            raise ValueError("maximum of empty stream")
        return self._max

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._count == 0:
            return "OnlineStats(empty)"
        return (
            f"OnlineStats(n={self._count}, mean={self._mean:.4g}, "
            f"sd={self.stddev:.4g}, min={self._min:.4g}, max={self._max:.4g})"
        )


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of ``values`` (``q`` in [0, 100])."""
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("percentile of empty sequence")
    return float(np.percentile(arr, q))


@dataclass(frozen=True)
class Summary:
    """Batch summary of a numeric series."""

    count: int
    mean: float
    stddev: float
    minimum: float
    p50: float
    p95: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.3f} sd={self.stddev:.3f} "
            f"min={self.minimum:.3f} p50={self.p50:.3f} "
            f"p95={self.p95:.3f} max={self.maximum:.3f}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Compute a :class:`Summary` for a non-empty series."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("summarize of empty sequence")
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        stddev=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        p50=float(np.percentile(arr, 50)),
        p95=float(np.percentile(arr, 95)),
        maximum=float(arr.max()),
    )
