"""The SL scheme's greedy max–min landmark selector (paper Section 3.1).

Phase 1: the GF-Coordinator samples ``M * (L - 1)`` caches uniformly at
random as the *potential landmark set* (PLSet); PLSet members measure
their RTTs to each other and to the origin server.

Phase 2: starting from ``LmSet = {Os}``, repeatedly add the PLSet cache
that maximises the resulting ``MinDist(LmSet)`` — i.e. the candidate
whose smallest measured distance to the current landmarks is largest —
until ``L`` landmarks are chosen.

This keeps the probe budget at ``O((M·(L-1))²)`` pairs instead of the
``O(N²)`` a globally optimal max–min spread would need.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.config import LandmarkConfig
from repro.errors import LandmarkSelectionError
from repro.landmarks.base import LandmarkSelector, LandmarkSet, min_pairwise
from repro.obs.profiling import phase_timer
from repro.probing.prober import Prober
from repro.types import ORIGIN_NODE_ID, NodeId


class GreedyMaxMinSelector(LandmarkSelector):
    """Approximation-based greedy strategy for high-quality landmarks."""

    name = "sl-greedy"

    def select(
        self,
        prober: Prober,
        config: LandmarkConfig,
        rng: np.random.Generator,
    ) -> LandmarkSet:
        self._check_feasible(prober, config)
        caches = self._candidate_caches(prober)
        with phase_timer("landmarks/potential"):
            plset = sample_potential_landmarks(caches, config, rng)
        return self.select_from_potential(prober, config, plset)

    def select_from_potential(
        self,
        prober: Prober,
        config: LandmarkConfig,
        plset: List[NodeId],
    ) -> LandmarkSet:
        """Phase 2 alone: greedy max–min over an explicit PLSet.

        Exposed so the paper's Figure 1 walkthrough (which fixes
        ``PLSet = {Ec0, Ec1, Ec3, Ec4}``) can be reproduced exactly.
        """
        if len(plset) < config.num_landmarks - 1:
            raise LandmarkSelectionError(
                f"PLSet of {len(plset)} cannot yield "
                f"{config.num_landmarks - 1} cache landmarks"
            )
        # Measured distances among {origin} ∪ PLSet.  Row/col 0 is the
        # origin; rows 1.. follow plset order.
        probe_nodes: List[NodeId] = [ORIGIN_NODE_ID, *plset]
        with phase_timer("landmarks/probe"):
            measured = prober.measure_matrix(probe_nodes)
        if np.isnan(measured).any():
            # Fault injection: an unreachable pair measures NaN.  Treat
            # it as distance 0 so a lossy candidate looks *near* the
            # current landmarks and is never greedily picked; the
            # zero-fault path never produces NaN and is untouched.
            measured = np.nan_to_num(measured, nan=0.0)

        with phase_timer("landmarks/greedy"):
            chosen_rows = [0]  # origin is always a landmark
            candidate_rows = list(range(1, len(probe_nodes)))
            while len(chosen_rows) < config.num_landmarks:
                best_row = max(
                    candidate_rows,
                    key=lambda row: (measured[row, chosen_rows].min(), -row),
                )
                chosen_rows.append(best_row)
                candidate_rows.remove(best_row)

        nodes = tuple(probe_nodes[row] for row in chosen_rows)
        objective = min_pairwise(measured[np.ix_(chosen_rows, chosen_rows)])
        return LandmarkSet(
            nodes=nodes,
            min_pairwise_rtt=objective,
            plset=tuple(plset),
            plset_measured=measured,
        )


def sample_potential_landmarks(
    caches: List[NodeId],
    config: LandmarkConfig,
    rng: np.random.Generator,
) -> List[NodeId]:
    """Uniformly sample the PLSet, clamped to the available caches.

    The paper requires ``M * (L - 1) <= N``; when a caller sweeps L on a
    small network we clamp instead of failing, but never below the
    ``L - 1`` caches needed to complete the landmark set.
    """
    config.validate()
    want = config.potential_set_size()
    need = config.num_landmarks - 1
    if need > len(caches):
        raise LandmarkSelectionError(
            f"need {need} cache landmarks but only {len(caches)} caches exist"
        )
    size = min(want, len(caches))
    picked = rng.choice(len(caches), size=size, replace=False)
    return [caches[int(i)] for i in picked]
