"""Feature-vector construction — SL step 2 (paper Section 3.2).

Every node (the origin and all caches) probes every landmark multiple
times and records the averaged RTTs; the resulting L-dimensional vector
is the node's *feature vector*, its relative position in the Internet.
Positional dissimilarity between two nodes is the L2 distance between
their feature vectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import LandmarkSelectionError
from repro.landmarks.base import LandmarkSet
from repro.obs.profiling import phase_timer
from repro.probing.prober import Prober
from repro.types import NodeId


@dataclass(frozen=True)
class FeatureVectors:
    """Feature vectors for a set of nodes against one landmark set.

    ``matrix[i]`` is the feature vector of ``nodes[i]``; column ``j``
    holds the measured RTT to ``landmarks.nodes[j]``.
    """

    nodes: tuple
    landmarks: LandmarkSet
    matrix: np.ndarray

    def __post_init__(self) -> None:
        if self.matrix.shape != (len(self.nodes), len(self.landmarks)):
            raise LandmarkSelectionError(
                f"feature matrix shape {self.matrix.shape} does not match "
                f"{len(self.nodes)} nodes x {len(self.landmarks)} landmarks"
            )
        self.matrix.setflags(write=False)

    @property
    def dimension(self) -> int:
        """Feature-space dimensionality (= number of landmarks)."""
        return self.matrix.shape[1]

    def vector_of(self, node: NodeId) -> np.ndarray:
        """The feature vector of one node."""
        try:
            row = self.nodes.index(node)
        except ValueError:
            raise LandmarkSelectionError(
                f"node {node} has no feature vector"
            ) from None
        return self.matrix[row]

    def l2_distance(self, a: NodeId, b: NodeId) -> float:
        """Positional dissimilarity between two nodes (L2 norm)."""
        return float(np.linalg.norm(self.vector_of(a) - self.vector_of(b)))

    def index_of(self) -> Dict[NodeId, int]:
        """Map node id -> row index."""
        return {node: i for i, node in enumerate(self.nodes)}


def build_feature_vectors(
    prober: Prober,
    landmarks: LandmarkSet,
    nodes: Optional[Sequence[NodeId]] = None,
) -> FeatureVectors:
    """Probe all landmarks from each node and assemble feature vectors.

    ``nodes`` defaults to every cache in the network (the origin's
    position is captured through its column in each vector: a landmark
    that *is* the origin contributes each cache's server distance).
    """
    if nodes is None:
        nodes = prober.network.cache_nodes
    nodes = list(nodes)
    if not nodes:
        raise LandmarkSelectionError("need at least one node to position")
    matrix = np.empty((len(nodes), len(landmarks)), dtype=float)
    landmark_list: List[NodeId] = list(landmarks)
    with phase_timer("features/probe"):
        for i, node in enumerate(nodes):
            matrix[i] = prober.measure_many(node, landmark_list)
    with phase_timer("features/build"):
        return FeatureVectors(
            nodes=tuple(nodes), landmarks=landmarks, matrix=matrix
        )
