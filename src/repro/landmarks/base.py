"""Landmark selector interface and the :class:`LandmarkSet` result type."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.config import LandmarkConfig
from repro.errors import LandmarkSelectionError
from repro.probing.prober import Prober
from repro.types import ORIGIN_NODE_ID, NodeId


@dataclass(frozen=True)
class LandmarkSet:
    """An ordered set of landmark nodes.

    The origin server is always a landmark per the paper ("the origin
    server is always chosen as a landmark, since it is an important node
    in the edge cache network"); by convention it appears first.
    ``min_pairwise_rtt`` is the ``MinDist(LmSet)`` objective value as
    *measured* during selection (NaN when the selector never measured
    pairwise distances, e.g. the random selector).
    """

    nodes: Tuple[NodeId, ...]
    min_pairwise_rtt: float = float("nan")
    #: selection context for degraded-mode landmark replacement: the
    #: PLSet the greedy step ran over and its measured distance matrix.
    #: ``None`` for selectors that keep no such context (random, etc.).
    plset: Optional[Tuple[NodeId, ...]] = field(
        default=None, repr=False, compare=False
    )
    plset_measured: Optional[np.ndarray] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if len(self.nodes) < 2:
            raise LandmarkSelectionError(
                f"a landmark set needs >= 2 nodes, got {len(self.nodes)}"
            )
        if self.nodes[0] != ORIGIN_NODE_ID:
            raise LandmarkSelectionError(
                "the origin server must be the first landmark"
            )
        if len(set(self.nodes)) != len(self.nodes):
            raise LandmarkSelectionError(
                f"landmark set contains duplicates: {self.nodes}"
            )

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    def __contains__(self, node: NodeId) -> bool:
        return node in self.nodes

    @property
    def cache_landmarks(self) -> Tuple[NodeId, ...]:
        """The landmarks that are edge caches (origin excluded)."""
        return self.nodes[1:]


class LandmarkSelector(abc.ABC):
    """Strategy interface for SL step 1 (choosing the landmark set).

    Selectors receive a :class:`repro.probing.Prober` rather than the
    ground-truth matrix: any distance they use must be *measured*, which
    keeps their probe budgets honest and comparable.
    """

    name: str = "abstract"

    @abc.abstractmethod
    def select(
        self,
        prober: Prober,
        config: LandmarkConfig,
        rng: np.random.Generator,
    ) -> LandmarkSet:
        """Choose ``config.num_landmarks`` landmarks (origin included)."""

    @staticmethod
    def _candidate_caches(prober: Prober) -> List[NodeId]:
        return prober.network.cache_nodes

    @staticmethod
    def _check_feasible(prober: Prober, config: LandmarkConfig) -> None:
        config.validate()
        num_caches = prober.network.num_caches
        if config.num_landmarks - 1 > num_caches:
            raise LandmarkSelectionError(
                f"cannot choose {config.num_landmarks - 1} cache landmarks "
                f"from {num_caches} caches"
            )


def min_pairwise(measured: np.ndarray) -> float:
    """Smallest off-diagonal entry of a measured distance matrix."""
    if measured.shape[0] < 2:
        raise LandmarkSelectionError("need >= 2 nodes for a pairwise minimum")
    masked = measured + np.diag(np.full(measured.shape[0], np.inf))
    return float(masked.min())
