"""Min-dist landmark selection — the paper's adversarial baseline.

"The landmarks are chosen such that the distance between any two
landmarks is minimized."  This produces a tightly bunched landmark set,
which makes feature vectors nearly collinear and degrades clustering —
the paper uses it to demonstrate why landmark *spread* matters.

Implementation mirrors the greedy selector but flips the objective:
starting from the origin, repeatedly add the PLSet cache whose largest
measured distance to the current landmarks is smallest (greedy min–max,
the natural dual of the SL greedy max–min).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.config import LandmarkConfig
from repro.errors import LandmarkSelectionError
from repro.landmarks.base import LandmarkSelector, LandmarkSet, min_pairwise
from repro.landmarks.greedy import sample_potential_landmarks
from repro.probing.prober import Prober
from repro.types import ORIGIN_NODE_ID, NodeId


class MinDistSelector(LandmarkSelector):
    """Greedy selector that *minimises* landmark spread (baseline)."""

    name = "min-dist"

    def select(
        self,
        prober: Prober,
        config: LandmarkConfig,
        rng: np.random.Generator,
    ) -> LandmarkSet:
        self._check_feasible(prober, config)
        caches = self._candidate_caches(prober)
        plset = sample_potential_landmarks(caches, config, rng)
        return self.select_from_potential(prober, config, plset)

    def select_from_potential(
        self,
        prober: Prober,
        config: LandmarkConfig,
        plset: List[NodeId],
    ) -> LandmarkSet:
        """Phase 2 alone: greedy min–max over an explicit PLSet."""
        if len(plset) < config.num_landmarks - 1:
            raise LandmarkSelectionError(
                f"PLSet of {len(plset)} cannot yield "
                f"{config.num_landmarks - 1} cache landmarks"
            )
        probe_nodes: List[NodeId] = [ORIGIN_NODE_ID, *plset]
        measured = prober.measure_matrix(probe_nodes)

        chosen_rows = [0]
        candidate_rows = list(range(1, len(probe_nodes)))
        while len(chosen_rows) < config.num_landmarks:
            best_row = min(
                candidate_rows,
                key=lambda row: (measured[row, chosen_rows].max(), row),
            )
            chosen_rows.append(best_row)
            candidate_rows.remove(best_row)

        nodes = tuple(probe_nodes[row] for row in chosen_rows)
        objective = min_pairwise(measured[np.ix_(chosen_rows, chosen_rows)])
        return LandmarkSet(nodes=nodes, min_pairwise_rtt=objective)
