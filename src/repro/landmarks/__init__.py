"""Landmark selection and feature-vector construction (paper Section 3).

Three selectors are provided, matching the paper's Figure 4–6
comparison:

* :class:`GreedyMaxMinSelector` — the SL scheme's approximation-based
  greedy strategy (maximise the minimum pairwise landmark distance over
  a random potential-landmark set);
* :class:`RandomSelector` — landmarks drawn uniformly at random;
* :class:`MinDistSelector` — the adversarial baseline that *minimises*
  the pairwise landmark distance.

:func:`build_feature_vectors` then realises SL step 2: every node probes
every landmark and records the averaged RTTs as its feature vector.
"""

from repro.landmarks.base import LandmarkSelector, LandmarkSet
from repro.landmarks.greedy import GreedyMaxMinSelector
from repro.landmarks.random_sel import RandomSelector
from repro.landmarks.mindist import MinDistSelector
from repro.landmarks.feature_vectors import FeatureVectors, build_feature_vectors

__all__ = [
    "LandmarkSelector",
    "LandmarkSet",
    "GreedyMaxMinSelector",
    "RandomSelector",
    "MinDistSelector",
    "FeatureVectors",
    "build_feature_vectors",
]
