"""Random landmark selection — the paper's first baseline (Section 5.1).

"The landmarks are chosen randomly from the set of edge caches and the
server."  No pairwise probing happens, so ``min_pairwise_rtt`` of the
result is NaN; the origin is still always included to keep the schemes
comparable.
"""

from __future__ import annotations

import numpy as np

from repro.config import LandmarkConfig
from repro.landmarks.base import LandmarkSelector, LandmarkSet
from repro.probing.prober import Prober
from repro.types import ORIGIN_NODE_ID


class RandomSelector(LandmarkSelector):
    """Uniform random landmark choice (probe-free)."""

    name = "random"

    def select(
        self,
        prober: Prober,
        config: LandmarkConfig,
        rng: np.random.Generator,
    ) -> LandmarkSet:
        self._check_feasible(prober, config)
        caches = self._candidate_caches(prober)
        picked = rng.choice(
            len(caches), size=config.num_landmarks - 1, replace=False
        )
        nodes = (ORIGIN_NODE_ID, *(caches[int(i)] for i in picked))
        return LandmarkSet(nodes=nodes)
