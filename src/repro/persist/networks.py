"""Save/load edge cache networks as ``.npz`` archives.

The archive stores the ground-truth RTT matrix plus (when present) the
router placement.  The topology graph itself is *not* stored — every
consumer of a loaded network (schemes, simulator, metrics) needs only
the distance matrix; regenerating the graph is a topology-config
concern, not a persistence one.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import ReproError
from repro.topology.distance import DistanceMatrix
from repro.topology.network import EdgeCacheNetwork
from repro.topology.placement import Placement

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def save_network(network: EdgeCacheNetwork, path: PathLike) -> None:
    """Write a network to ``path`` (conventionally ``*.npz``)."""
    arrays = {
        "format_version": np.asarray([_FORMAT_VERSION]),
        "rtt_ms": network.distances.as_array(),
    }
    if network.placement is not None:
        arrays["origin_router"] = np.asarray(
            [network.placement.origin_router]
        )
        arrays["cache_routers"] = np.asarray(
            network.placement.cache_routers, dtype=np.int64
        )
    np.savez_compressed(path, **arrays)


def load_network(path: PathLike) -> EdgeCacheNetwork:
    """Read a network written by :func:`save_network`.

    The loaded network carries no topology graph (``network.graph`` is
    None); all distance-based functionality works unchanged.
    """
    with np.load(path) as archive:
        try:
            version = int(archive["format_version"][0])
            rtt = archive["rtt_ms"]
        except KeyError as exc:
            raise ReproError(
                f"{path} is not a repro network archive (missing {exc})"
            ) from exc
        if version != _FORMAT_VERSION:
            raise ReproError(
                f"{path} has format version {version}, expected "
                f"{_FORMAT_VERSION}"
            )
        placement = None
        if "origin_router" in archive:
            placement = Placement(
                origin_router=int(archive["origin_router"][0]),
                cache_routers=tuple(
                    int(r) for r in archive["cache_routers"]
                ),
            )
    return EdgeCacheNetwork(
        distances=DistanceMatrix(rtt), placement=placement
    )
