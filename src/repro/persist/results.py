"""Save/load experiment results and run manifests as JSON.

Lets benchmark runs be archived and compared across machines/commits —
the ``repro experiment`` CLI writes these next to its printed tables,
and instrumented runs leave a :class:`repro.obs.RunManifest` alongside
their outputs (read back by ``repro report``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.analysis.report import ExperimentResult, SeriesResult
from repro.errors import ReproError
from repro.obs.manifest import RunManifest

PathLike = Union[str, Path]

_FORMAT_VERSION = 1
_MANIFEST_FORMAT_VERSION = 1


def save_result(result: ExperimentResult, path: PathLike) -> None:
    """Write an experiment result to ``path`` as JSON."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "experiment_id": result.experiment_id,
        "x_label": result.x_label,
        "x_values": list(result.x_values),
        "series": [
            {"name": s.name, "values": list(s.values)}
            for s in result.series
        ],
        "notes": dict(result.notes),
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")


def load_result(path: PathLike) -> ExperimentResult:
    """Read an experiment result written by :func:`save_result`."""
    with open(path, "r", encoding="utf-8") as f:
        try:
            payload = json.load(f)
        except json.JSONDecodeError as exc:
            raise ReproError(f"{path} is not valid JSON: {exc}") from exc
    if payload.get("format_version") != _FORMAT_VERSION:
        raise ReproError(
            f"{path} has format version {payload.get('format_version')}, "
            f"expected {_FORMAT_VERSION}"
        )
    try:
        return ExperimentResult(
            experiment_id=payload["experiment_id"],
            x_label=payload["x_label"],
            x_values=tuple(payload["x_values"]),
            series=tuple(
                SeriesResult(name=s["name"], values=tuple(s["values"]))
                for s in payload["series"]
            ),
            notes={k: float(v) for k, v in payload["notes"].items()},
        )
    except (KeyError, TypeError) as exc:
        raise ReproError(f"{path}: malformed result payload") from exc


def manifest_payload(manifest: RunManifest) -> dict:
    """The versioned JSON payload a manifest is persisted as.

    Shared by :func:`save_manifest`, the run registry's archived
    manifests, and ``repro report --format json`` so every machine-
    readable view of a run has one shape.
    """
    return {
        "format_version": _MANIFEST_FORMAT_VERSION,
        "kind": "run_manifest",
        **manifest.to_dict(),
    }


def save_manifest(manifest: RunManifest, path: PathLike) -> None:
    """Write a run manifest to ``path`` as JSON."""
    payload = manifest_payload(manifest)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")


def load_manifest(path: PathLike) -> RunManifest:
    """Read a run manifest written by :func:`save_manifest`."""
    with open(path, "r", encoding="utf-8") as f:
        try:
            payload = json.load(f)
        except json.JSONDecodeError as exc:
            raise ReproError(f"{path} is not valid JSON: {exc}") from exc
    if payload.get("kind") != "run_manifest":
        raise ReproError(f"{path} is not a run manifest")
    if payload.get("format_version") != _MANIFEST_FORMAT_VERSION:
        raise ReproError(
            f"{path} has manifest format version "
            f"{payload.get('format_version')}, "
            f"expected {_MANIFEST_FORMAT_VERSION}"
        )
    payload = {
        k: v for k, v in payload.items()
        if k not in ("format_version", "kind")
    }
    return RunManifest.from_dict(payload)
