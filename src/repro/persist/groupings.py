"""Save/load grouping results as JSON.

The JSON form is the "group table" a GF-Coordinator would distribute to
the caches: scheme name, groups with their members, and — when the
grouping came from a landmark pipeline — the landmark set, so a cache
can later re-probe the same landmarks to find its group (see
:mod:`repro.core.membership`).

Feature vectors and the clustering object are deliberately *not*
persisted: they are run-scoped provenance, not part of the group table.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.core.groups import CacheGroup, GroupingResult
from repro.errors import ReproError
from repro.landmarks.base import LandmarkSet

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def save_grouping(grouping: GroupingResult, path: PathLike) -> None:
    """Write a grouping's group table to ``path`` as JSON."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "scheme": grouping.scheme,
        "groups": [
            {"group_id": g.group_id, "members": list(g.members)}
            for g in grouping.groups
        ],
    }
    if grouping.landmarks is not None:
        payload["landmarks"] = {
            "nodes": list(grouping.landmarks.nodes),
            "min_pairwise_rtt": _nan_to_none(
                grouping.landmarks.min_pairwise_rtt
            ),
        }
    if grouping.degraded:
        # Only emitted when True, so fault-free group tables stay
        # byte-identical to those written before fault injection existed.
        payload["degraded"] = True
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")


def load_grouping(path: PathLike) -> GroupingResult:
    """Read a grouping written by :func:`save_grouping`."""
    with open(path, "r", encoding="utf-8") as f:
        try:
            payload = json.load(f)
        except json.JSONDecodeError as exc:
            raise ReproError(f"{path} is not valid JSON: {exc}") from exc
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ReproError(
            f"{path} has format version {version}, expected {_FORMAT_VERSION}"
        )
    try:
        groups = tuple(
            CacheGroup(
                group_id=int(entry["group_id"]),
                members=tuple(int(m) for m in entry["members"]),
            )
            for entry in payload["groups"]
        )
        scheme = payload["scheme"]
    except (KeyError, TypeError) as exc:
        raise ReproError(f"{path}: malformed grouping payload") from exc

    landmarks = None
    if "landmarks" in payload:
        entry = payload["landmarks"]
        landmarks = LandmarkSet(
            nodes=tuple(int(n) for n in entry["nodes"]),
            min_pairwise_rtt=_none_to_nan(entry.get("min_pairwise_rtt")),
        )
    return GroupingResult(
        scheme=scheme,
        groups=groups,
        landmarks=landmarks,
        degraded=bool(payload.get("degraded", False)),
    )


def _nan_to_none(value: float):
    return None if value != value else value  # NaN check


def _none_to_nan(value) -> float:
    return float("nan") if value is None else float(value)
