"""Persistence: save/load networks, groupings, and experiment results.

A GF-Coordinator in production recomputes groups rarely (probing is
expensive) and ships the resulting group tables to the caches; this
package provides the stable on-disk formats for that workflow:

* networks — ``.npz`` (distance matrix + placement metadata);
* groupings — JSON (scheme, groups, landmark provenance);
* experiment results — JSON (x-axis, series, notes), so benchmark runs
  can be archived and diffed;
* run manifests — JSON (config, seed, phase timings, time series),
  written by instrumented runs and read back by ``repro report``.
"""

from repro.persist.networks import load_network, save_network
from repro.persist.groupings import load_grouping, save_grouping
from repro.persist.results import (
    load_manifest,
    load_result,
    save_manifest,
    save_result,
)

__all__ = [
    "save_network",
    "load_network",
    "save_grouping",
    "load_grouping",
    "save_result",
    "load_result",
    "save_manifest",
    "load_manifest",
]
