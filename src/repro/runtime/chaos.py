"""Deterministic fault injection for the supervised task scheduler.

Retry/backoff/resume machinery is only trustworthy if it is exercised,
and "kill a worker sometimes" is useless as a test if *sometimes* is
not reproducible.  :class:`ChaosPolicy` makes worker failure a pure
function of content: whether the attempt at task index ``i`` dies (or
stalls) is drawn from the isolated ``"faults"`` child of an
:class:`~repro.utils.rng.RngFactory` — the same quarantined entropy
branch the formation fault layer uses — keyed by the task index.  Two
chaos runs with the same seed kill the same attempts of the same
tasks; no draw is taken from any science stream, so the surviving
results are bit-identical to a clean run.

The policy is installed in the parent via
:func:`repro.runtime.scheduler.set_chaos_policy`; fork workers inherit
the module global and consult it at the task boundary, *before* the
work unit takes any draw.  A kill is ``os._exit`` — the honest
simulation of a segfault/OOM-kill: no finally blocks, no queue
goodbye, the parent just sees ``BrokenProcessPool``.  By default a
task's faults fire only on attempt 0 (``faults_per_task=1``), so a
bounded retry budget always converges; raise it to test retry
exhaustion.

``_DELAYS_INJECTED`` is this module's cumulative injected-delay
counter, mirrored across workers exactly like the engine's event
counter: each task's delta rides back in ``TaskOutcome`` and the
parent folds it in via :func:`absorb_delays` (registered in the
effect-analysis merge-back registry).

Wired as ``repro chaos run`` — see :mod:`repro.runtime.chaos_cli` and
docs/robustness.md.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ConfigurationError
from repro.utils.rng import RngFactory

#: Exit status a chaos-killed worker dies with (a recognisable corpse
#: in ``dmesg``-style debugging; the parent only ever sees the broken
#: pool, never the code).
KILL_EXIT_CODE = 86

#: Cumulative count of delays this process has injected.  Worker-local
#: increments ride back to the parent as TaskOutcome deltas (see
#: scheduler._absorb_chaos_delays), so after a chaos run the parent
#: counter equals the number of delays actually served.
_DELAYS_INJECTED = 0


def delays_total() -> int:
    """Cumulative delays injected (parent: including absorbed deltas)."""
    return _DELAYS_INJECTED


def absorb_delays(count: int) -> None:
    """Fold a worker's injected-delay delta into this counter."""
    global _DELAYS_INJECTED  # noqa: PLW0603 - registered merge-back counter
    _DELAYS_INJECTED += int(count)


def _bump_delays() -> None:
    global _DELAYS_INJECTED  # noqa: PLW0603 - registered merge-back counter
    _DELAYS_INJECTED += 1


@dataclass(frozen=True)
class ChaosAction:
    """What the policy decided for one (task, attempt): kill and/or delay."""

    kill: bool = False
    delay_s: float = 0.0

    @property
    def quiet(self) -> bool:
        """True when this attempt runs undisturbed."""
        return not self.kill and self.delay_s <= 0.0


@dataclass(frozen=True)
class ChaosConfig:
    """Fault mix for one chaos run.

    ``kill_rate``/``delay_rate`` are per-task probabilities drawn from
    the content-derived stream; ``delay_s`` is the stall served when a
    delay fires; ``faults_per_task`` caps how many *attempts* of one
    task may fault (1 = the default retry always succeeds; ``0``
    disables injection entirely).
    """

    kill_rate: float = 0.0
    delay_rate: float = 0.0
    delay_s: float = 0.05
    seed: int = 0
    faults_per_task: int = 1

    def validate(self) -> None:
        for name in ("kill_rate", "delay_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"{name} must be within [0, 1], got {rate}"
                )
        if self.delay_s < 0:
            raise ConfigurationError(
                f"delay_s must be >= 0, got {self.delay_s}"
            )
        if self.faults_per_task < 0:
            raise ConfigurationError(
                f"faults_per_task must be >= 0, got {self.faults_per_task}"
            )


class ChaosPolicy:
    """Content-derived fault plan, consulted at worker task boundaries.

    ``plan`` is a pure function of ``(seed, task index, attempt)`` —
    deriving a fresh stream per task from the forked ``"faults"``
    factory makes the decision independent of dispatch order, jobs
    level, and which worker happens to pick the task up.
    """

    def __init__(self, config: ChaosConfig) -> None:
        config.validate()
        self._config = config
        self._factory = RngFactory(config.seed).fork("faults")

    @property
    def config(self) -> ChaosConfig:
        return self._config

    def plan(self, index: int, attempt: int) -> ChaosAction:
        """The action for one attempt of one task (no side effects)."""
        config = self._config
        if attempt >= config.faults_per_task:
            return ChaosAction()
        stream = self._factory.fork(f"task{index}").stream("chaos")
        kill = bool(stream.random() < config.kill_rate)
        delayed = bool(stream.random() < config.delay_rate)
        return ChaosAction(
            kill=kill, delay_s=config.delay_s if delayed else 0.0
        )

    def preview(self, count: int) -> Dict[str, List[int]]:
        """First-attempt fault plan over ``count`` tasks (for tests/CI)."""
        kills: List[int] = []
        delays: List[int] = []
        for index in range(count):
            action = self.plan(index, 0)
            if action.kill:
                kills.append(index)
            if action.delay_s > 0:
                delays.append(index)
        return {"kills": kills, "delays": delays}

    def apply(self, index: int, attempt: int) -> None:
        """Serve the planned faults for this attempt (worker side).

        Delay first, then kill: a task planned for both stalls and
        *then* dies, which exercises deadline and crash recovery in one
        attempt.  The kill is ``os._exit`` — deliberately not an
        exception — so the parent experiences a genuine broken pool.
        """
        action = self.plan(index, attempt)
        if action.delay_s > 0:
            _bump_delays()
            time.sleep(action.delay_s)
        if action.kill:
            os._exit(KILL_EXIT_CODE)
