"""The ``repro chaos`` subcommands.

``repro chaos run`` executes one registered figure experiment with a
deterministic :class:`~repro.runtime.chaos.ChaosPolicy` installed:
workers are killed (``os._exit``) and/or stalled at content-derived
task indices while the supervised scheduler retries them.  The run must
still exit 0 and archive **byte-identical** results to a clean run —
that is the whole point.  ``repro chaos plan`` prints which task
indices a given seed/rate combination will fault, so tests and CI can
pin seeds that actually kill something.

The canonical CI use::

    repro experiment fig6 --repetitions 1 --out clean.json
    repro chaos run --figure fig6 --repetitions 1 --kill-rate 0.2 \\
        --jobs 2 --out chaotic.json
    cmp clean.json chaotic.json

Exit codes: ``0`` — run survived (or plan printed); ``1`` — runtime
failure (e.g. retry budget exhausted); ``2`` — usage error.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, Optional, TextIO


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the ``chaos`` subcommands to a (sub)parser."""
    from repro.experiments import REGISTRY

    sub = parser.add_subparsers(dest="chaos_command", required=True)

    run = sub.add_parser(
        "run",
        help="run one figure with deterministic worker kills/delays "
             "under the supervised scheduler",
    )
    run.add_argument("--figure", required=True, choices=sorted(REGISTRY))
    run.add_argument(
        "--jobs", type=int, default=2, metavar="N",
        help="worker processes (>= 2: a killed worker must leave "
             "survivors; default 2)",
    )
    _add_chaos_args(run)
    run.add_argument("--seed", type=int)
    run.add_argument("--repetitions", type=int)
    run.add_argument("--paper-scale", action="store_true")
    run.add_argument(
        "--cache-dir", metavar="DIR",
        help="persist built testbeds under DIR (shared with "
             "'repro experiment')",
    )
    run.add_argument(
        "--task-timeout", type=float, metavar="S",
        help="per-attempt deadline in seconds (needed for --delay-rate "
             "to actually trigger timeout recovery)",
    )
    run.add_argument(
        "--max-retries", type=int, default=5, metavar="N",
        help="extra attempts each task may consume (default 5)",
    )
    run.add_argument(
        "--retry-backoff", type=float, default=0.05, metavar="S",
        help="base backoff before re-dispatch, doubling per consecutive "
             "failure (default 0.05)",
    )
    run.add_argument(
        "--out", metavar="PATH", help="write the figure result as JSON"
    )
    run.add_argument(
        "--manifest", metavar="PATH",
        help="write the run manifest (incl. worker_retries) as JSON",
    )
    run.add_argument(
        "--registry", metavar="DIR",
        help="append this run's manifest to the run registry at DIR "
             "(default: $REPRO_REGISTRY)",
    )

    plan = sub.add_parser(
        "plan",
        help="print which task indices a chaos seed/rate combination "
             "faults (first attempts)",
    )
    plan.add_argument(
        "--tasks", type=int, required=True, metavar="N",
        help="number of work units in the fan to preview",
    )
    _add_chaos_args(plan)


def _add_chaos_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--kill-rate", type=float, default=0.0, metavar="P",
        help="per-task probability of killing the worker (os._exit) at "
             "the task boundary",
    )
    parser.add_argument(
        "--delay-rate", type=float, default=0.0, metavar="P",
        help="per-task probability of stalling before the unit runs",
    )
    parser.add_argument(
        "--delay-s", type=float, default=0.05, metavar="S",
        help="stall duration when a delay fires (default 0.05)",
    )
    parser.add_argument(
        "--chaos-seed", type=int, default=0, metavar="SEED",
        help="seed of the isolated 'faults' RNG branch the plan is "
             "derived from (default 0)",
    )
    parser.add_argument(
        "--faults-per-task", type=int, default=1, metavar="N",
        help="attempts of one task that may fault (default 1: the "
             "retry always succeeds; raise to test retry exhaustion)",
    )


def _policy(args: argparse.Namespace) -> Any:
    from repro.runtime.chaos import ChaosConfig, ChaosPolicy

    return ChaosPolicy(ChaosConfig(
        kill_rate=args.kill_rate,
        delay_rate=args.delay_rate,
        delay_s=args.delay_s,
        seed=args.chaos_seed,
        faults_per_task=args.faults_per_task,
    ))


def _run(args: argparse.Namespace, out: TextIO, err: TextIO) -> int:
    from repro.experiments.suite import run_figure
    from repro.obs.manifest import merge_sparse_stats
    from repro.runtime import TaskScheduler, configure_cache, use_scheduler
    from repro.runtime import chaos as chaos_module
    from repro.runtime.scheduler import set_chaos_policy

    if args.jobs < 2:
        print(
            "error: chaos needs --jobs >= 2 — a killed worker must "
            "leave survivors for the scheduler to supervise",
            file=err,
        )
        return 2

    kwargs: Dict[str, Any] = {}
    if args.paper_scale:
        kwargs["paper_scale"] = True
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if args.repetitions is not None:
        kwargs["repetitions"] = args.repetitions
    if args.cache_dir:
        configure_cache(disk_dir=args.cache_dir)

    policy = _policy(args)
    delays_before = chaos_module.delays_total()
    scheduler = TaskScheduler(
        args.jobs,
        task_timeout_s=args.task_timeout,
        max_retries=args.max_retries,
        retry_backoff_s=args.retry_backoff,
    )
    previous = set_chaos_policy(policy)
    try:
        with scheduler, use_scheduler(scheduler):
            try:
                result, manifest = run_figure(
                    args.figure, kwargs, jobs=args.jobs, worker_perf=True,
                )
            except TypeError:
                # e.g. fig3 takes no --repetitions (mirrors
                # `repro experiment`).
                kwargs.pop("repetitions", None)
                result, manifest = run_figure(
                    args.figure, kwargs, jobs=args.jobs, worker_perf=True,
                )
    finally:
        set_chaos_policy(previous)

    manifest.label = f"chaos:{args.figure}"
    manifest.config.update({
        "chaos_kill_rate": args.kill_rate,
        "chaos_delay_rate": args.delay_rate,
        "chaos_seed": args.chaos_seed,
        "chaos_faults_per_task": args.faults_per_task,
    })
    merge_sparse_stats(manifest, {
        "chaos_delays": float(chaos_module.delays_total() - delays_before),
    })

    stats = manifest.run_stats
    print(
        f"chaos ok: {args.figure} survived "
        f"(retries={stats.get('worker_retries', 0.0):.0f}, "
        f"timeouts={stats.get('worker_timeouts', 0.0):.0f}, "
        f"delays={stats.get('chaos_delays', 0.0):.0f}) — results are "
        f"those of a clean run",
        file=out,
    )
    if args.out:
        from repro.persist import save_result

        save_result(result, args.out)
        print(f"wrote {args.out}", file=out)
    if args.manifest:
        from repro.persist import save_manifest

        save_manifest(manifest, args.manifest)
        print(f"wrote manifest to {args.manifest}", file=out)
    from repro.obs.registry import resolve_registry

    registry = resolve_registry(args.registry)
    if registry is not None:
        appended = registry.append(manifest, kind="chaos")
        print(f"registered run {appended.record.run_id}", file=out)
    return 0


def _plan(args: argparse.Namespace, out: TextIO) -> int:
    plan = _policy(args).preview(args.tasks)
    kills = plan["kills"]
    delays = plan["delays"]
    print(
        f"chaos plan over {args.tasks} task(s), seed {args.chaos_seed}: "
        f"{len(kills)} kill(s) at {kills}, "
        f"{len(delays)} delay(s) at {delays}",
        file=out,
    )
    return 0


def run_chaos(
    args: argparse.Namespace,
    stdout: Optional[TextIO] = None,
    stderr: Optional[TextIO] = None,
) -> int:
    """Execute ``repro chaos`` for parsed ``args``; returns exit code."""
    out: TextIO = stdout if stdout is not None else sys.stdout
    err: TextIO = stderr if stderr is not None else sys.stderr
    if args.chaos_command == "run":
        return _run(args, out, err)
    return _plan(args, out)
