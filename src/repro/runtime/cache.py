"""Content-keyed testbed cache: stop re-running multi-source Dijkstra.

The experiment suite builds the same networks and workloads over and
over: every figure point needs an :class:`EdgeCacheNetwork` (whose
dominant cost is the all-pairs Dijkstra RTT solve) and usually a
workload on top of it, and both are *pure functions* of a small key —
``(num_caches, config, seed)``.  :class:`TestbedCache` memoises those
builds behind a content key:

* an in-memory LRU holds the most recently used objects (testbeds are a
  few MB each, so the default capacity is small);
* an optional on-disk store (``results/cache/`` by convention) persists
  pickled builds across runs and across worker processes, so a repeated
  suite run — or a process-pool worker that missed the fork snapshot —
  loads a testbed instead of rebuilding it.

Keys embed a format version (:data:`CACHE_FORMAT_VERSION`) plus every
argument the build depends on; bump the version to invalidate all disk
entries when the construction code changes behaviour.  Cache hits are
*by construction* equivalent to a rebuild — the key covers the full
input space and builds are deterministic — so cached and fresh runs
produce bit-identical experiment results.

Hit/miss counters feed the per-figure :class:`~repro.obs.manifest.RunManifest`
(see ``run_suite``), which is how a run proves what the cache saved.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Union, cast

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.topology.network import EdgeCacheNetwork

PathLike = Union[str, Path]

#: Bump to invalidate every persisted cache entry (keys embed this).
CACHE_FORMAT_VERSION = 1

#: Counter names exposed by :meth:`TestbedCache.stats`.
STAT_FIELDS = ("hits", "misses", "disk_hits", "disk_stores", "evictions")


class TestbedCache:
    """In-memory LRU plus optional pickle-on-disk store for built objects."""

    def __init__(
        self,
        max_entries: int = 8,
        disk_dir: Optional[PathLike] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._max_entries = max_entries
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._disk_dir: Optional[Path] = None
        if disk_dir is not None:
            self.set_disk_dir(disk_dir)
        self._stats: Dict[str, int] = {name: 0 for name in STAT_FIELDS}

    # -- configuration -------------------------------------------------

    @property
    def max_entries(self) -> int:
        return self._max_entries

    @property
    def disk_dir(self) -> Optional[Path]:
        return self._disk_dir

    def set_disk_dir(self, disk_dir: Optional[PathLike]) -> None:
        """Enable (or disable, with ``None``) the on-disk store."""
        if disk_dir is None:
            self._disk_dir = None
            return
        path = Path(disk_dir)
        path.mkdir(parents=True, exist_ok=True)
        self._disk_dir = path

    def set_max_entries(self, max_entries: int) -> None:
        """Resize the memory tier, evicting oldest entries if shrinking."""
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._max_entries = max_entries
        while len(self._entries) > max_entries:
            self._entries.popitem(last=False)
            self._stats["evictions"] += 1

    # -- the cache protocol --------------------------------------------

    def get_or_build(self, key: str, build: Callable[[], Any]) -> Any:
        """Return the cached object for ``key``, building it on miss.

        Lookup order: in-memory LRU, then the disk store (when enabled),
        then ``build()``.  Disk loads and fresh builds both populate the
        memory tier; fresh builds are also persisted to disk.
        """
        if key in self._entries:
            self._entries.move_to_end(key)
            self._stats["hits"] += 1
            return self._entries[key]

        value = self._load_from_disk(key)
        if value is not None:
            self._stats["disk_hits"] += 1
        else:
            self._stats["misses"] += 1
            value = build()
            self._store_to_disk(key, value)
        self._remember(key, value)
        return value

    def _remember(self, key: str, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)
            self._stats["evictions"] += 1

    def clear_memory(self) -> None:
        """Drop every in-memory entry (the disk store is untouched)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    # -- disk tier ------------------------------------------------------

    def _path_for(self, key: str) -> Path:
        assert self._disk_dir is not None
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:32]
        return self._disk_dir / f"{digest}.pkl"

    def _load_from_disk(self, key: str) -> Optional[Any]:
        if self._disk_dir is None:
            return None
        path = self._path_for(key)
        try:
            with open(path, "rb") as handle:
                stored_key, value = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, ValueError):
            return None
        if stored_key != key:  # pragma: no cover - hash collision guard
            return None
        return value

    def _store_to_disk(self, key: str, value: Any) -> None:
        if self._disk_dir is None:
            return
        path = self._path_for(key)
        # Write-to-temp + rename keeps concurrent pool workers safe: a
        # reader only ever sees a complete entry.
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self._disk_dir), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump((key, value), handle, pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
        self._stats["disk_stores"] += 1

    # -- accounting -----------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Snapshot of the hit/miss counters."""
        return dict(self._stats)

    def absorb_stats(self, delta: Dict[str, int]) -> None:
        """Fold a worker's counter delta into this cache's counters."""
        for name, value in delta.items():
            self._stats[name] = self._stats.get(name, 0) + int(value)


def stats_delta(
    before: Dict[str, int], after: Dict[str, int]
) -> Dict[str, int]:
    """Counter difference ``after - before`` over the union of fields."""
    return {
        name: after.get(name, 0) - before.get(name, 0)
        for name in set(before) | set(after)
    }


# -- the process-wide default cache -------------------------------------

_DEFAULT: TestbedCache = TestbedCache()


def get_cache() -> TestbedCache:
    """The process-wide cache used by the cached build helpers."""
    return _DEFAULT


def configure_cache(
    max_entries: Optional[int] = None,
    disk_dir: Optional[PathLike] = None,
) -> TestbedCache:
    """Reconfigure the process-wide cache (counters are preserved)."""
    cache = _DEFAULT
    if max_entries is not None:
        cache.set_max_entries(max_entries)
    if disk_dir is not None:
        cache.set_disk_dir(disk_dir)
    return cache


def reset_cache() -> TestbedCache:
    """Replace the process-wide cache with a fresh, disk-less one."""
    global _DEFAULT  # noqa: PLW0603 - test/CLI-only swap of the process cache
    _DEFAULT = TestbedCache()
    return _DEFAULT


# -- content keys and cached builders -----------------------------------


def network_key(num_caches: int, factory_seed: int, stream: str) -> str:
    """Key for ``build_network(num_caches, RngFactory(seed).stream(s))``."""
    return (
        f"network/v{CACHE_FORMAT_VERSION}/n={num_caches}"
        f"/seed={factory_seed}/stream={stream}"
    )


def testbed_key(
    num_caches: int,
    seed: int,
    requests_per_cache: int,
    num_documents: int,
) -> str:
    """Key for :func:`repro.experiments.base.build_testbed`."""
    return (
        f"testbed/v{CACHE_FORMAT_VERSION}/n={num_caches}/seed={seed}"
        f"/rpc={requests_per_cache}/docs={num_documents}"
    )


def cached_network(
    num_caches: int, factory_seed: int, stream: str = "topology"
) -> "EdgeCacheNetwork":
    """Build (or fetch) the network for one ``RngFactory`` derivation.

    Equivalent to ``build_network(num_caches,
    seed=RngFactory(factory_seed).stream(stream))`` — factory streams
    are independent generators derived only from the root seed and the
    label, so reconstructing the stream here yields the identical
    topology without touching the caller's factory.
    """
    from repro.topology.network import build_network
    from repro.utils.rng import RngFactory

    key = network_key(num_caches, factory_seed, stream)
    value = get_cache().get_or_build(
        key,
        lambda: build_network(
            num_caches=num_caches,
            # ``stream`` is part of the cache key above: distinct labels
            # always hit distinct factories, so no collision is possible.
            # repro-lint: allow[stream-label-collision]
            seed=RngFactory(factory_seed).stream(stream),
        ),
    )
    return cast("EdgeCacheNetwork", value)
